//! # ratest-suite
//!
//! Umbrella crate for **RATest-rs**, a Rust reproduction of *"Explaining
//! Wrong Queries Using Small Examples"* (Miao, Roy, Yang — SIGMOD 2019).
//!
//! It re-exports every workspace crate under a short module name so that the
//! runnable examples and cross-crate integration tests can be written against
//! a single dependency:
//!
//! * [`storage`] — in-memory relational store with tuple identifiers and
//!   integrity constraints,
//! * [`ra`] — extended relational algebra (AST, evaluator, parser,
//!   classifier),
//! * [`provenance`] — Boolean how-provenance and aggregate provenance,
//! * [`solver`] — CDCL SAT solver, min-ones optimization, lazy arithmetic
//!   theory,
//! * [`core`] — the RATest algorithms themselves (SWP/SCP, `Basic`, `Optσ`,
//!   poly-time special cases, aggregate extensions),
//! * [`datagen`] — seeded workload/data generators (university, beers,
//!   TPC-H-style),
//! * [`queries`] — reference query workloads and the wrong-query mutation
//!   engine,
//! * [`userstudy`] — stochastic cohort simulation of the paper's user study.

pub use ratest_core as core;
pub use ratest_datagen as datagen;
pub use ratest_provenance as provenance;
pub use ratest_queries as queries;
pub use ratest_ra as ra;
pub use ratest_solver as solver;
pub use ratest_storage as storage;
pub use ratest_userstudy as userstudy;
