//! Offline stand-in for `criterion`.
//!
//! The build container has no network access, so this workspace vendors the
//! subset of the criterion API its benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`, the
//! `criterion_group!` / `criterion_main!` macros and `black_box`. Instead of
//! criterion's statistical machinery it takes `sample_size` timed samples of
//! each benchmark and prints min/mean per-iteration wall-clock times — enough
//! to compare strategies (e.g. sequential vs. multi-worker grading) locally.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a closure over a fixed number of iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one timed sample per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{id:<40} min {min:>12.2?}   mean {mean:>12.2?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each case records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a routine with no per-case input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmark a routine against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (formatting no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function("run", f);
        self
    }
}

/// Declare a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
