//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! The build container has no network access, so this workspace vendors the
//! small slice of the rand API it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom`]. The generator is SplitMix64 — statistically
//! solid for workload generation and fully deterministic per seed, which is
//! all the seeded data/cohort generators need. It is **not** the same stream
//! as upstream `StdRng` (ChaCha12), so seeds produce different (but stable)
//! data than a build against crates.io rand would.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable without explicit bounds (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be sampled from (mirrors `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-advance once so seed 0 does not emit 0 first.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random selection/permutation over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly pick a reference to one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20i64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=5u8);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
