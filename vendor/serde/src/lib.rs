//! Offline stand-in for `serde`.
//!
//! The build container has no network access, so the real serde cannot be
//! fetched from crates.io. The workspace only uses serde for
//! `#[derive(Serialize, Deserialize)]` annotations (all JSON the project
//! emits is rendered by hand); the traits here are markers with blanket
//! impls so those derives and any `T: Serialize` bounds keep compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
