//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no network access, so the real
//! serde cannot be fetched. Nothing in the workspace performs actual
//! serialization through serde (JSON output is hand-rendered), so the derive
//! macros only need to *accept* the `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` attributes that annotate the data types; the sibling
//! `serde` stub provides blanket trait impls.

use proc_macro::TokenStream;

/// Inert `#[derive(Serialize)]`: accepts `#[serde(...)]` attributes, emits
/// nothing (the `serde` stub blanket-implements the trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `#[derive(Deserialize)]`: accepts `#[serde(...)]` attributes, emits
/// nothing (the `serde` stub blanket-implements the trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
