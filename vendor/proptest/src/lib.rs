//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so this workspace vendors the
//! slice of the proptest API its property tests use: the [`Strategy`] trait
//! with `prop_map`, range and tuple strategies, `prop::collection::vec`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed; there is
//! no shrinking — a failing case panics with the generated inputs, which the
//! deterministic seeding makes reproducible.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::ops::Range;

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded constructor; the macro derives the seed from test name + case
    /// index so failures reproduce exactly.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// FNV-1a hash of a test name, used to decorrelate per-test seeds.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of random values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.clone().sample_from(&mut rng.0)
    }
}

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Strategy namespace re-exported into the prelude (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generate vectors whose length is drawn from `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.0.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Assert inside a property test (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Property-test declaration macro, mirroring `proptest::proptest!`.
///
/// Supports the shape used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u8..4, v in prop::collection::vec(0u8..4, 1..8)) {
///         prop_assert!(x < 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0u64..(config.cases as u64) {
                    let seed = $crate::hash_name(concat!(module_path!(), "::", stringify!($name)))
                        ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut __rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}
