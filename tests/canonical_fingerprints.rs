//! Property suite for the canonical fingerprints the persistent verdict
//! cache is keyed by (ISSUE 4, satellite 1):
//!
//! * **Injectivity on the course workload**: across the 8 reference
//!   questions and *every* single-site mutation `ratest_queries::mutations`
//!   can produce from them, no two distinct canonical forms collide to one
//!   fingerprint. (Fingerprints of equal forms are of course equal — that
//!   is the dedup working as intended.)
//! * **Stability under plan serialization**: rendering a plan to the RA
//!   surface syntax and re-parsing it preserves the canonical form, so a
//!   fingerprint computed from a deserialized plan matches the one written
//!   into a cache file by the original process.

use ratest_suite::queries::course::course_questions;
use ratest_suite::queries::mutations::mutate;
use ratest_suite::ra::ast::Query;
use ratest_suite::ra::canonical::{canonical_form, fingerprint};
use ratest_suite::ra::display::to_surface_string;
use ratest_suite::ra::parser::parse_query;
use std::collections::HashMap;

/// The full workload: each course reference plus all its mutations.
fn workload() -> Vec<(String, Query)> {
    let mut out = Vec::new();
    for q in course_questions() {
        for m in mutate(&q.reference) {
            out.push((format!("q{} / {}", q.number, m.description), m.query));
        }
        out.push((format!("q{} reference", q.number), q.reference));
    }
    out
}

#[test]
fn fingerprints_are_injective_on_the_course_workload() {
    let workload = workload();
    assert!(
        workload.len() > 50,
        "the mutation engine should produce a rich workload, got {}",
        workload.len()
    );
    // form → (fingerprint, label); every collision must be a form equality.
    let mut by_fingerprint: HashMap<u64, (String, String)> = HashMap::new();
    for (label, query) in &workload {
        let form = canonical_form(query);
        let fp = fingerprint(query);
        match by_fingerprint.get(&fp) {
            None => {
                by_fingerprint.insert(fp, (form, label.clone()));
            }
            Some((existing_form, existing_label)) => {
                assert_eq!(
                    existing_form, &form,
                    "fingerprint collision between distinct queries:\n  {existing_label}\n  {label}"
                );
            }
        }
    }
}

#[test]
fn references_have_pairwise_distinct_fingerprints() {
    let questions = course_questions();
    for a in &questions {
        for b in &questions {
            if a.number != b.number {
                assert_ne!(
                    fingerprint(&a.reference),
                    fingerprint(&b.reference),
                    "q{} and q{} must not dedup together",
                    a.number,
                    b.number
                );
            }
        }
    }
}

#[test]
fn every_mutation_changes_the_fingerprint_of_its_reference() {
    // A mutation that fingerprints like its reference would be graded
    // `correct` without a pipeline run — a silently wrong workload.
    for q in course_questions() {
        let reference_fp = fingerprint(&q.reference);
        for m in mutate(&q.reference) {
            assert_ne!(
                fingerprint(&m.query),
                reference_fp,
                "q{}: mutation `{}` is canonical-form-identical to the reference",
                q.number,
                m.description
            );
        }
    }
}

#[test]
fn fingerprints_survive_plan_serialization() {
    // Serialize every workload plan to the surface syntax and re-parse: the
    // canonical form (and so the persistent cache key) must be unchanged.
    let mut checked = 0usize;
    for (label, query) in workload() {
        let rendered = to_surface_string(&query);
        let reparsed = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("{label}: rendering does not re-parse: {e}\n{rendered}"));
        assert_eq!(
            canonical_form(&query),
            canonical_form(&reparsed),
            "{label}: canonical form changed across serialize/deserialize\n{rendered}"
        );
        assert_eq!(fingerprint(&query), fingerprint(&reparsed), "{label}");
        checked += 1;
    }
    assert!(checked > 50, "checked only {checked} plans");
}
