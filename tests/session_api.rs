//! Session-API guarantees at workload scale:
//!
//! * the deprecated one-shot shims (`explain`, `explain_with_reference`)
//!   produce outcomes identical to the [`Session`] path on the course
//!   workload — the compatibility contract of the API redesign;
//! * a warm session answers repeats with the same outcome as a cold one
//!   (session-level mirror of the grader's warm-regrade conformance test);
//! * a [`Budget`] bounds real work on the TPC-H workload: an expired
//!   deadline stops a run that would otherwise evaluate large joins, and a
//!   small step quota is exhausted *inside* evaluation, proving the budget
//!   is threaded through `ra::eval`/provenance inner loops rather than only
//!   algorithm loop boundaries.

use ratest_suite::core::session::{Budget, Session};
use ratest_suite::core::RatestError;
use ratest_suite::datagen::{tpch_database, university_database, TpchConfig, UniversityConfig};
use ratest_suite::queries::course::course_questions;
use ratest_suite::queries::mutations::sample_mutations;
use ratest_suite::queries::tpch_queries;
use std::time::{Duration, Instant};

#[test]
fn deprecated_shims_match_the_session_on_the_course_workload() {
    let db = university_database(&UniversityConfig::with_total(60));
    let session = Session::builder(db.clone()).build();
    let mut compared = 0usize;
    for question in course_questions() {
        let reference = session.prepare(&question.reference).expect("prepares");
        for mutation in sample_mutations(&question.reference, 2, 40 + question.number as u64) {
            let new = session
                .explain(reference, &mutation.query)
                .expect("session path runs");
            #[allow(deprecated)]
            let old = ratest_suite::core::pipeline::explain(
                &question.reference,
                &mutation.query,
                &db,
                &ratest_suite::core::pipeline::RatestOptions::default(),
            )
            .expect("deprecated shim runs");
            assert_eq!(new.class, old.class, "q{}: class", question.number);
            // The session path may dispatch to a different (equally exact)
            // algorithm — `Basic` over the shared annotation where the
            // one-shot auto picks `Optσ` — so the contract is the *outcome*:
            // same agreement and same optimal counterexample size.
            assert_eq!(
                new.counterexample.as_ref().map(|c| c.size()),
                old.counterexample.as_ref().map(|c| c.size()),
                "q{}: counterexample size for `{}`",
                question.number,
                mutation.description
            );
            compared += 1;
        }
    }
    assert!(
        compared >= 16,
        "the whole workload was compared: {compared}"
    );
}

#[test]
fn a_warm_session_answers_repeats_identically_to_a_cold_one() {
    let db = university_database(&UniversityConfig::with_total(60));
    let question = &course_questions()[2]; // "exactly one CS course"
    let wrong = &sample_mutations(&question.reference, 1, 9)[0].query;

    let warm = Session::builder(db.clone()).build();
    let reference = warm.prepare(&question.reference).unwrap();
    let first = warm.explain(reference, wrong).unwrap();
    let second = warm.explain(reference, wrong).unwrap();
    assert_eq!(warm.prepared_references(), 1, "one prepared reference");

    let cold = Session::builder(db).build();
    let fresh = cold.explain_pair(&question.reference, wrong).unwrap();
    for outcome in [&second, &fresh] {
        assert_eq!(
            first.counterexample.as_ref().map(|c| c.size()),
            outcome.counterexample.as_ref().map(|c| c.size())
        );
        assert_eq!(first.class, outcome.class);
        assert_eq!(first.algorithm_used, outcome.algorithm_used);
    }
}

#[test]
fn an_expired_deadline_stops_a_tpch_run_immediately() {
    let db = tpch_database(&TpchConfig::with_scale(0.001));
    let session = Session::builder(db)
        .budget(Budget::unlimited().with_deadline(Duration::ZERO))
        .build();
    let start = Instant::now();
    let err = session
        .explain_pair(&tpch_queries::q4(), &tpch_queries::q4_wrong()[0])
        .expect_err("the deadline is already over");
    assert_eq!(err, RatestError::DeadlineExceeded);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "a dead run must not evaluate the workload: {:?}",
        start.elapsed()
    );
}

#[test]
fn a_small_step_quota_is_exhausted_inside_tpch_evaluation() {
    // 8 polls cover the algorithm loop boundaries many times over; only the
    // evaluator's strided inner-loop polling can burn through them on a
    // workload of thousands of row visits. Exhaustion therefore proves the
    // budget reaches `ra::eval`'s row loops.
    let db = tpch_database(&TpchConfig::with_scale(0.002));
    let session = Session::builder(db)
        .budget(Budget::unlimited().with_step_quota(8))
        .build();
    let start = Instant::now();
    let err = session
        .explain_pair(&tpch_queries::q4(), &tpch_queries::q4_wrong()[0])
        .expect_err("the quota runs out mid-evaluation");
    assert_eq!(err, RatestError::StepQuotaExhausted);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "a quota-dead run must not evaluate the workload: {:?}",
        start.elapsed()
    );
}

#[test]
fn per_request_budgets_override_the_session_budget() {
    let db = university_database(&UniversityConfig::with_total(60));
    let question = &course_questions()[0];
    let session = Session::builder(db).build();
    let reference = session.prepare(&question.reference).unwrap();
    let wrong = &sample_mutations(&question.reference, 1, 3)[0].query;

    // The session is unlimited, but this one request is not.
    let err = session
        .explain_with_budget(reference, wrong, &Budget::unlimited().with_step_quota(0))
        .expect_err("the per-request quota is empty");
    assert_eq!(err, RatestError::StepQuotaExhausted);

    // And the session keeps answering other requests normally.
    assert!(session.explain(reference, wrong).is_ok());
}
