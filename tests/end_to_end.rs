//! Cross-crate integration tests: generated data → query workloads →
//! counterexample algorithms → verified explanations, exercising the same
//! paths as the experiment harness but with hard assertions.

use ratest_suite::core::pipeline::Algorithm;
use ratest_suite::core::report::render_explanation;
use ratest_suite::core::session::Session;
use ratest_suite::datagen::{
    beers_database, tpch_database, university_database, TpchConfig, UniversityConfig,
};
use ratest_suite::queries::beers_queries::study_problems;
use ratest_suite::queries::course::course_questions;
use ratest_suite::queries::mutations::sample_mutations;
use ratest_suite::queries::tpch_queries::tpch_experiments;
use ratest_suite::ra::eval::evaluate;
use ratest_suite::ra::testdata;

/// Every counterexample returned on the course workload must be a verified,
/// FK-closed sub-instance that the two queries disagree on, and it must be
/// dramatically smaller than the full instance.
///
/// Heavyweight (the 800-tuple instance across all 8 questions takes ~2
/// minutes in a debug build); CI runs it in release mode via
/// `cargo test --release --test end_to_end -- --ignored`. The same
/// machinery is exercised at small scale by `tests/property_based.rs` and
/// `tests/sql_grading.rs` in the default loop.
#[test]
#[ignore = "heavyweight 800-tuple workload; run with --release -- --ignored"]
fn course_workload_counterexamples_are_valid_and_small() {
    let db = university_database(&UniversityConfig::with_total(800));
    let session = Session::builder(db.clone()).build();
    let mut explained = 0usize;
    for question in course_questions() {
        let reference = session.prepare(&question.reference).expect("prepares");
        for mutation in sample_mutations(&question.reference, 2, question.number as u64) {
            let outcome = session
                .explain(reference, &mutation.query)
                .expect("pipeline runs");
            if let Some(cex) = outcome.counterexample {
                explained += 1;
                assert!(db.contains_subinstance(cex.database()));
                assert!(cex.database().validate_constraints().is_ok());
                assert!(!cex.q1_result.set_eq(&cex.q2_result));
                assert!(
                    cex.size() <= 12,
                    "counterexamples stay tiny even on an 800-tuple instance (got {})",
                    cex.size()
                );
            }
        }
    }
    assert!(
        explained >= 6,
        "a healthy fraction of mutations is explained: {explained}"
    );
}

/// Forcing different algorithms on the same SPJUD pair must agree on the
/// optimal counterexample size (Basic and the poly-time SPJUD* algorithm are
/// exact; Optσ matched them in every case the paper measured).
#[test]
fn algorithms_agree_on_example1_at_scale() {
    let db = university_database(&UniversityConfig::with_total(300));
    let q1 = ratest_suite::queries::course::q3_exactly_one_cs();
    let wrong = ratest_suite::queries::course::q1_some_cs_course();
    let mut sizes = Vec::new();
    for algorithm in [
        Algorithm::OptSigma,
        Algorithm::Basic,
        Algorithm::PolytimeSpjudStar,
    ] {
        let session = Session::builder(db.clone()).algorithm(algorithm).build();
        let outcome = session.explain_pair(&q1, &wrong).expect("pipeline runs");
        if let Some(cex) = outcome.counterexample {
            sizes.push(cex.size());
        }
    }
    assert!(sizes.len() >= 2);
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "sizes disagree: {sizes:?}"
    );
}

/// The TPC-H aggregate pipeline produces small verified counterexamples for
/// the wrong variants that are detectable at test scale.
///
/// Heavyweight (minutes in a debug build — the aggregate provenance over
/// the TPC-H subset dominates `cargo test`'s wall clock), so it is gated
/// out of the default tier-1 loop; CI runs it in release mode via
/// `cargo test --release --test end_to_end -- --ignored`.
#[test]
#[ignore = "heavyweight TPC-H aggregates; run with --release -- --ignored"]
fn tpch_aggregate_counterexamples_are_verified() {
    let db = tpch_database(&TpchConfig::with_scale(0.0008));
    let session = Session::builder(db.clone()).build();
    let mut found = 0usize;
    for exp in tpch_experiments() {
        for wrong in &exp.wrong {
            let reference_result = evaluate(&exp.reference, &db).unwrap();
            let wrong_result = evaluate(wrong, &db).unwrap();
            if reference_result.set_eq(&wrong_result) {
                continue; // not detectable at this scale
            }
            let outcome = session
                .explain_pair(&exp.reference, wrong)
                .unwrap_or_else(|e| panic!("{}: {e}", exp.name));
            let cex = outcome.counterexample.expect("detectable pair");
            assert!(db.contains_subinstance(cex.database()));
            assert!(!cex.q1_result.set_eq(&cex.q2_result));
            assert!(
                cex.size() < db.total_tuples() / 10,
                "{}: counterexample of {} tuples is not small",
                exp.name,
                cex.size()
            );
            found += 1;
        }
    }
    assert!(
        found >= 3,
        "at least a few TPC-H pairs are explained: {found}"
    );
}

/// The user-study reference queries are debuggable too: mutate problem (i)
/// (the hardest one) and explain it on the beers database.
#[test]
fn beers_problem_i_mutations_are_explained() {
    let db = beers_database(40, 5);
    let (_, reference) = study_problems()
        .into_iter()
        .find(|(n, _)| *n == "i")
        .unwrap();
    let session = Session::builder(db.clone()).build();
    let prepared = session.prepare(&reference).unwrap();
    let mut explained = 0;
    for m in sample_mutations(&reference, 4, 11) {
        let outcome = session.explain(prepared, &m.query).unwrap();
        if let Some(cex) = outcome.counterexample {
            assert!(cex.size() <= 10);
            explained += 1;
        }
    }
    assert!(explained >= 1);
}

/// The rendered explanation for the paper's Example 1 mentions the key
/// elements a student would need.
#[test]
fn rendered_explanation_is_complete() {
    let db = testdata::figure1_db();
    let outcome = Session::builder(db)
        .build()
        .explain_pair(&testdata::example1_q1(), &testdata::example1_q2())
        .unwrap();
    let text = render_explanation(&outcome);
    for needle in [
        "NOT equivalent",
        "3 tuple",
        "Student",
        "Registration",
        "Q1",
        "Q2",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}
