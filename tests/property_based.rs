//! Property-based tests over the full stack.
//!
//! Strategy: generate small random university-style instances and draw query
//! pairs from a pool of well-typed SPJUD templates. For every pair that the
//! instance distinguishes, the pipeline's counterexample must be
//! (a) a genuine sub-instance, (b) foreign-key valid, (c) distinguishing, and
//! (d) no larger than the brute-force optimum computed by exhaustive search
//! (on the tiniest instances where that is feasible).
//! In addition the provenance layer is cross-checked against plain
//! evaluation on random sub-instances.

use proptest::prelude::*;
use ratest_suite::core::problem::brute_force_smallest;
use ratest_suite::core::session::Session;
use ratest_suite::provenance::annotate::consistent_with_evaluation;
use ratest_suite::ra::ast::Query;
use ratest_suite::ra::builder::{col, lit, rel, QueryBuilder};
use ratest_suite::ra::eval::{evaluate, Params};
use ratest_suite::storage::{DataType, Database, Relation, Schema, TupleSelection, Value};

/// Build a small instance from compact tuple descriptions.
fn build_db(students: &[(u8, u8)], registrations: &[(u8, u8, u8, i64)]) -> Database {
    let mut student = Relation::new(
        "Student",
        Schema::new(vec![("name", DataType::Text), ("major", DataType::Text)]),
    );
    for (n, m) in students {
        student
            .insert(vec![
                Value::from(format!("s{n}")),
                Value::from(if m % 2 == 0 { "CS" } else { "ECON" }),
            ])
            .unwrap();
    }
    let mut reg = Relation::new(
        "Registration",
        Schema::new(vec![
            ("name", DataType::Text),
            ("course", DataType::Text),
            ("dept", DataType::Text),
            ("grade", DataType::Int),
        ]),
    );
    // Reference an actual student name so the FK constraint holds by
    // construction (student ids are deduped and need not be contiguous);
    // with no students there is no valid parent, so drop the registration.
    for (s, c, d, g) in registrations {
        let Some(parent) = students
            .get((*s as usize) % students.len().max(1))
            .map(|t| t.0)
        else {
            continue;
        };
        reg.insert(vec![
            Value::from(format!("s{parent}")),
            Value::from(format!("c{}", c % 5)),
            Value::from(if d % 2 == 0 { "CS" } else { "ECON" }),
            Value::Int(60 + (g % 41)),
        ])
        .unwrap();
    }
    let mut db = Database::new("prop");
    db.add_relation(student).unwrap();
    db.add_relation(reg).unwrap();
    db.constraints_mut()
        .add_foreign_key("Registration", &["name"], "Student", &["name"]);
    db
}

/// A pool of well-typed SPJUD query templates over the schema above.
fn query_pool() -> Vec<Query> {
    let cs_students = rel("Student")
        .rename("s")
        .join_on(
            rel("Registration").rename("r").build(),
            col("s.name")
                .eq(col("r.name"))
                .and(col("r.dept").eq(lit("CS"))),
        )
        .project(&["s.name"])
        .build();
    let econ_students = rel("Student")
        .rename("s")
        .join_on(
            rel("Registration").rename("r").build(),
            col("s.name")
                .eq(col("r.name"))
                .and(col("r.dept").eq(lit("ECON"))),
        )
        .project(&["s.name"])
        .build();
    let all_names = rel("Student").project(&["name"]).build();
    let high = rel("Registration")
        .select(col("grade").ge(lit(90i64)))
        .project(&["name"])
        .build();
    vec![
        cs_students.clone(),
        econ_students.clone(),
        all_names.clone(),
        high.clone(),
        QueryBuilder::from_query(all_names.clone())
            .difference(cs_students.clone())
            .build(),
        QueryBuilder::from_query(cs_students.clone())
            .union(econ_students.clone())
            .build(),
        QueryBuilder::from_query(cs_students)
            .difference(high)
            .build(),
        QueryBuilder::from_query(all_names)
            .difference(econ_students)
            .build(),
    ]
}

fn registrations_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, i64)>> {
    prop::collection::vec((0u8..4, 0u8..5, 0u8..2, 0i64..41), 1..8)
}

fn students_strategy() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..4, 0u8..2), 1..4).prop_map(|mut v| {
        v.sort();
        v.dedup_by_key(|(n, _)| *n);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipeline soundness + optimality against brute force on tiny instances.
    #[test]
    fn counterexamples_are_sound_and_optimal(
        students in students_strategy(),
        registrations in registrations_strategy(),
        qi in 0usize..8,
        qj in 0usize..8,
    ) {
        let db = build_db(&students, &registrations);
        let pool = query_pool();
        let q1 = &pool[qi];
        let q2 = &pool[qj];
        let r1 = evaluate(q1, &db).unwrap();
        let r2 = evaluate(q2, &db).unwrap();
        let outcome = Session::builder(db.clone())
            .build()
            .explain_pair(q1, q2)
            .unwrap();
        match outcome.counterexample {
            None => prop_assert!(r1.set_eq(&r2)),
            Some(cex) => {
                prop_assert!(!r1.set_eq(&r2));
                prop_assert!(db.contains_subinstance(cex.database()));
                prop_assert!(cex.database().validate_constraints().is_ok());
                prop_assert!(!cex.q1_result.set_eq(&cex.q2_result));
                if db.total_tuples() <= 10 {
                    let best = brute_force_smallest(q1, q2, &db, &Params::new())
                        .unwrap()
                        .expect("a counterexample exists");
                    prop_assert_eq!(cex.size(), best.size());
                }
            }
        }
    }

    /// Provenance-annotated evaluation agrees with plain evaluation, both on
    /// the full instance and on random sub-instances.
    #[test]
    fn provenance_is_consistent_with_evaluation(
        students in students_strategy(),
        registrations in registrations_strategy(),
        qi in 0usize..8,
        keep_mask in 0u32..4096,
    ) {
        let db = build_db(&students, &registrations);
        let q = &query_pool()[qi];
        prop_assert!(consistent_with_evaluation(q, &db, &Params::new()).unwrap());

        // On a random sub-instance, the provenance of every annotated tuple
        // evaluated under that sub-instance must agree with direct
        // re-evaluation of the query.
        let all: Vec<_> = TupleSelection::all(&db).iter().collect();
        let sel = TupleSelection::from_ids(
            all.iter().enumerate().filter(|(i, _)| keep_mask & (1 << (i % 12)) != 0).map(|(_, id)| *id),
        );
        let sub = db.subinstance(|id| sel.contains(id));
        let direct = evaluate(q, &sub).unwrap();
        let annotated = ratest_suite::provenance::annotate(q, &db).unwrap();
        for row in annotated.rows() {
            let present = row.provenance.eval(&|id| sel.contains(id));
            prop_assert_eq!(
                present,
                direct.contains(&row.values),
                "tuple {:?} provenance disagrees with evaluation on the sub-instance",
                row.values
            );
        }
    }
}
