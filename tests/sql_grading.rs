//! End-to-end SQL grading: ingest the `examples/sql/` catalog (a mixed
//! `.sql`/`.ra` cohort including the `errors/` fixtures), grade it against
//! the course question 1 reference, and check the acceptance criteria:
//!
//! * equivalent SQL and RA submissions share one canonical fingerprint and
//!   are explained once,
//! * wrong submissions get a small verified counterexample,
//! * malformed submissions get a spanned `SqlError` diagnostic that lands
//!   in the JSON report as a `rejected` row.

use ratest_grader::{ingest_dir, Grader, GraderConfig, Verdict};
use ratest_suite::queries::course::q1_some_cs_course;
use ratest_suite::storage::{DataType, Database, Relation, Schema, Value};
use std::path::PathBuf;

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/sql")
}

/// A deterministic hidden instance where every wrong example in the catalog
/// is actually distinguishable: Amy has registrations but no CS course.
fn hidden_instance() -> Database {
    let mut student = Relation::new(
        "Student",
        Schema::new(vec![("name", DataType::Text), ("major", DataType::Text)]),
    );
    student
        .insert_all(vec![
            vec![Value::from("Mary"), Value::from("CS")],
            vec![Value::from("John"), Value::from("ECON")],
            vec![Value::from("Amy"), Value::from("ART")],
        ])
        .unwrap();
    let mut reg = Relation::new(
        "Registration",
        Schema::new(vec![
            ("name", DataType::Text),
            ("course", DataType::Text),
            ("dept", DataType::Text),
            ("grade", DataType::Int),
        ]),
    );
    reg.insert_all(vec![
        vec![
            Value::from("Mary"),
            Value::from("216"),
            Value::from("CS"),
            Value::Int(100),
        ],
        vec![
            Value::from("Mary"),
            Value::from("230"),
            Value::from("CS"),
            Value::Int(75),
        ],
        vec![
            Value::from("John"),
            Value::from("316"),
            Value::from("CS"),
            Value::Int(90),
        ],
        vec![
            Value::from("John"),
            Value::from("208D"),
            Value::from("ECON"),
            Value::Int(88),
        ],
        vec![
            Value::from("Amy"),
            Value::from("101"),
            Value::from("ART"),
            Value::Int(93),
        ],
    ])
    .unwrap();
    let mut db = Database::new("sql-grading");
    db.add_relation(student).unwrap();
    db.add_relation(reg).unwrap();
    db.constraints_mut()
        .add_foreign_key("Registration", &["name"], "Student", &["name"]);
    db
}

#[test]
fn the_examples_catalog_grades_end_to_end() {
    let db = hidden_instance();
    let cohort = ingest_dir(&examples_dir(), &db).expect("examples/sql is readable");
    assert!(
        cohort.entries.len() >= 18,
        "the catalog has valid and error fixtures (found {})",
        cohort.entries.len()
    );

    let mut config = GraderConfig {
        workers: 2,
        ..Default::default()
    };
    config
        .options
        .parameters
        .insert("minCS".into(), Value::Int(1));
    let grader = Grader::new(config);
    let report = grader
        .grade_cohort("course question 1", &q1_some_cs_course(), &db, &cohort)
        .expect("the reference grades");

    let verdict = |id: &str| {
        &report
            .graded
            .iter()
            .find(|g| g.submission_id == id)
            .unwrap_or_else(|| panic!("missing submission {id}"))
            .verdict
    };
    let fingerprint_of = |id: &str| {
        report
            .graded
            .iter()
            .find(|g| g.submission_id == id)
            .unwrap()
            .fingerprint
    };

    // Equivalent SQL and RA spellings share one canonical fingerprint...
    let group = [
        "join_on.sql",
        "join_comma.sql",
        "select_distinct.sql",
        "ra_reference.ra",
    ];
    let fp = fingerprint_of(group[0]);
    for id in &group {
        assert_eq!(
            fingerprint_of(id),
            fp,
            "{id} should dedup with {}",
            group[0]
        );
        assert_eq!(verdict(id).tag(), "correct", "{id}");
    }
    // ... and the whole group was explained as one unit: 11 parsed files
    // collapse to 8 distinct fingerprints (the 4 equivalent spellings share
    // one), each explained by exactly one pipeline run.
    assert_eq!(report.stats.distinct_groups, 8, "{:?}", report.stats);
    assert_eq!(report.stats.dedup_hits, 3, "{:?}", report.stats);
    assert_eq!(
        report.stats.pipeline_runs, report.stats.distinct_groups,
        "{:?}",
        report.stats
    );

    // Semantically equivalent but structurally different submissions are
    // still graded correct (their own fingerprint group).
    for id in ["subquery_in.sql", "agg_having.sql", "param_threshold.sql"] {
        assert_eq!(verdict(id).tag(), "correct", "{id}");
        assert_ne!(fingerprint_of(id), fp, "{id} forms its own group");
    }

    // Wrong submissions get a verified, small counterexample.
    for id in [
        "join_missing_filter_wrong.sql",
        "setop_except_wrong.sql",
        "subquery_exists_wrong.sql",
        "ra_wrong_dept.ra",
    ] {
        match verdict(id) {
            Verdict::Wrong { counterexample, .. } => {
                assert!(
                    (1..=5).contains(&counterexample.size()),
                    "{id}: counterexample should be small, got {}",
                    counterexample.size()
                );
                assert!(db.contains_subinstance(counterexample.database()), "{id}");
            }
            other => panic!("{id}: expected wrong, got {}", other.tag()),
        }
    }

    // Malformed submissions are rejected with a spanned diagnostic.
    for g in &report.graded {
        if g.submission_id.starts_with("errors/") {
            match &g.verdict {
                Verdict::Rejected { span, phase, .. } => {
                    assert!(span.is_some(), "{}: missing span", g.submission_id);
                    assert!(
                        g.submission_id.starts_with(&format!("errors/{phase}")),
                        "{}: phase {phase} does not match the fixture prefix",
                        g.submission_id
                    );
                }
                other => panic!(
                    "{}: expected rejected, got {}",
                    g.submission_id,
                    other.tag()
                ),
            }
        }
    }
    assert_eq!(report.stats.rejected, 7);

    // The rejection diagnostics land in the JSON report, spans included.
    let json = report.to_json();
    assert!(json.contains("\"verdict\":\"rejected\""));
    assert!(json.contains("\"span\":["));
    assert!(json.contains("\"kind\":\"unknown_relation\""));
    assert!(json.contains("did you mean"));
    assert!(json.contains("\"rejected\":7"));
}
