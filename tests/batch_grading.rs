//! Integration test for the batch grading engine: generate a
//! university-workload cohort with mutated submissions, grade it on a worker
//! pool, and validate every verdict against first principles.

use ratest_grader::{generate_cohort, CohortConfig, Grader, GraderConfig, Verdict};
use ratest_ra::fingerprint;
use ratest_suite::core::problem::check_distinguishes;
use ratest_suite::ra::eval::Params;
use std::time::Duration;

#[test]
fn grades_a_mutated_cohort_with_four_workers() {
    let cohort = generate_cohort(&CohortConfig {
        question: 3, // "exactly one CS course" — the paper's Example 1
        class_size: 50,
        db_tuples: 60,
        adoption_rate: 0.8,
        seed: 2019,
    });
    let grader = Grader::new(GraderConfig {
        workers: 4,
        per_job_timeout: Duration::from_secs(60),
        ..Default::default()
    });
    let report = grader
        .grade(
            &cohort.prompt,
            &cohort.reference,
            &cohort.db,
            &cohort.submissions,
        )
        .expect("the generated cohort grades cleanly");

    // Every submission received a verdict, in order.
    assert_eq!(report.graded.len(), cohort.submissions.len());
    for (g, s) in report.graded.iter().zip(&cohort.submissions) {
        assert_eq!(g.submission_id, s.id);
    }

    // Dedup is observable: strictly fewer pipeline runs than submissions.
    assert!(
        report.stats.dedup_hits > 0,
        "a 50-student class repeats answers: {:?}",
        report.stats
    );
    assert!(
        report.stats.pipeline_runs < report.stats.submissions,
        "dedup must save pipeline runs: {:?}",
        report.stats
    );
    assert_eq!(
        report.stats.pipeline_runs + report.stats.dedup_hits + report.stats.cache_hits,
        report.stats.submissions
    );

    // No submission in this cohort fails or times out.
    assert_eq!(report.stats.errors, 0, "{:?}", report.stats);
    assert_eq!(report.stats.timeouts, 0, "{:?}", report.stats);
    assert!(report.stats.wrong > 0, "mutations produce wrong answers");
    assert!(report.stats.correct > 0, "able students answer correctly");

    let reference_fp = fingerprint(&cohort.reference);
    for (graded, submission) in report.graded.iter().zip(&cohort.submissions) {
        match &graded.verdict {
            // Correct submissions really agree with the reference on the
            // hidden instance.
            Verdict::Correct => {
                let (r1, r2) = check_distinguishes(
                    &cohort.reference,
                    &submission.query,
                    &cohort.db,
                    &Params::new(),
                )
                .expect("gradable pair");
                assert!(
                    r1.set_eq(&r2),
                    "{} marked correct but differs on the instance",
                    submission.id
                );
            }
            // Wrong submissions carry a counterexample that
            // check_distinguishes confirms: a valid sub-instance of the
            // hidden instance on which the two queries disagree.
            Verdict::Wrong { counterexample, .. } => {
                let cex_db = counterexample.database();
                assert!(
                    cohort.db.contains_subinstance(cex_db),
                    "{}: counterexample is not a sub-instance",
                    submission.id
                );
                assert!(
                    cex_db.validate_constraints().is_ok(),
                    "{}: counterexample violates foreign keys",
                    submission.id
                );
                let (r1, r2) = check_distinguishes(
                    &cohort.reference,
                    &submission.query,
                    cex_db,
                    &Params::new(),
                )
                .expect("counterexample evaluates");
                assert!(
                    !r1.set_eq(&r2),
                    "{}: counterexample does not distinguish the queries",
                    submission.id
                );
                assert!(
                    counterexample.size() <= cohort.db.total_tuples() / 2,
                    "{}: counterexample of {} tuples is not small",
                    submission.id,
                    counterexample.size()
                );
            }
            other => panic!("{}: unexpected verdict {other:?}", submission.id),
        }
        // Submitting the reference verbatim must grade as correct.
        if graded.fingerprint == reference_fp {
            assert_eq!(graded.verdict.tag(), "correct", "{}", submission.id);
        }
    }

    // Regrading the same class is answered entirely from the verdict cache.
    let regrade = grader
        .grade(
            "regrade",
            &cohort.reference,
            &cohort.db,
            &cohort.submissions,
        )
        .expect("regrade succeeds");
    assert_eq!(regrade.stats.pipeline_runs, 0);
    assert_eq!(regrade.stats.cache_hits, regrade.stats.distinct_groups);
    let tags = |r: &ratest_grader::BatchReport| {
        r.graded
            .iter()
            .map(|g| g.verdict.tag().to_owned())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        tags(&report),
        tags(&regrade),
        "cached verdicts are identical"
    );
}
