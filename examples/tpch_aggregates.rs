//! Aggregate-query debugging on TPC-H (Section 7.2): compare the reference
//! Q18 ("large volume customers") against a wrong rewrite, with and without
//! parameterizing the HAVING threshold, and show how parameterization shrinks
//! the counterexample (Figure 7's effect).
//!
//! Run with: `cargo run --example tpch_aggregates`

use ratest_suite::core::aggregates::agg_basic::{
    smallest_counterexample_agg_basic, AggBasicOptions,
};
use ratest_suite::core::aggregates::agg_param::{
    smallest_counterexample_agg_param, AggParamOptions,
};
use ratest_suite::core::report::render_counterexample;
use ratest_suite::datagen::{tpch_database, TpchConfig};
use ratest_suite::queries::tpch_queries;
use ratest_suite::ra::eval::Params;
use ratest_suite::storage::Value;

fn main() {
    let db = tpch_database(&TpchConfig::with_scale(0.001));
    println!(
        "Generated TPC-H-style instance with {} tuples ({} orders, {} lineitems).\n",
        db.total_tuples(),
        db.relation("orders").unwrap().len(),
        db.relation("lineitem").unwrap().len()
    );

    // Fixed-threshold Q18 vs a wrong variant with a spurious date filter.
    let reference = tpch_queries::q18();
    let wrong = tpch_queries::q18_wrong().remove(0);
    let (fixed, t_fixed) = smallest_counterexample_agg_basic(
        &reference,
        &wrong,
        &db,
        &Params::new(),
        &AggBasicOptions::default(),
    )
    .expect("the wrong variant differs at this scale");
    println!(
        "Agg-Basic (fixed threshold): counterexample of {} tuple(s) in {:.1?} solver time",
        fixed.size(),
        t_fixed.solver
    );

    // Parameterized Q18: the solver may pick a new threshold.
    let mut original = Params::new();
    original.insert("qty".into(), Value::Int(120));
    let (param, t_param) = smallest_counterexample_agg_param(
        &tpch_queries::q18_parameterized(),
        &tpch_queries::q18_parameterized_wrong().remove(0),
        &db,
        &original,
        &AggParamOptions::default(),
    )
    .expect("the parameterized pair differs at this scale");
    println!(
        "Agg-Param (parameterized):   counterexample of {} tuple(s) in {:.1?} solver time\n",
        param.size(),
        t_param.solver
    );

    println!("Parameterized counterexample in full:\n");
    println!("{}", render_counterexample(&param));
}
