//! Class-scale batch grading with the `grader` engine.
//!
//! Where `course_grading.rs` runs the one-pair pipeline in a loop, this
//! example grades a whole simulated class at once: submissions are deduped
//! by canonical fingerprint, the reference query is evaluated and annotated
//! once per batch, and distinct submissions are explained concurrently on a
//! bounded worker pool. The same class is then regraded to show the
//! cross-batch verdict cache answering without any pipeline runs.
//!
//! Run with: `cargo run --example batch_grading`

use ratest_grader::{generate_cohort, CohortConfig, Grader, GraderConfig};
use std::time::Duration;

fn main() {
    let cohort = generate_cohort(&CohortConfig {
        question: 3, // "exactly one CS course" — the paper's Example 1
        class_size: 50,
        db_tuples: 60,
        adoption_rate: 0.8,
        seed: 2019,
    });
    println!("{}\n", cohort.prompt);

    let grader = Grader::new(GraderConfig {
        workers: 4,
        per_job_timeout: Duration::from_secs(30),
        ..Default::default()
    });

    let report = grader
        .grade(
            &cohort.prompt,
            &cohort.reference,
            &cohort.db,
            &cohort.submissions,
        )
        .expect("the generated cohort grades cleanly");
    print!("{}", report.render_text());

    // Show one student the counterexample they would see in the web tool.
    if let Some(first_wrong) = report
        .graded
        .iter()
        .find(|g| g.verdict.tag() == "wrong")
        .map(|g| g.submission_id.clone())
    {
        if let Some(explanation) = report.explanation_for(&first_wrong) {
            println!("\nwhat {first_wrong} sees:\n{explanation}");
        }
    }

    // A deadline-extension regrade: everything is answered from the cache.
    let regrade = grader
        .grade(
            "regrade",
            &cohort.reference,
            &cohort.db,
            &cohort.submissions,
        )
        .expect("regrade succeeds");
    println!(
        "\nregrade: {} pipeline runs, {} cache hits, wall {:?}",
        regrade.stats.pipeline_runs, regrade.stats.cache_hits, regrade.stats.wall_time
    );
}
