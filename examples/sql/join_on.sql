-- [JOIN ... ON]
--
-- Demonstrates:
--   - explicit θ-join syntax with table aliases
--   - the instructor's reference answer to course question 1
--     ("students registered for at least one CS course")

SELECT s.name, s.major
FROM Student s JOIN Registration r ON s.name = r.name AND r.dept = 'CS'
