-- [EXISTS subquery — a classic student error]
--
-- Demonstrates:
--   - an uncorrelated EXISTS (all-or-nothing filter)
--   - the bug: the subquery is not correlated with the outer student, so
--     the query returns EVERY student as soon as anyone takes a CS course.
--     The grader answers with a small counterexample instead of "wrong".

SELECT name, major
FROM Student
WHERE EXISTS (SELECT course FROM Registration WHERE dept = 'CS')
