-- [Comma join + WHERE]
--
-- Demonstrates:
--   - FROM with comma-separated tables (cross product) filtered in WHERE
--   - canonicalization: this file and join_on.sql lower to plans with the
--     same canonical fingerprint, so the grader explains them once

SELECT s.name, s.major
FROM Student s, Registration r
WHERE s.name = r.name AND r.dept = 'CS'
