-- expect: parse at 'Mary'
--
-- IN with a literal list is not part of the supported dialect (only
-- uncorrelated subqueries can appear after IN).
-- Expected: a parse diagnostic pointing at the first list element.

SELECT name
FROM Student
WHERE name IN ('Mary', 'John')
