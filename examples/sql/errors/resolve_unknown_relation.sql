-- expect: unknown_relation at Studnet
--
-- The FROM clause misspells Student.
-- Expected: a resolve diagnostic with a "did you mean `Student`?" hint.

SELECT name, major
FROM Studnet
