-- expect: unknown_column at nme
--
-- The select list misspells the name column.
-- Expected: a resolve diagnostic with a "did you mean `name`?" hint.

SELECT nme, major
FROM Student
