-- expect: lex at 'CS
--
-- The string literal is never closed.
-- Expected: a lexer diagnostic spanning from the opening quote.

SELECT name, major
FROM Student
WHERE major = 'CS
