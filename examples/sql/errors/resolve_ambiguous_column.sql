-- expect: ambiguous_column at name
--
-- Both tables carry a column with this identifier, and the reference in
-- the select list is unqualified.
-- Expected: a resolve diagnostic listing the candidate columns.

SELECT name
FROM Student s, Registration r
WHERE s.name = r.name
