-- expect: unsupported at s.name)
--
-- The EXISTS subquery references the outer query's alias `s` — a
-- correlated subquery, which the SPJUDA lowering does not support.
-- Expected: a resolve diagnostic naming the correlation (not a bogus
-- "unknown column").

SELECT s.name, s.major
FROM Student s
WHERE EXISTS (
  SELECT r.course FROM Registration r WHERE r.name = s.name)
