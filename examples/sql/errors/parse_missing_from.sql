-- expect: parse at <eof>
--
-- The statement ends before a FROM clause.
-- Expected: a parse diagnostic at the end of input asking for FROM.

SELECT name, major
