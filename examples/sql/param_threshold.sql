-- [Query parameters]
--
-- Demonstrates:
--   - an @parameter in a HAVING threshold; the grader binds it with
--     `--param minCS=1` and the parameterized-counterexample algorithm may
--     re-choose it when explaining a wrong variant
--   - with minCS = 1 this is equivalent to join_on.sql

SELECT s.name, s.major
FROM Student s
WHERE s.name IN (
  SELECT name FROM Registration WHERE dept = 'CS'
  GROUP BY name HAVING COUNT(*) >= @minCS
)
