-- [GROUP BY + HAVING inside an IN subquery]
--
-- Demonstrates:
--   - aggregation with a HAVING threshold written directly on COUNT(*)
--     (the aggregate is hidden: it is added to γ and projected away)
--   - question 1 rewritten through aggregation: "at least one CS course"
--     as HAVING COUNT(*) >= 1 — equivalent to join_on.sql

SELECT s.name, s.major
FROM Student s
WHERE s.name IN (
  SELECT name FROM Registration WHERE dept = 'CS'
  GROUP BY name HAVING COUNT(*) >= 1
)
