-- [EXCEPT — answering the complementary question]
--
-- Demonstrates:
--   - a set difference between two SELECT blocks
--   - the bug: this answers question 2 ("no CS course") when the reference
--     is question 1 ("at least one CS course") — the counterexample shows a
--     student that one query returns and the other does not

SELECT name, major FROM Student
EXCEPT
SELECT s.name, s.major
FROM Student s JOIN Registration r ON s.name = r.name AND r.dept = 'CS'
