-- [IN subquery]
--
-- Demonstrates:
--   - an uncorrelated IN subquery desugared to a semijoin-style plan
--   - semantically equivalent to join_on.sql (graded `correct`), though its
--     plan shape differs, so it forms its own fingerprint group

SELECT name, major
FROM Student
WHERE name IN (SELECT name FROM Registration WHERE dept = 'CS')
