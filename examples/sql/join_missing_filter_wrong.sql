-- [Join without the department filter — a classic student error]
--
-- Demonstrates:
--   - the bug: the WHERE clause forgot `r.dept = 'CS'`, so the query
--     returns students with ANY registration. On an instance where some
--     student takes only non-CS courses, the grader produces a small
--     distinguishing counterexample.

SELECT s.name, s.major
FROM Student s, Registration r
WHERE s.name = r.name
