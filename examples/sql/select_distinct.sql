-- [SELECT DISTINCT]
--
-- Demonstrates:
--   - DISTINCT is accepted (and is a no-op under the paper's set semantics)

SELECT DISTINCT s.name, s.major
FROM Student s JOIN Registration r ON s.name = r.name AND r.dept = 'CS'
