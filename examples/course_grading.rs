//! Course-grading scenario (Section 7.1): grade a batch of "student
//! submissions" (mutated queries) against the reference queries on a
//! generated university database, and print a small counterexample for every
//! wrong submission — exactly what the RATest deployment did for the
//! relational-algebra homework.
//!
//! Run with: `cargo run --example course_grading`

use ratest_suite::core::session::Session;
use ratest_suite::datagen::{university_database, UniversityConfig};
use ratest_suite::queries::course::course_questions;
use ratest_suite::queries::mutations::sample_mutations;

fn main() {
    let db = university_database(&UniversityConfig::with_total(1_000));
    println!(
        "Generated university instance with {} tuples across {} relations.\n",
        db.total_tuples(),
        db.relation_count()
    );

    // One session for the whole class: each question's reference is
    // prepared once, however many submissions follow.
    let session = Session::builder(db.clone()).build();
    let mut caught = 0usize;
    let mut total = 0usize;
    for question in course_questions() {
        println!("Question {}: {}", question.number, question.prompt);
        let reference = session
            .prepare(&question.reference)
            .expect("reference queries are well-formed");
        for (i, submission) in sample_mutations(&question.reference, 2, 7 + question.number as u64)
            .into_iter()
            .enumerate()
        {
            total += 1;
            let outcome = session
                .explain(reference, &submission.query)
                .expect("queries are well-formed");
            match outcome.counterexample {
                None => {
                    println!(
                        "  submission {i}: passes on this instance ({})",
                        submission.description
                    );
                }
                Some(cex) => {
                    caught += 1;
                    println!(
                        "  submission {i}: WRONG ({}); counterexample of {} tuple(s), class {}, algorithm {:?}",
                        submission.description,
                        cex.size(),
                        outcome.class,
                        outcome.algorithm_used,
                    );
                }
            }
        }
        println!();
    }
    println!("{caught}/{total} wrong submissions were caught and explained on this instance.");
}
