//! A miniature RATest command-line tool: type two relational-algebra queries
//! (in the textual surface syntax) and get either "equivalent on this
//! instance" or a small counterexample — the CLI analogue of the web UI the
//! students used.
//!
//! Run with:
//! ```text
//! cargo run --example ratest_cli -- \
//!   "project[name](select[dept = 'CS'](Registration))" \
//!   "project[name](Registration)"
//! ```
//! With no arguments it falls back to that built-in demo pair, evaluated on
//! the Figure 1 toy instance.

use ratest_suite::core::report::render_explanation;
use ratest_suite::core::session::Session;
use ratest_suite::ra::parser::parse_query;
use ratest_suite::ra::testdata;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (q1_text, q2_text) = if args.len() >= 2 {
        (args[0].clone(), args[1].clone())
    } else {
        (
            "project[name](select[dept = 'CS'](Registration))".to_owned(),
            "project[name](Registration)".to_owned(),
        )
    };

    let q1 = match parse_query(&q1_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("failed to parse Q1: {e}");
            std::process::exit(1);
        }
    };
    let q2 = match parse_query(&q2_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("failed to parse Q2: {e}");
            std::process::exit(1);
        }
    };

    let db = testdata::figure1_db();
    println!("Q1: {q1_text}");
    println!("Q2: {q2_text}");
    println!("Instance: the Student/Registration toy database of Figure 1.\n");

    let session = Session::builder(db).build();
    match session.explain_pair(&q1, &q2) {
        Ok(outcome) => println!("{}", render_explanation(&outcome)),
        Err(e) => {
            eprintln!("RATest error: {e}");
            std::process::exit(1);
        }
    }
}
