//! Quickstart: the paper's running example (Example 1).
//!
//! The instructor's query finds students who registered for *exactly one*
//! CS course; the student's query finds students who registered for *at
//! least one*. On the toy instance of Figure 1 the two queries disagree, and
//! RATest produces a three-tuple counterexample that explains why.
//!
//! Run with: `cargo run --example quickstart`

use ratest_suite::core::report::render_explanation;
use ratest_suite::core::session::Session;
use ratest_suite::ra::testdata;
use ratest_suite::storage::display::render_database;

fn main() {
    let db = testdata::figure1_db();
    println!("Test database instance (Figure 1 of the paper):\n");
    println!("{}", render_database(&db));

    let correct = testdata::example1_q1();
    let submitted = testdata::example1_q2();

    // A session owns the instance and the prepared reference: grading a
    // second submission against `reference` would reuse all of that state.
    let session = Session::builder(db.clone()).build();
    let reference = session
        .prepare(&correct)
        .expect("the reference query is well-formed");
    let outcome = session
        .explain(reference, &submitted)
        .expect("the toy instance is well-formed");

    println!("{}", render_explanation(&outcome));

    let cex = outcome.counterexample.expect("the queries differ");
    println!(
        "The original instance has {} tuples; the explanation needs only {}.",
        db.total_tuples(),
        cex.size()
    );
}
