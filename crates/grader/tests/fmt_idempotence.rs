//! `grade fmt` conformance: the formatter (parse + re-render via
//! `ra::display::to_surface_string`) is idempotent — formatting its own
//! output is the identity — and the round trip preserves the query's
//! canonical fingerprint.

use proptest::prelude::*;
use ratest_queries::course::course_questions;
use ratest_queries::mutations::sample_mutations;
use ratest_ra::ast::Query;
use ratest_ra::canonical::fingerprint;
use ratest_ra::display::to_surface_string;
use ratest_ra::parser::parse_query;

/// One fmt pass over an AST: what `grade fmt` prints, minus the newline.
fn fmt_once(q: &Query) -> String {
    to_surface_string(q)
}

fn assert_fmt_fixpoint(q: &Query, label: &str) {
    let once = fmt_once(q);
    let reparsed = parse_query(&once)
        .unwrap_or_else(|e| panic!("{label}: formatted output must reparse: {e}"));
    let twice = fmt_once(&reparsed);
    assert_eq!(once, twice, "{label}: fmt ∘ fmt differs from fmt");
    assert_eq!(
        fingerprint(q),
        fingerprint(&reparsed),
        "{label}: fmt must preserve the canonical fingerprint"
    );
}

#[test]
fn fmt_is_idempotent_on_every_course_reference() {
    for q in course_questions() {
        assert_fmt_fixpoint(&q.reference, &format!("question {}", q.number));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: for any sampled mutation of any course question, one fmt
    /// pass is a fixpoint.
    #[test]
    fn fmt_is_idempotent_on_sampled_mutations(question in 0usize..8, seed in 0u64..1_000) {
        let q = &course_questions()[question];
        for m in sample_mutations(&q.reference, 2, seed) {
            assert_fmt_fixpoint(&m.query, &m.description);
        }
    }
}

/// Drive the real subcommand: `grade fmt` on a file, then on its own
/// output, must produce identical bytes (and exit 0).
#[test]
fn the_fmt_subcommand_is_idempotent_end_to_end() {
    let dir = std::env::temp_dir().join(format!("ratest-fmt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let q3 = course_questions()
        .into_iter()
        .find(|q| q.number == 3)
        .unwrap()
        .reference;
    let input = dir.join("q3.ra");
    // Deliberately un-normalized spelling of the same query.
    std::fs::write(&input, format!("  {}  \n", to_surface_string(&q3))).unwrap();

    let fmt = |path: &std::path::Path| -> String {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_grade"))
            .arg("fmt")
            .arg(path)
            .output()
            .expect("grade fmt runs");
        assert!(out.status.success(), "grade fmt exits 0");
        String::from_utf8(out.stdout).expect("fmt output is UTF-8")
    };
    let first = fmt(&input);
    let again = dir.join("q3-formatted.ra");
    std::fs::write(&again, &first).unwrap();
    let second = fmt(&again);
    assert_eq!(first, second, "grade fmt is idempotent end-to-end");
    let _ = std::fs::remove_dir_all(&dir);
}
