//! Protocol-conformance suite for the `grade serve` daemon.
//!
//! * **Golden conversation** (`fixtures/serve/course_conversation.ndjson` →
//!   `.expected`): the scripted dialogue of the acceptance criteria —
//!   prepare a reference, grade three submissions (one streamed with
//!   events, one rejected), re-grade one warm — must produce byte-exact
//!   output. `BLESS=1 cargo test -p ratest_grader --test serve_protocol`
//!   re-blesses after an intentional protocol change (bump
//!   [`ratest_grader::serve::PROTOCOL_VERSION`] when the change is
//!   wire-visible).
//! * **Determinism**: two fresh daemon runs over the same script are
//!   byte-identical.
//! * **Warm re-grade**: the re-graded submission is answered
//!   `"from_cache":true` and the `searches` counter does not move — zero
//!   counterexample searches.
//! * **Binary transport**: the same conversation piped through the real
//!   `grade serve` subprocess matches the in-process output, so the CI
//!   `serve-protocol` job and the library tests pin one artifact.

use ratest_grader::json::Json;
use ratest_grader::serve::serve;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/serve")
        .join(name)
}

/// A cloneable writer so the test can read the daemon's output back.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_in_process(script: &str) -> String {
    let out = SharedBuf::default();
    serve(script.as_bytes(), out.clone()).expect("serve loop runs");
    let bytes = out.0.lock().unwrap().clone();
    String::from_utf8(bytes).expect("daemon output is UTF-8")
}

fn course_conversation() -> String {
    std::fs::read_to_string(fixture("course_conversation.ndjson")).expect("fixture exists")
}

#[test]
fn the_course_conversation_matches_its_golden_transcript() {
    let got = run_in_process(&course_conversation());
    let expected_path = fixture("course_conversation.expected");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&expected_path, &got).unwrap();
        eprintln!("blessed {}", expected_path.display());
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .expect("golden transcript exists (run with BLESS=1 to create)");
    assert_eq!(
        got, expected,
        "protocol output drifted from the golden transcript; if the change \
         is intentional, bump PROTOCOL_VERSION if wire-visible and re-bless \
         with BLESS=1"
    );
}

#[test]
fn two_daemon_runs_are_byte_identical() {
    let script = course_conversation();
    assert_eq!(run_in_process(&script), run_in_process(&script));
}

#[test]
fn the_warm_regrade_is_answered_without_a_search() {
    let out = run_in_process(&course_conversation());
    let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
    let responses: Vec<&Json> = docs.iter().filter(|d| d.get("ok").is_some()).collect();
    // hello, prepare, 6 grades, 2 stats, shutdown.
    assert_eq!(responses.len(), 11, "{out}");

    let grade = |id: &str| {
        responses
            .iter()
            .find(|d| d.get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no response for {id}"))
            .to_owned()
    };
    // Cold grades actually searched; the rejection never reached the engine.
    assert_eq!(
        grade("s1.ra").get("from_cache").and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(
        grade("s1.ra").get("verdict").and_then(Json::as_str),
        Some("wrong")
    );
    assert_eq!(
        grade("s3.sql").get("verdict").and_then(Json::as_str),
        Some("rejected")
    );
    // The warm re-grade: same fingerprint, same verdict, zero new searches.
    let regrade = grade("s1-regrade.ra");
    assert_eq!(
        regrade.get("from_cache").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        regrade.get("fingerprint"),
        grade("s1.ra").get("fingerprint")
    );
    assert_eq!(
        regrade.get("counterexample_size"),
        grade("s1.ra").get("counterexample_size")
    );
    // The repair re-grade: answered from the cache, enriched with ranked
    // suggestions (the `repair` opt-in upgrades the cached Wrong verdict).
    let repaired = grade("s4-repair.ra");
    assert_eq!(
        repaired.get("from_cache").and_then(Json::as_bool),
        Some(true)
    );
    assert!(
        matches!(repaired.get("suggestions"), Some(Json::Arr(a)) if !a.is_empty()),
        "repair:true on a wrong submission returns suggestions: {repaired:?}"
    );
    let stats: Vec<&&Json> = responses
        .iter()
        .filter(|d| d.get("cmd").and_then(Json::as_str) == Some("stats"))
        .collect();
    assert_eq!(stats.len(), 2);
    let searches_before = stats[0].get("searches").and_then(Json::as_i64).unwrap();
    let searches_after = stats[1].get("searches").and_then(Json::as_i64).unwrap();
    assert_eq!(searches_before, 2, "two distinct gradable submissions");
    assert_eq!(
        searches_after, searches_before,
        "the warm re-grade performed zero counterexample searches"
    );
}

#[test]
fn the_grade_binary_speaks_the_same_protocol() {
    let script = course_conversation();
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_grade"))
        .arg("serve")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("grade serve starts");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("daemon exits on shutdown");
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        run_in_process(&script),
        "the subprocess transport and the in-process loop emit one artifact"
    );
}

/// `grade --spawn N` (the single-invocation shard driver) fuses its shard
/// artifacts into exactly the report the unsharded run writes.
#[test]
fn spawn_driver_matches_the_unsharded_report() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let examples = repo_root.join("examples/sql");
    let tmp = std::env::temp_dir().join(format!("ratest-spawn-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();

    let grade = |extra: &[&str]| {
        let status = std::process::Command::new(env!("CARGO_BIN_EXE_grade"))
            .arg(&examples)
            .args(["--reference", "1", "--param", "minCS=1"])
            .args(extra)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("grade runs");
        assert!(status.success(), "grade {extra:?} failed");
    };
    let cold = tmp.join("cold.json");
    let spawned = tmp.join("spawned.json");
    grade(&["--json", cold.to_str().unwrap()]);
    grade(&["--spawn", "2", "--json", spawned.to_str().unwrap()]);
    assert_eq!(
        std::fs::read_to_string(&cold).unwrap(),
        std::fs::read_to_string(&spawned).unwrap(),
        "spawn-merged report differs from the unsharded run"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}
