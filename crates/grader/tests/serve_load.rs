//! Load-shape conformance for the v3 `grade serve` daemon: concurrency,
//! LRU eviction, store-backed restart, and admission control.
//!
//! The byte-level protocol goldens live in `serve_protocol.rs`; this suite
//! pins the *semester-scale* behaviors layered on top in v3:
//!
//! * **Concurrent determinism** — with `threads > 1`, responses may
//!   interleave across requests, but each request id's line stream (its
//!   events followed by its response) is byte-identical run over run, and
//!   the multiset of output lines is too.
//! * **Eviction + restart warm start** — verdicts of an LRU-evicted
//!   reference land in the `--cache` store; re-preparing (same process or a
//!   fresh daemon) preloads them, so re-grades are answered `from_cache`
//!   with **zero** counterexample searches.
//! * **Admission control** — an over-capacity flood is answered (with
//!   `"overloaded":true` timeout verdicts), never queued unboundedly and
//!   never dropped: exactly one response per request id.

use ratest_grader::json::Json;
use ratest_grader::serve::{serve_with, ServeConfig};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A cloneable writer so the test can read the daemon's output back.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run(script: &str, config: ServeConfig) -> String {
    let out = SharedBuf::default();
    serve_with(script.as_bytes(), out.clone(), config).expect("serve loop runs");
    let bytes = out.0.lock().unwrap().clone();
    String::from_utf8(bytes).expect("daemon output is UTF-8")
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ratest-serve-load-{}-{name}", std::process::id()))
}

/// The lines attributed to one request id, in emission order.
fn lines_for_id(out: &str, id: &str) -> Vec<String> {
    out.lines()
        .filter(|l| {
            Json::parse(l)
                .ok()
                .and_then(|d| d.get("id").and_then(Json::as_str).map(str::to_owned))
                .as_deref()
                == Some(id)
        })
        .map(str::to_owned)
        .collect()
}

/// Five distinct-fingerprint submissions against course question 3 — each
/// one gets its own counterexample search, so each id has a non-trivial
/// event stream of its own.
const Q3_VARIANTS: [&str; 5] = [
    "project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))",
    "project[s.name, s.major](join[s.name = r.name](rename[s](Student), rename[r](Registration)))",
    "project[s.name](join[s.name = r.name](rename[s](Student), rename[r](Registration)))",
    "project[s.name, s.major](rename[s](Student))",
    "project[s.name, s.major](join[s.name = r.name and r.dept = 'ECON'](rename[s](Student), rename[r](Registration)))",
];

fn concurrent_script() -> String {
    let mut script =
        String::from(r#"{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}"#);
    script.push('\n');
    for (i, source) in Q3_VARIANTS.iter().enumerate() {
        script.push_str(&format!(
            r#"{{"cmd":"grade","ref":"q3","id":"s{i}.ra","lang":"ra","source":"{source}","events":true}}"#
        ));
        script.push('\n');
    }
    script.push_str("{\"cmd\":\"stats\",\"ref\":\"q3\"}\n{\"cmd\":\"shutdown\"}\n");
    script
}

#[test]
fn concurrent_grades_are_per_id_ordered_and_deterministic() {
    let config = ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    };
    let script = concurrent_script();
    let a = run(&script, config.clone());
    let b = run(&script, config);

    // The merged interleaving may differ run to run, but the line multiset
    // must not: every line's bytes are deterministic.
    let sorted = |out: &str| {
        let mut lines: Vec<&str> = out.lines().collect();
        lines.sort_unstable();
        lines.join("\n")
    };
    assert_eq!(sorted(&a), sorted(&b), "line multiset drifted across runs");

    for (i, _) in Q3_VARIANTS.iter().enumerate() {
        let id = format!("s{i}.ra");
        let stream_a = lines_for_id(&a, &id);
        let stream_b = lines_for_id(&b, &id);
        assert_eq!(stream_a, stream_b, "stream for {id} drifted across runs");
        // Events strictly precede the response; the response is last.
        let last = Json::parse(stream_a.last().expect("id has lines")).unwrap();
        assert_eq!(last.get("cmd").and_then(Json::as_str), Some("grade"));
        assert_eq!(last.get("ok").and_then(Json::as_bool), Some(true));
        for line in &stream_a[..stream_a.len() - 1] {
            let doc = Json::parse(line).unwrap();
            assert!(
                doc.get("event").is_some(),
                "non-event line mid-stream: {line}"
            );
        }
    }

    // `stats` is a barrier: by the time it answers, all five searches ran.
    let stats = a
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .find(|d| d.get("cmd").and_then(Json::as_str) == Some("stats"))
        .expect("stats response present");
    assert_eq!(stats.get("graded").and_then(Json::as_i64), Some(5));
    assert_eq!(stats.get("searches").and_then(Json::as_i64), Some(5));
}

#[test]
fn eviction_flushes_to_the_store_and_restart_is_a_warm_start() {
    let cache = tmp_path("evict.rvc");
    let _ = std::fs::remove_file(&cache);
    let config = ServeConfig {
        warm_cap: Some(1),
        cache: Some(cache.clone()),
        ..ServeConfig::default()
    };

    let wrong = Q3_VARIANTS[1];
    // prepare q3 → grade → prepare q4 (evicts q3, flushing its verdicts) →
    // re-prepare q3 (preloads them back) → re-grade is a cache hit.
    let script = format!(
        concat!(
            "{{\"cmd\":\"prepare\",\"ref\":\"q3\",\"question\":3,\"db_tuples\":24,\"seed\":7}}\n",
            "{{\"cmd\":\"grade\",\"ref\":\"q3\",\"id\":\"s1.ra\",\"lang\":\"ra\",\"source\":\"{wrong}\"}}\n",
            "{{\"cmd\":\"prepare\",\"ref\":\"q4\",\"question\":4,\"db_tuples\":24,\"seed\":7}}\n",
            "{{\"cmd\":\"prepare\",\"ref\":\"q3\",\"question\":3,\"db_tuples\":24,\"seed\":7}}\n",
            "{{\"cmd\":\"grade\",\"ref\":\"q3\",\"id\":\"s1-again.ra\",\"lang\":\"ra\",\"source\":\"{wrong}\"}}\n",
            "{{\"cmd\":\"stats\",\"ref\":\"q3\"}}\n",
            "{{\"cmd\":\"stats\"}}\n",
            "{{\"cmd\":\"shutdown\"}}\n",
        ),
        wrong = wrong
    );
    let out = run(&script, config.clone());
    let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
    // banner, prepare, grade, prepare, prepare, grade, stats, stats, shutdown
    assert_eq!(docs.len(), 9, "{out}");
    let warm_refs = |d: &Json| d.get("warm_refs").and_then(Json::as_i64);
    assert_eq!(warm_refs(&docs[1]), Some(1));
    assert_eq!(
        warm_refs(&docs[3]),
        Some(1),
        "cap 1: preparing q4 evicted q3"
    );
    assert_eq!(
        warm_refs(&docs[4]),
        Some(1),
        "cap 1: re-preparing q3 evicted q4"
    );
    // The re-prepare preloaded q3's flushed verdicts (warmup probe + s1).
    assert_eq!(docs[4].get("preloaded").and_then(Json::as_i64), Some(2));
    assert_eq!(
        docs[5].get("from_cache").and_then(Json::as_bool),
        Some(true),
        "re-grade after eviction + re-prepare is answered from the store"
    );
    assert_eq!(
        docs[6].get("searches").and_then(Json::as_i64),
        Some(0),
        "the preloaded reference never searched again"
    );
    assert_eq!(docs[7].get("scope").and_then(Json::as_str), Some("daemon"));
    assert_eq!(docs[7].get("evictions").and_then(Json::as_i64), Some(2));

    // A *fresh* daemon over the same store: restart = warm start, zero
    // counterexample searches for the re-graded submission.
    let restart_script = format!(
        concat!(
            "{{\"cmd\":\"prepare\",\"ref\":\"q3\",\"question\":3,\"db_tuples\":24,\"seed\":7}}\n",
            "{{\"cmd\":\"grade\",\"ref\":\"q3\",\"id\":\"s1-restart.ra\",\"lang\":\"ra\",\"source\":\"{wrong}\"}}\n",
            "{{\"cmd\":\"stats\",\"ref\":\"q3\"}}\n",
            "{{\"cmd\":\"shutdown\"}}\n",
        ),
        wrong = wrong
    );
    let out = run(&restart_script, config);
    let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(docs[1].get("preloaded").and_then(Json::as_i64), Some(2));
    assert_eq!(
        docs[2].get("from_cache").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        docs[3].get("searches").and_then(Json::as_i64),
        Some(0),
        "the restarted daemon re-grades with zero searches"
    );
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn overload_floods_get_one_answer_per_request_never_a_hang() {
    let config = ServeConfig {
        threads: 2,
        admit_timeout_ms: 0,
        ..ServeConfig::default()
    };
    let mut script =
        String::from(r#"{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}"#);
    script.push('\n');
    for i in 0..12 {
        let source = Q3_VARIANTS[i % Q3_VARIANTS.len()];
        script.push_str(&format!(
            r#"{{"cmd":"grade","ref":"q3","id":"f{i}.ra","lang":"ra","source":"{source}"}}"#
        ));
        script.push('\n');
    }
    script.push_str("{\"cmd\":\"shutdown\"}\n");

    let out = run(&script, config);
    let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
    let grades: Vec<&Json> = docs
        .iter()
        .filter(|d| d.get("cmd").and_then(Json::as_str) == Some("grade"))
        .collect();
    assert_eq!(
        grades.len(),
        12,
        "every flood request got exactly one answer"
    );
    let mut ids: Vec<&str> = grades
        .iter()
        .filter_map(|d| d.get("id").and_then(Json::as_str))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 12, "no id was answered twice or dropped");
    for g in &grades {
        // An admission reject is a well-formed timeout verdict, not an error.
        if g.get("overloaded").and_then(Json::as_bool) == Some(true) {
            assert_eq!(g.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(g.get("verdict").and_then(Json::as_str), Some("timeout"));
        }
    }
    // The shutdown ack is the last line: the daemon drained before exiting.
    assert_eq!(
        docs.last().unwrap().get("cmd").and_then(Json::as_str),
        Some("shutdown")
    );
}

#[test]
fn the_binary_accepts_the_serve_flags() {
    let cache = tmp_path("bin.rvc");
    let _ = std::fs::remove_file(&cache);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_grade"))
        .args([
            "serve",
            "--threads",
            "2",
            "--warm-cap",
            "2",
            "--admit-timeout-ms",
            "100",
            "--cache",
        ])
        .arg(&cache)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("grade serve starts");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"cmd\":\"hello\"}\n{\"cmd\":\"stats\"}\n{\"cmd\":\"shutdown\"}\n")
        .unwrap();
    let out = child.wait_with_output().expect("daemon exits on shutdown");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stats = stdout
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .find(|d| d.get("scope").and_then(Json::as_str) == Some("daemon"))
        .expect("daemon-scope stats");
    assert_eq!(stats.get("threads").and_then(Json::as_i64), Some(2));
    assert_eq!(stats.get("warm_cap").and_then(Json::as_i64), Some(2));
    assert_eq!(stats.get("persisted").and_then(Json::as_i64), Some(0));
    let _ = std::fs::remove_file(&cache);
}
