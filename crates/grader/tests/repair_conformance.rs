//! Repair conformance (ISSUE 7 acceptance): pins the contracts that make
//! provenance-directed repair trustworthy across engines and processes.
//!
//! * **Recovery** — for every `sample_mutations` edit of all 8 course
//!   questions that the instance distinguishes, the repair engine returns a
//!   ranked suggestion list whose top hit is fingerprint-equivalent to the
//!   reference.
//! * **Determinism** — the suggestion JSON a grading engine emits is
//!   byte-identical across two fresh engines.
//! * **Directedness** — provenance-directed ordering tries strictly fewer
//!   candidates than brute-force enumeration (`repair.candidates_tried`).
//! * **Cache round-trip** — `Verdict::Wrong` rows carrying suggestions
//!   survive the on-disk verdict cache losslessly and canonically.
//! * **Wire round-trip** — a `grade serve` conversation with `"repair":true`
//!   carries the same suggestion objects byte-identically.

use ratest_core::session::Session;
use ratest_grader::json::Json;
use ratest_grader::{store, CacheEntry, Grader, GraderConfig, Submission};
use ratest_queries::course::course_questions;
use ratest_queries::mutations::sample_mutations;
use ratest_ra::ast::Query;
use ratest_ra::canonical::fingerprint;
use ratest_ra::display::to_surface_string;
use ratest_ra::testdata::figure1_db;
use ratest_repair::{suggest_repairs_on, RepairOptions, RepairSuggestion, Verification};
use ratest_storage::{Database, Value};
use ratest_telemetry::{MetricsHandle, MetricsRegistry};
use std::path::PathBuf;
use std::sync::Arc;

/// Mutations sampled per question. Every sampled edit that yields a
/// counterexample on the instance must be repaired.
const SAMPLES_PER_QUESTION: usize = 3;
const SAMPLE_SEED: u64 = 2019;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ratest-repair-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Session options binding the one parameter some course questions take.
fn course_options() -> ratest_core::pipeline::RatestOptions {
    let mut options = ratest_core::pipeline::RatestOptions::default();
    options.parameters.insert("minCS".into(), Value::Int(1));
    options
}

/// The counterexample distinguishing `wrong` from `reference` on `db`, when
/// the instance catches the error at all.
fn cex_for(
    reference: &Query,
    wrong: &Query,
    db: &Database,
) -> Option<ratest_core::problem::Counterexample> {
    let session = Session::builder(db.clone())
        .options(course_options())
        .build();
    let handle = session.prepare(reference).ok()?;
    session
        .explain(handle, wrong)
        .ok()
        .and_then(|o| o.counterexample)
}

/// Every caught sampled mutation of every course question, with its
/// counterexample.
fn caught_pairs(
    db: &Database,
) -> Vec<(
    usize,
    Query,
    Query,
    String,
    ratest_core::problem::Counterexample,
)> {
    let mut out = Vec::new();
    for q in course_questions() {
        for m in sample_mutations(
            &q.reference,
            SAMPLES_PER_QUESTION,
            SAMPLE_SEED + q.number as u64,
        ) {
            if let Some(cex) = cex_for(&q.reference, &m.query, db) {
                out.push((q.number, q.reference.clone(), m.query, m.description, cex));
            }
        }
    }
    out
}

#[test]
fn every_caught_sampled_mutation_recovers_a_fingerprint_equal_top_suggestion() {
    let db = figure1_db();
    let pairs = caught_pairs(&db);
    assert!(
        pairs.len() >= 8,
        "the figure-1 instance catches at least one sampled mutation per question, got {}",
        pairs.len()
    );
    for (number, reference, wrong, description, cex) in &pairs {
        let suggestions = suggest_repairs_on(
            wrong,
            reference,
            cex,
            &db,
            &RepairOptions::default(),
            &MetricsHandle::none(),
        );
        assert!(
            !suggestions.is_empty(),
            "question {number}: `{description}` has no suggestion"
        );
        let top = &suggestions[0];
        assert_eq!(
            top.fingerprint,
            fingerprint(reference),
            "question {number}: `{description}` top suggestion is not \
             fingerprint-equivalent to the reference"
        );
        assert_eq!(top.verified, Verification::Fingerprint);
    }
}

#[test]
fn suggestion_json_is_byte_deterministic_across_two_fresh_engines() {
    let db = figure1_db();
    let q3 = course_questions()
        .into_iter()
        .find(|q| q.number == 3)
        .unwrap()
        .reference;
    let submissions: Vec<Submission> = sample_mutations(&q3, 4, SAMPLE_SEED)
        .into_iter()
        .enumerate()
        .map(|(i, m)| Submission::new(format!("s{i}.ra"), format!("author-{i}"), m.query))
        .collect();
    let run = || {
        let mut config = GraderConfig {
            workers: 1,
            repair: Some(RepairOptions::default()),
            ..Default::default()
        };
        config.options = course_options();
        let grader = Grader::new(config);
        grader
            .grade("q3", &q3, &db, &submissions)
            .expect("batch grades")
            .to_json()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fresh engines render identical reports");
    assert!(
        first.contains("\"suggestions\""),
        "at least one Wrong row carries suggestions"
    );
}

#[test]
fn directed_repair_tries_strictly_fewer_candidates_than_brute_force() {
    let db = figure1_db();
    let directed = Arc::new(MetricsRegistry::new());
    let brute = Arc::new(MetricsRegistry::new());
    // The full mutation space, not the sampled subset: directedness is an
    // aggregate claim, and individual pairs can go either way.
    let mut pairs = Vec::new();
    for q in course_questions() {
        for m in ratest_queries::mutations::mutate(&q.reference) {
            if let Some(cex) = cex_for(&q.reference, &m.query, &db) {
                pairs.push((q.number, q.reference.clone(), m.query, cex));
            }
        }
    }
    for (_, reference, wrong, cex) in pairs {
        for (registry, flag) in [(&directed, true), (&brute, false)] {
            let options = RepairOptions {
                directed: flag,
                max_suggestions: 1,
                ..RepairOptions::default()
            };
            suggest_repairs_on(
                &wrong,
                &reference,
                &cex,
                &db,
                &options,
                &MetricsHandle::new(Arc::clone(registry)),
            );
        }
    }
    let tried_directed = directed.counter("repair.candidates_tried");
    let tried_brute = brute.counter("repair.candidates_tried");
    assert!(
        tried_directed < tried_brute,
        "directed ordering ({tried_directed} candidates) must try strictly \
         fewer than brute force ({tried_brute})"
    );
}

#[test]
fn suggestions_survive_a_cache_round_trip_byte_identically() {
    let db = figure1_db();
    let dir = scratch("cache");
    // Collect real Wrong verdicts with suggestions from a repair-enabled
    // engine, then push them through the on-disk cache.
    let q3 = course_questions()
        .into_iter()
        .find(|q| q.number == 3)
        .unwrap()
        .reference;
    let submissions: Vec<Submission> = sample_mutations(&q3, 4, SAMPLE_SEED)
        .into_iter()
        .enumerate()
        .map(|(i, m)| Submission::new(format!("s{i}.ra"), format!("author-{i}"), m.query))
        .collect();
    let mut config = GraderConfig {
        workers: 1,
        repair: Some(RepairOptions::default()),
        ..Default::default()
    };
    config.options = course_options();
    let grader = Grader::new(config);
    let report = grader.grade("q3", &q3, &db, &submissions).expect("grades");
    let entries: Vec<CacheEntry> = report
        .graded
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.verdict.suggestions().is_empty())
        .map(|(i, g)| CacheEntry {
            context: 7,
            fingerprint: i as u64,
            verdict: g.verdict.clone(),
        })
        .collect();
    assert!(
        !entries.is_empty(),
        "at least one graded submission carries suggestions"
    );

    let first = dir.join("first.rvc");
    store::append(&first, &entries).expect("cache writes");
    let loaded = store::load(&first).expect("cache loads");
    assert!(loaded.skipped.is_empty(), "no records were skipped");
    assert_eq!(loaded.entries.len(), entries.len());
    for (original, decoded) in entries.iter().zip(&loaded.entries) {
        let originals: Vec<String> = original
            .verdict
            .suggestions()
            .iter()
            .map(RepairSuggestion::to_json)
            .collect();
        let decodeds: Vec<String> = decoded
            .verdict
            .suggestions()
            .iter()
            .map(RepairSuggestion::to_json)
            .collect();
        assert_eq!(originals, decodeds, "suggestions survive byte-identically");
    }

    // Canonical encoding: re-writing the decoded entries reproduces the
    // file byte-for-byte.
    let second = dir.join("second.rvc");
    store::append(&second, &loaded.entries).expect("cache re-writes");
    assert_eq!(
        std::fs::read(&first).unwrap(),
        std::fs::read(&second).unwrap(),
        "encode ∘ decode ∘ encode is the identity on cache files"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suggestions_survive_the_serve_wire_round_trip_byte_identically() {
    // The exact instance the daemon builds for this prepare request.
    let db = ratest_datagen::university_database(&ratest_datagen::UniversityConfig {
        total_tuples: 24,
        seed: 7,
        ..Default::default()
    });
    let q3 = course_questions()
        .into_iter()
        .find(|q| q.number == 3)
        .unwrap()
        .reference;
    // Pick a sampled mutation the 24-tuple instance distinguishes and whose
    // repair succeeds, so the wire comparison is non-vacuous.
    let (wrong, expected): (Query, Vec<String>) = sample_mutations(&q3, 8, SAMPLE_SEED)
        .into_iter()
        .find_map(|m| {
            let session = Session::builder(db.clone()).build();
            let handle = session.prepare(&q3).ok()?;
            let cex = session.explain(handle, &m.query).ok()?.counterexample?;
            let suggestions = suggest_repairs_on(
                &m.query,
                &q3,
                &cex,
                &db,
                &RepairOptions::default(),
                &MetricsHandle::none(),
            );
            if suggestions.is_empty() {
                return None;
            }
            Some((
                m.query,
                suggestions.iter().map(RepairSuggestion::to_json).collect(),
            ))
        })
        .expect("some sampled q3 mutation is caught and repaired on 24 tuples");

    let source = Json::Str(to_surface_string(&wrong)).render();
    let script = format!(
        "{{\"cmd\":\"prepare\",\"ref\":\"q3\",\"question\":3,\"db_tuples\":24,\"seed\":7}}\n\
         {{\"cmd\":\"grade\",\"ref\":\"q3\",\"id\":\"wrong.ra\",\"lang\":\"ra\",\"source\":{source},\"repair\":true}}\n\
         {{\"cmd\":\"shutdown\"}}\n"
    );
    // The daemon wants an owned `'static` writer; share the buffer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let run = || {
        let out = SharedBuf::default();
        ratest_grader::serve::serve(script.as_bytes(), out.clone()).expect("in-process serve");
        let bytes = out.0.lock().unwrap().clone();
        String::from_utf8(bytes).expect("serve output is UTF-8")
    };
    let output = run();
    assert_eq!(output, run(), "serve conversations are byte-deterministic");

    let grade_reply = output
        .lines()
        .map(|l| Json::parse(l).expect("daemon emits JSON lines"))
        .find(|d| d.get("id").and_then(Json::as_str) == Some("wrong.ra"))
        .expect("the grade request was answered");
    assert_eq!(
        grade_reply.get("verdict").and_then(Json::as_str),
        Some("wrong")
    );
    let Some(Json::Arr(wire)) = grade_reply.get("suggestions") else {
        panic!("wrong verdict with repair:true carries a suggestions array");
    };
    let wire: Vec<String> = wire.iter().map(Json::render).collect();
    assert_eq!(
        wire, expected,
        "wire suggestions match the direct engine byte-for-byte"
    );
}
