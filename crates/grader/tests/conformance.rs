//! The grading conformance harness (ISSUE 4): pins the contracts that make
//! persistent, sharded grading trustworthy across PRs and processes.
//!
//! * **Warm-regrade parity** — re-grading `examples/sql/` from a populated
//!   verdict cache performs *zero* counterexample searches (engine stats)
//!   and renders a byte-identical JSON report.
//! * **Shard-merge parity** — for any shard count, grading the shards
//!   independently and merging their reports/caches reproduces exactly the
//!   unsharded artifacts.
//! * **Cache round-trip** — the on-disk verdict encoding is lossless and
//!   canonical (encode ∘ decode ∘ encode is the identity on files), and
//!   corrupting any single byte of a cache file never panics the loader.
//! * **Golden schemas** — the JSON class report and the cache file format
//!   are pinned by golden files; an unintentional schema drift fails with a
//!   diff (re-bless intentional changes with `BLESS=1`).

use proptest::prelude::*;
use ratest_grader::ingest::RejectedSubmission;
use ratest_grader::json::Json;
use ratest_grader::submission::Submission;
use ratest_grader::{
    ingest_dir, merge_reports, shard_cohort, store, CacheEntry, Grader, GraderConfig, IngestEntry,
    IngestedCohort, ShardSpec, Verdict,
};
use ratest_queries::course::course_questions;
use ratest_ra::ast::Query;
use ratest_storage::{Database, Value};
use std::path::PathBuf;

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/sql")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ratest-conformance-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same hidden instance the `grade` CLI uses by default.
fn hidden_instance() -> Database {
    ratest_datagen::university_database(&ratest_datagen::UniversityConfig {
        total_tuples: 60,
        seed: 2019,
        ..Default::default()
    })
}

fn q1_reference() -> Query {
    course_questions()
        .into_iter()
        .find(|q| q.number == 1)
        .expect("course question 1 exists")
        .reference
}

fn grader() -> Grader {
    let mut config = GraderConfig {
        workers: 2,
        ..Default::default()
    };
    config
        .options
        .parameters
        .insert("minCS".into(), Value::Int(1));
    Grader::new(config)
}

fn examples_cohort(db: &Database) -> IngestedCohort {
    ingest_dir(&examples_dir(), db).expect("examples/sql is readable")
}

// ---------------------------------------------------------------------------
// Warm-regrade parity
// ---------------------------------------------------------------------------

#[test]
fn warm_regrade_is_search_free_and_byte_identical() {
    let dir = scratch("warm");
    let cache_path = dir.join("verdicts.rvc");
    let db = hidden_instance();
    let reference = q1_reference();
    let cohort = examples_cohort(&db);

    // Cold run: populate the cache file.
    let cold_grader = grader();
    let cold = cold_grader
        .grade_cohort("course question 1", &reference, &db, &cohort)
        .unwrap();
    assert!(cold.stats.pipeline_runs > 0, "cold run must search");
    assert!(cold.stats.wrong > 0 && cold.stats.correct > 0 && cold.stats.rejected > 0);
    store::append(&cache_path, &cold_grader.cache_entries()).unwrap();

    // Warm run: a *fresh* engine seeded only from the file.
    let warm_grader = grader();
    let loaded = store::load(&cache_path).unwrap();
    assert!(loaded.skipped.is_empty(), "{:?}", loaded.skipped);
    assert_eq!(loaded.entries.len(), cold_grader.cached_verdicts());
    warm_grader.preload_cache(loaded.entries);
    let warm = warm_grader
        .grade_cohort("course question 1", &reference, &db, &cohort)
        .unwrap();

    // Zero counterexample searches: every distinct group came from the cache.
    assert_eq!(warm.stats.pipeline_runs, 0, "{:?}", warm.stats);
    assert_eq!(warm.stats.cache_hits, warm.stats.distinct_groups);
    for g in &warm.graded {
        if !matches!(g.verdict, Verdict::Rejected { .. }) {
            assert!(g.from_cache, "{} not served from cache", g.submission_id);
        }
    }

    // Byte-identical JSON report.
    assert_eq!(cold.to_json(), warm.to_json());

    // The warm counterexamples decoded from disk still render explanations.
    let wrong = warm
        .graded
        .iter()
        .find(|g| g.verdict.tag() == "wrong")
        .expect("the catalog has wrong submissions");
    let explanation = warm.explanation_for(&wrong.submission_id).unwrap();
    assert!(!explanation.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Shard-merge parity
// ---------------------------------------------------------------------------

#[test]
fn shard_grading_merges_to_exactly_the_unsharded_report() {
    let db = hidden_instance();
    let reference = q1_reference();
    let cohort = examples_cohort(&db);
    let unsharded = grader()
        .grade_cohort("course question 1", &reference, &db, &cohort)
        .unwrap()
        .to_json();

    for count in [2usize, 3] {
        let mut shard_docs = Vec::new();
        let mut shard_caches: Vec<CacheEntry> = Vec::new();
        let mut shard_sizes = Vec::new();
        for index in 1..=count {
            let spec = ShardSpec::new(index, count).unwrap();
            let slice = shard_cohort(&cohort, &spec);
            shard_sizes.push(slice.entries.len());
            let shard_grader = grader();
            let report = shard_grader
                .grade_cohort("course question 1", &reference, &db, &slice)
                .unwrap();
            shard_docs.push(Json::parse(&report.to_json()).unwrap());
            shard_caches.extend(shard_grader.cache_entries());
        }
        // The partition is total: the slices add up to the cohort.
        assert_eq!(
            shard_sizes.iter().sum::<usize>(),
            cohort.entries.len(),
            "{count} shards must partition the cohort"
        );
        assert!(
            shard_sizes.iter().all(|&s| s > 0),
            "this catalog spreads over {count} shards: {shard_sizes:?}"
        );

        // Merged report is byte-identical to the unsharded run.
        let merged = merge_reports(&shard_docs).unwrap().render();
        assert_eq!(merged, unsharded, "{count}-shard merge parity");

        // Merged caches warm-start a full regrade with zero searches.
        let dir = scratch(&format!("merge{count}"));
        let merged_cache = dir.join("merged.rvc");
        store::write_merged(&merged_cache, &shard_caches).unwrap();
        let warm_grader = grader();
        warm_grader.preload_cache(store::load(&merged_cache).unwrap().entries);
        let warm = warm_grader
            .grade_cohort("course question 1", &reference, &db, &cohort)
            .unwrap();
        assert_eq!(warm.stats.pipeline_runs, 0, "{:?}", warm.stats);
        assert_eq!(warm.to_json(), unsharded);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Cache round-trip and corruption tolerance
// ---------------------------------------------------------------------------

/// Every verdict the real grading produced, plus synthetic `Error` rows
/// exercising the escaping edge cases.
fn representative_entries() -> Vec<CacheEntry> {
    let db = hidden_instance();
    let g = grader();
    g.grade_cohort(
        "course question 1",
        &q1_reference(),
        &db,
        &examples_cohort(&db),
    )
    .unwrap();
    let mut entries = g.cache_entries();
    for (i, message) in [
        "plain message",
        "multi\nline\r\nwith \\backslashes\\ and | pipes",
        "unicode: Märy 学生 🎓",
        "",
    ]
    .into_iter()
    .enumerate()
    {
        entries.push(CacheEntry {
            context: 0xDEAD_0000 + i as u64,
            fingerprint: i as u64,
            verdict: Verdict::Error {
                message: message.into(),
            },
        });
    }
    entries
}

#[test]
fn cache_round_trip_is_lossless_and_canonical() {
    let dir = scratch("roundtrip");
    let first = dir.join("first.rvc");
    let second = dir.join("second.rvc");
    let entries = representative_entries();
    assert!(entries.len() >= 8);

    // Payload-level: encode ∘ decode ∘ encode is the identity.
    for e in &entries {
        let payload = store::encode_verdict(&e.verdict).unwrap();
        let decoded = store::decode_verdict(&payload).unwrap();
        assert_eq!(store::encode_verdict(&decoded).unwrap(), payload);
    }

    // File-level: write, load, write again — byte-identical files.
    store::append(&first, &entries).unwrap();
    let loaded = store::load(&first).unwrap();
    assert!(loaded.skipped.is_empty(), "{:?}", loaded.skipped);
    assert_eq!(loaded.entries.len(), entries.len());
    store::append(&second, &loaded.entries).unwrap();
    assert_eq!(
        std::fs::read_to_string(&first).unwrap(),
        std::fs::read_to_string(&second).unwrap()
    );

    // Wrong verdicts kept their full counterexamples through the disk trip.
    let db = hidden_instance();
    let wrong = loaded
        .entries
        .iter()
        .filter_map(|e| e.verdict.counterexample())
        .collect::<Vec<_>>();
    assert!(!wrong.is_empty());
    for cex in wrong {
        assert!(
            db.contains_subinstance(cex.database()),
            "decoded counterexample must still be a sub-instance of the hidden db"
        );
        assert!(!cex.q1_result.set_eq(&cex.q2_result));
    }

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single byte of a cache file must never panic the
    /// loader: the outcome is either a clean load (the flip landed in
    /// whitespace-insensitive territory — impossible here, or produced a
    /// colliding-but-valid record), a skipped record, or a header error.
    #[test]
    fn single_byte_corruption_never_panics_the_loader(
        position_seed in 0u64..1_000_000,
        flip in 1u8..255,
    ) {
        use std::sync::OnceLock;
        static FILE: OnceLock<(PathBuf, Vec<u8>, usize)> = OnceLock::new();
        let (path, original, n_entries) = FILE.get_or_init(|| {
            let dir = scratch("fuzz");
            let path = dir.join("fuzz.rvc");
            let entries = representative_entries();
            store::append(&path, &entries).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            (path, bytes, entries.len())
        });

        let mut corrupted = original.clone();
        let pos = (position_seed as usize) % corrupted.len();
        corrupted[pos] ^= flip;
        let corrupted_path = path.with_extension("corrupted");
        std::fs::write(&corrupted_path, &corrupted).unwrap();

        match store::load(&corrupted_path) {
            Ok(loaded) => {
                // Every record is accounted for: loaded, or skipped with a
                // reason. At most the one corrupted line can be lost.
                prop_assert!(loaded.entries.len() + loaded.skipped.len() >= n_entries - 1);
                prop_assert!(loaded.entries.len() <= *n_entries + 1);
            }
            Err(store::StoreError::Header { .. }) => {} // flip hit line 1
            Err(store::StoreError::Io(_)) => {}         // flip made it non-UTF-8
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Golden schemas
// ---------------------------------------------------------------------------

/// A fixed toy batch with one row of every persistable verdict kind plus a
/// frontend rejection, graded on the paper's Figure 1 instance — small
/// enough to read in a diff, rich enough to pin the whole report schema.
fn golden_batch() -> (Grader, ratest_grader::BatchReport) {
    use ratest_ra::builder::rel;
    use ratest_ra::testdata;

    let db = testdata::figure1_db();
    let reference = testdata::example1_q1();
    let cohort = IngestedCohort {
        entries: vec![
            IngestEntry::Parsed(Submission::new("ada.ra", "ada", testdata::example1_q1())),
            IngestEntry::Parsed(Submission::new("ben.ra", "ben", testdata::example1_q2())),
            IngestEntry::Parsed(Submission::new(
                "cyd.ra",
                "cyd",
                rel("Student").project(&["name"]).build(), // not union compatible
            )),
            IngestEntry::Rejected(RejectedSubmission {
                id: "dee.sql".into(),
                author: "dee".into(),
                verdict: Verdict::Rejected {
                    message: "unknown column `nme` (at 7..10); did you mean `name`?".into(),
                    phase: "resolve".into(),
                    kind: "unknown_column".into(),
                    span: Some((7, 10)),
                },
                rendered: String::new(),
            }),
        ],
    };
    let g = Grader::new(GraderConfig {
        workers: 1,
        ..Default::default()
    });
    let report = g
        .grade_cohort("golden batch", &reference, &db, &cohort)
        .unwrap();
    (g, report)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — run with BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, golden,
        "\n{name} drifted from its golden pin. A format change is a cache/\
         report schema change: bump the format version (store::CACHE_HEADER) \
         and/or re-bless intentionally with BLESS=1.\n"
    );
}

#[test]
fn the_json_report_schema_is_pinned() {
    let (_, report) = golden_batch();
    assert_eq!(report.stats.correct, 1);
    assert_eq!(report.stats.wrong, 1);
    assert_eq!(report.stats.errors, 1);
    assert_eq!(report.stats.rejected, 1);
    check_golden("class_report.json", &report.to_json());
}

#[test]
fn the_cache_file_schema_is_pinned() {
    let dir = scratch("golden-cache");
    let path = dir.join("golden.rvc");
    let (g, _) = golden_batch();
    store::append(&path, &g.cache_entries()).unwrap();
    let contents = std::fs::read_to_string(&path).unwrap();
    assert!(contents.starts_with(store::CACHE_HEADER));
    check_golden("verdict_cache.rvc", &contents);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Telemetry conformance (the deterministic-metrics contract)
// ---------------------------------------------------------------------------

/// The warm-path guarantee, proven over the registry instead of report
/// fields: a warm re-grade's metrics delta shows zero counterexample
/// searches and one cache hit per distinct group.
#[test]
fn warm_regrade_metrics_prove_zero_searches() {
    let db = hidden_instance();
    let reference = q1_reference();
    let cohort = examples_cohort(&db);
    let engine = grader();
    engine
        .grade_cohort("course question 1", &reference, &db, &cohort)
        .unwrap();

    let baseline = engine.metrics_snapshot();
    let warm = engine
        .grade_cohort("course question 1", &reference, &db, &cohort)
        .unwrap();
    let after = engine.metrics_snapshot();

    assert_eq!(after.counter_since(&baseline, "grader.searches"), 0);
    assert_eq!(after.counter_since(&baseline, "grader.cache_misses"), 0);
    assert_eq!(
        after.counter_since(&baseline, "grader.cache_hits"),
        warm.stats.distinct_groups as u64,
        "every distinct group of the warm cohort is a cache hit"
    );
    // No pipeline work happened either: the evaluator/solver counters are
    // exactly where the cold run left them.
    for name in ["explain.runs", "ra.eval.calls", "solver.calls"] {
        assert_eq!(after.counter_since(&baseline, name), 0, "{name} moved");
    }
}

/// The occupancy gauges report *current* values, not high-water marks:
/// `grader.queue_depth` drains back to zero with the queue, and
/// `grader.warm_sessions` goes down when the warm cap evicts a session.
#[test]
fn occupancy_gauges_track_real_values_not_high_water_marks() {
    let db = hidden_instance();
    let reference = q1_reference();
    let cohort = examples_cohort(&db);
    let mut config = GraderConfig {
        workers: 2,
        warm_cap: Some(1),
        ..Default::default()
    };
    config
        .options
        .parameters
        .insert("minCS".into(), Value::Int(1));
    let engine = Grader::new(config);
    engine
        .grade_cohort("course question 1", &reference, &db, &cohort)
        .unwrap();

    // The queue was non-empty mid-batch, but once the batch drains the
    // gauge reads the real depth (zero), not the batch's high-water mark.
    let snapshot = engine.metrics_snapshot();
    assert_eq!(snapshot.gauge("grader.queue_depth"), Some(0));
    assert_eq!(snapshot.gauge("grader.warm_sessions"), Some(1));
    assert_eq!(engine.warm_sessions(), 1);

    // Grading a second context under a cap of one evicts the first; the
    // gauge moves with real occupancy instead of only ever increasing.
    let q2 = course_questions()
        .into_iter()
        .find(|q| q.number == 2)
        .expect("course question 2 exists")
        .reference;
    engine
        .grade_cohort("course question 2", &q2, &db, &cohort)
        .unwrap();
    assert_eq!(engine.warm_sessions(), 1);
    assert_eq!(engine.metrics().gauge("grader.warm_sessions"), Some(1));
    assert_eq!(engine.metrics().counter("grader.session_evictions"), 1);
}

/// Two identical cold runs on fresh engines produce byte-identical metrics
/// JSON once the volatile duration section is (structurally) stripped.
#[test]
fn metrics_snapshots_are_byte_deterministic_without_volatile_fields() {
    let run = || {
        let db = hidden_instance();
        let reference = q1_reference();
        let cohort = examples_cohort(&db);
        let mut config = GraderConfig {
            workers: 1,
            ..Default::default()
        };
        config
            .options
            .parameters
            .insert("minCS".into(), Value::Int(1));
        let engine = Grader::new(config);
        engine
            .grade_cohort("course question 1", &reference, &db, &cohort)
            .unwrap();
        engine.metrics_snapshot()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.to_json(false), b.to_json(false));
    // The stripped rendering contains no volatile section at all, while the
    // full rendering isolates wall-clock totals under the single key.
    assert!(!a.to_json(false).contains("volatile"));
    assert!(a.counter("grader.searches") > 0);
}

/// Sequential requests against one prepared reference share its warm solver
/// pool: `solver.pool_cross_request_reuses` counts every request after the
/// first, and the sharing is deterministic — two fresh sessions running the
/// same request sequence render byte-identical metrics. (The grading engine
/// itself opts out by passing a per-job fresh handle, because its jobs run
/// on concurrent workers where shared solver state would make clause
/// retention depend on scheduling order.)
#[test]
fn sequential_requests_share_the_reference_solver_pool() {
    use ratest_core::pipeline::{Algorithm, RatestOptions};
    use ratest_core::session::Session;
    use ratest_ra::testdata;
    use ratest_telemetry::{MetricsHandle, MetricsRegistry};
    use std::sync::Arc;

    let run = || {
        let registry = Arc::new(MetricsRegistry::new());
        let options = RatestOptions {
            // Force the solver algorithm so the pooled solver really works
            // (the Auto route answers Example 1 via the poly-time path).
            algorithm: Algorithm::Basic,
            metrics: MetricsHandle::new(registry.clone()),
            ..Default::default()
        };
        let session = Session::builder(testdata::figure1_db())
            .options(options)
            .build();
        let handle = session.prepare(&testdata::example1_q1()).unwrap();
        for _ in 0..3 {
            let outcome = session.explain(handle, &testdata::example1_q2()).unwrap();
            assert!(outcome.counterexample.is_some());
        }
        registry.snapshot()
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.counter("solver.pool_cross_request_reuses"),
        2,
        "every request after the first reuses the prepared pool"
    );
    assert!(
        a.counter("solver.calls") > 0,
        "the pair exercises the solver"
    );
    assert_eq!(a.to_json(false), b.to_json(false));
}
