//! Class-level reports: per-submission verdict table, aggregate statistics,
//! and a JSON rendering for downstream tooling (LMS upload, dashboards).

use crate::json::Json;
use crate::verdict::{GradedSubmission, Verdict};
use ratest_core::report::render_counterexample;
use std::fmt::Write as _;
use std::time::Duration;

/// Aggregate statistics for one graded batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Total submissions in the batch.
    pub submissions: usize,
    /// Distinct canonical fingerprints among them.
    pub distinct_groups: usize,
    /// Submissions whose verdict was shared from another member of their
    /// fingerprint group (`submissions − distinct_groups`).
    pub dedup_hits: usize,
    /// Distinct groups answered from the cross-batch verdict cache.
    pub cache_hits: usize,
    /// Explanation pipeline runs actually executed
    /// (`distinct_groups − cache_hits`).
    pub pipeline_runs: usize,
    /// Worker threads configured.
    pub workers: usize,
    /// Submissions that agree with the reference.
    pub correct: usize,
    /// Submissions with a counterexample.
    pub wrong: usize,
    /// Submissions that could not be graded.
    pub errors: usize,
    /// Submissions whose grading timed out.
    pub timeouts: usize,
    /// Submissions rejected by the SQL/RA frontend before grading.
    pub rejected: usize,
    /// Wall-clock time for the whole batch.
    pub wall_time: Duration,
    /// Sum of per-job grading times (≥ `wall_time` when workers > 1 and the
    /// pool is busy — the parallel speedup is `total_grading_time /
    /// wall_time`).
    pub total_grading_time: Duration,
    /// Mean counterexample size over wrong submissions (0 when none).
    pub mean_counterexample_size: f64,
}

impl BatchStats {
    /// Aggregate from per-submission outcomes.
    pub fn collect(
        graded: &[GradedSubmission],
        distinct_groups: usize,
        cache_hits: usize,
        pipeline_runs: usize,
        workers: usize,
        wall_time: Duration,
    ) -> BatchStats {
        let mut correct = 0;
        let mut wrong = 0;
        let mut errors = 0;
        let mut timeouts = 0;
        let mut rejected = 0;
        let mut cex_sizes: Vec<usize> = Vec::new();
        for g in graded {
            match &g.verdict {
                Verdict::Correct => correct += 1,
                Verdict::Wrong { counterexample, .. } => {
                    wrong += 1;
                    cex_sizes.push(counterexample.size());
                }
                Verdict::Error { .. } => errors += 1,
                Verdict::Timeout { .. } => timeouts += 1,
                Verdict::Rejected { .. } => rejected += 1,
            }
        }
        // Each group's grading time is counted once (not per member).
        let mut seen = std::collections::HashSet::new();
        let total_grading_time = graded
            .iter()
            .filter(|g| seen.insert(g.fingerprint))
            .map(|g| g.grading_time)
            .sum();
        let mean_counterexample_size = if cex_sizes.is_empty() {
            0.0
        } else {
            cex_sizes.iter().sum::<usize>() as f64 / cex_sizes.len() as f64
        };
        BatchStats {
            submissions: graded.len(),
            distinct_groups,
            // Rejected submissions never enter a fingerprint group.
            dedup_hits: graded
                .len()
                .saturating_sub(rejected)
                .saturating_sub(distinct_groups),
            cache_hits,
            pipeline_runs,
            workers,
            correct,
            wrong,
            errors,
            timeouts,
            rejected,
            wall_time,
            total_grading_time,
            mean_counterexample_size,
        }
    }

    /// Fraction of submissions answered without a pipeline run in this batch
    /// (group dedup + cross-batch cache).
    pub fn reuse_rate(&self) -> f64 {
        if self.submissions == 0 {
            return 0.0;
        }
        1.0 - self.pipeline_runs as f64 / self.submissions as f64
    }
}

/// The full outcome of grading one batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Batch label (e.g. the question prompt).
    pub label: String,
    /// Whether the reference's provenance annotation was shared across
    /// workers. `false` exactly when the reference is an aggregate query
    /// ([`ratest_core::pipeline::PreparedReference`] has no annotation for
    /// those — the ROADMAP `aggprov` gap) and every pair paid for its own
    /// reference annotation.
    pub shared_annotation: bool,
    /// Per-submission verdicts, in submission order.
    pub graded: Vec<GradedSubmission>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

/// The deterministic slice of [`BatchStats`] that goes into the JSON report:
/// pure functions of the verdict rows, independent of workers, caches and
/// wall clocks. This is what makes a warm re-grade render byte-identically
/// to the cold run, and what lets `grade merge` recompute the class totals
/// from shard rows alone.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ReportCounts {
    pub submissions: usize,
    pub distinct_groups: usize,
    pub dedup_hits: usize,
    pub correct: usize,
    pub wrong: usize,
    pub errors: usize,
    pub timeouts: usize,
    pub rejected: usize,
    pub mean_counterexample_size: f64,
}

impl ReportCounts {
    pub(crate) fn from_stats(s: &BatchStats) -> ReportCounts {
        ReportCounts {
            submissions: s.submissions,
            distinct_groups: s.distinct_groups,
            dedup_hits: s.dedup_hits,
            correct: s.correct,
            wrong: s.wrong,
            errors: s.errors,
            timeouts: s.timeouts,
            rejected: s.rejected,
            mean_counterexample_size: s.mean_counterexample_size,
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("submissions", Json::Int(self.submissions as i64)),
            ("distinct_groups", Json::Int(self.distinct_groups as i64)),
            ("dedup_hits", Json::Int(self.dedup_hits as i64)),
            ("correct", Json::Int(self.correct as i64)),
            ("wrong", Json::Int(self.wrong as i64)),
            ("errors", Json::Int(self.errors as i64)),
            ("timeouts", Json::Int(self.timeouts as i64)),
            ("rejected", Json::Int(self.rejected as i64)),
            (
                "mean_counterexample_size",
                Json::Float(self.mean_counterexample_size),
            ),
        ])
    }
}

/// Assemble the canonical report document. Shared by [`BatchReport::to_json`]
/// and the shard merger so the two construction paths cannot drift.
pub(crate) fn report_document(
    label: &str,
    shared_annotation: bool,
    counts: &ReportCounts,
    rows: Vec<Json>,
) -> Json {
    Json::obj(vec![
        ("label", Json::str(label)),
        ("shared_annotation", Json::Bool(shared_annotation)),
        ("stats", counts.to_json()),
        ("submissions", Json::Arr(rows)),
    ])
}

/// Render one graded submission as its canonical JSON row (deterministic
/// fields only — cache provenance and timings are run-level facts reported
/// by the text output, not part of the verdict).
pub(crate) fn row_to_json(g: &GradedSubmission) -> Json {
    let mut pairs = vec![
        ("id", Json::str(&g.submission_id)),
        ("author", Json::str(&g.author)),
        ("fingerprint", Json::str(format!("{:016x}", g.fingerprint))),
        ("verdict", Json::str(g.verdict.tag())),
    ];
    match &g.verdict {
        Verdict::Wrong {
            counterexample,
            class,
            algorithm,
            suggestions,
            ..
        } => {
            pairs.push((
                "counterexample_size",
                Json::Int(counterexample.size() as i64),
            ));
            pairs.push(("class", Json::str(class.to_string())));
            pairs.push(("algorithm", Json::str(format!("{algorithm:?}"))));
            // Present only when repair ran and confirmed a fix, so
            // suggestion-free reports render byte-identically to before.
            if !suggestions.is_empty() {
                let rendered: Vec<Json> = suggestions
                    .iter()
                    .map(|s| Json::parse(&s.to_json()).expect("suggestions render valid JSON"))
                    .collect();
                pairs.push(("suggestions", Json::Arr(rendered)));
            }
        }
        Verdict::Error { message } => {
            pairs.push(("message", Json::str(message)));
        }
        Verdict::Timeout { budget } => {
            pairs.push(("timeout_ms", Json::Float(budget.as_secs_f64() * 1e3)));
        }
        Verdict::Rejected {
            message,
            phase,
            kind,
            span,
        } => {
            pairs.push(("message", Json::str(message)));
            pairs.push(("phase", Json::str(phase)));
            pairs.push(("kind", Json::str(kind)));
            if let Some((start, end)) = span {
                pairs.push((
                    "span",
                    Json::Arr(vec![Json::Int(*start as i64), Json::Int(*end as i64)]),
                ));
            }
        }
        Verdict::Correct => {}
    }
    Json::obj(pairs)
}

impl BatchReport {
    /// Render a human-readable summary: one line per submission plus the
    /// batch statistics (the CLI's default output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== batch: {}", self.label);
        for g in &self.graded {
            let detail = match &g.verdict {
                Verdict::Correct => "agrees with the reference".to_owned(),
                Verdict::Wrong {
                    counterexample,
                    suggestions,
                    ..
                } => match suggestions.first() {
                    Some(s) => format!(
                        "counterexample with {} tuple(s); suggested fix: {}",
                        counterexample.size(),
                        s.description
                    ),
                    None => format!("counterexample with {} tuple(s)", counterexample.size()),
                },
                Verdict::Error { message } => format!("error: {message}"),
                Verdict::Timeout { budget } if budget.is_zero() => {
                    // No per-job timeout was configured; the session-level
                    // budget (deadline/quota/cancel) stopped the run.
                    "timed out (session budget exhausted)".to_owned()
                }
                Verdict::Timeout { budget } => format!("timed out after {budget:?}"),
                Verdict::Rejected { message, phase, .. } => {
                    format!("rejected by the {phase} phase: {message}")
                }
            };
            let cached = if g.from_cache { " [cached]" } else { "" };
            let _ = writeln!(
                out,
                "{:<6} {:<22} {:<8} {}{}",
                g.submission_id,
                g.author,
                g.verdict.tag(),
                detail,
                cached
            );
        }
        let s = &self.stats;
        let _ = writeln!(
            out,
            "-- {} submissions, {} distinct ({} dedup hits, {} cache hits), {} pipeline runs on {} workers",
            s.submissions, s.distinct_groups, s.dedup_hits, s.cache_hits, s.pipeline_runs, s.workers
        );
        let _ = writeln!(
            out,
            "-- verdicts: {} correct / {} wrong / {} rejected / {} error / {} timeout; mean counterexample {:.1} tuples",
            s.correct, s.wrong, s.rejected, s.errors, s.timeouts, s.mean_counterexample_size
        );
        let _ = writeln!(
            out,
            "-- wall {:?}, cumulative grading {:?} (reuse rate {:.0}%)",
            s.wall_time,
            s.total_grading_time,
            s.reuse_rate() * 100.0
        );
        if !self.shared_annotation {
            let _ = writeln!(
                out,
                "-- reference annotation not shared (aggregate reference): each pair annotated separately"
            );
        }
        out
    }

    /// Render the counterexample shown to one student, if their submission
    /// was wrong.
    pub fn explanation_for(&self, submission_id: &str) -> Option<String> {
        self.graded
            .iter()
            .find(|g| g.submission_id == submission_id)
            .and_then(|g| g.verdict.counterexample())
            .map(render_counterexample)
    }

    /// Render the class-level JSON report.
    ///
    /// The document is **deterministic**: it contains only facts derivable
    /// from the verdict rows (no wall-clock times, worker counts or cache
    /// provenance), so a warm re-grade from a populated verdict cache
    /// renders byte-identically to the cold run, and merging shard reports
    /// reproduces the unsharded document exactly. The run-level facts remain
    /// available on [`BatchReport::stats`] and in [`BatchReport::render_text`].
    pub fn to_json(&self) -> String {
        let rows: Vec<Json> = self.graded.iter().map(row_to_json).collect();
        report_document(
            &self.label,
            self.shared_annotation,
            &ReportCounts::from_stats(&self.stats),
            rows,
        )
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Grader, GraderConfig};
    use crate::submission::Submission;
    use ratest_ra::testdata;

    fn toy_report() -> BatchReport {
        let db = testdata::figure1_db();
        let reference = testdata::example1_q1();
        let subs = vec![
            Submission::new("s0", "Ada", reference.clone()),
            Submission::new("s1", "Ben", testdata::example1_q2()),
            Submission::new("s2", "Cyd", testdata::example1_q2()),
        ];
        Grader::new(GraderConfig::default())
            .grade("exactly one CS", &reference, &db, &subs)
            .unwrap()
    }

    #[test]
    fn text_report_mentions_verdicts_and_stats() {
        let report = toy_report();
        let text = report.render_text();
        assert!(text.contains("s0"));
        assert!(text.contains("correct"));
        assert!(text.contains("wrong"));
        assert!(text.contains("pipeline runs"));
        assert!(text.contains("dedup"));
    }

    #[test]
    fn json_report_is_well_formed_and_complete() {
        let report = toy_report();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"submissions\":3"));
        assert!(json.contains("\"distinct_groups\":2"));
        assert!(json.contains("\"verdict\":\"wrong\""));
        assert!(json.contains("\"counterexample_size\":3"));
        assert!(json.contains("\"fingerprint\""));
        assert!(json.contains("\"shared_annotation\":true"));
    }

    #[test]
    fn json_report_is_deterministic_no_volatile_fields() {
        let report = toy_report();
        let json = report.to_json();
        // Wall clocks, worker counts and cache provenance are run-level
        // facts; their presence would break cold/warm byte-parity.
        for volatile in [
            "wall_ms",
            "grading_ms",
            "from_cache",
            "workers",
            "cache_hits",
            "pipeline_runs",
            "reuse_rate",
        ] {
            assert!(!json.contains(volatile), "volatile field `{volatile}`");
        }
        // Two renders of the same grading are byte-identical.
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn aggregate_references_report_unshared_annotation() {
        // Regression for the ROADMAP `aggprov` gap: the missing shared
        // annotation used to be silent (`PreparedReference.annotation` is
        // `None` for group-by references); the report now states it.
        let db = testdata::figure1_db();
        let reference = testdata::example4_q1();
        let subs = vec![Submission::new("s0", "Ada", testdata::example4_q2())];
        let report = Grader::new(GraderConfig::default())
            .grade("avg grade per dept", &reference, &db, &subs)
            .unwrap();
        assert!(!report.shared_annotation);
        assert!(report.to_json().contains("\"shared_annotation\":false"));
        assert!(report.render_text().contains("annotation not shared"));

        // A SPJUD reference, by contrast, shares its annotation.
        assert!(toy_report().shared_annotation);
    }

    #[test]
    fn per_student_explanations_render_for_wrong_submissions() {
        let report = toy_report();
        assert!(
            report.explanation_for("s0").is_none(),
            "correct: no counterexample"
        );
        let text = report
            .explanation_for("s1")
            .expect("wrong: has explanation");
        assert!(!text.is_empty());
    }

    #[test]
    fn reuse_rate_reflects_dedup() {
        let report = toy_report();
        // 3 submissions, 2 distinct → 1/3 reuse.
        assert!((report.stats.reuse_rate() - 1.0 / 3.0).abs() < 1e-9);
    }
}
