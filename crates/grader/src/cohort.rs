//! Generated grading workloads: a class of simulated students submitting
//! answers to a course question over a hidden university instance.
//!
//! Reuses the repo's existing machinery end to end: the reference queries
//! come from [`ratest_queries::course`], wrong answers from the mutation
//! engine ([`ratest_queries::mutations`] — the paper's student-error
//! classes), the class ability/adoption model from
//! [`ratest_userstudy::sample_class`], names and the hidden instance from
//! [`ratest_datagen`].

use crate::submission::Submission;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ratest_datagen::names::person_name;
use ratest_datagen::{university_database, UniversityConfig};
use ratest_queries::course::course_questions;
use ratest_queries::mutations::mutate;
use ratest_ra::ast::Query;
use ratest_storage::Database;
use ratest_userstudy::sample_class;

/// Configuration of a generated cohort.
#[derive(Debug, Clone)]
pub struct CohortConfig {
    /// Course question number (1–8, see `ratest_queries::course`).
    pub question: usize,
    /// Number of students (= submissions).
    pub class_size: usize,
    /// Total tuples in the hidden test instance.
    pub db_tuples: usize,
    /// RATest adoption rate fed to the class model.
    pub adoption_rate: f64,
    /// Seed for the class, the instance and the error draws.
    pub seed: u64,
}

impl Default for CohortConfig {
    fn default() -> Self {
        CohortConfig {
            question: 3, // "exactly one CS course" — the paper's Example 1
            class_size: 50,
            db_tuples: 60,
            adoption_rate: 0.8,
            seed: 2019,
        }
    }
}

/// A generated grading workload.
#[derive(Debug, Clone)]
pub struct GeneratedCohort {
    /// The natural-language prompt of the question.
    pub prompt: String,
    /// The instructor's reference query.
    pub reference: Query,
    /// The hidden test instance (with foreign keys).
    pub db: Database,
    /// One submission per student.
    pub submissions: Vec<Submission>,
}

/// Generate a cohort of submissions for one course question.
///
/// Each student's chance of submitting the reference query grows with their
/// sampled ability; everyone else submits a single-site mutation of the
/// reference drawn from the paper's error classes. Because the mutation
/// space of a query is finite and popular errors repeat, realistic cohorts
/// contain many duplicate wrong answers — exactly what the grading engine's
/// fingerprint dedup exploits.
pub fn generate_cohort(config: &CohortConfig) -> GeneratedCohort {
    let questions = course_questions();
    let idx = config.question.clamp(1, questions.len()) - 1;
    let question = &questions[idx];

    let db = university_database(&UniversityConfig {
        total_tuples: config.db_tuples,
        seed: config.seed,
        ..Default::default()
    });

    let profiles = sample_class(config.class_size, config.adoption_rate, config.seed);
    let mutations = mutate(&question.reference);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_C0DE);

    let submissions = profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let p_correct = (profile.ability * 0.85).min(0.95);
            let query = if mutations.is_empty() || rng.gen_bool(p_correct) {
                question.reference.clone()
            } else {
                mutations[rng.gen_range(0..mutations.len())].query.clone()
            };
            Submission::new(format!("s{i:03}"), person_name(i), query)
        })
        .collect();

    GeneratedCohort {
        prompt: question.prompt.to_owned(),
        reference: question.reference.clone(),
        db,
        submissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submission::group_by_fingerprint;

    #[test]
    fn cohorts_are_deterministic_per_seed() {
        let a = generate_cohort(&CohortConfig::default());
        let b = generate_cohort(&CohortConfig::default());
        assert_eq!(a.submissions.len(), b.submissions.len());
        for (x, y) in a.submissions.iter().zip(&b.submissions) {
            assert_eq!(x.query, y.query);
        }
        let c = generate_cohort(&CohortConfig {
            seed: 7,
            ..Default::default()
        });
        assert!(
            a.submissions
                .iter()
                .zip(&c.submissions)
                .any(|(x, y)| x.query != y.query),
            "different seeds draw different cohorts"
        );
    }

    #[test]
    fn cohorts_contain_duplicates_and_wrong_answers() {
        let cohort = generate_cohort(&CohortConfig::default());
        assert_eq!(cohort.submissions.len(), 50);
        let groups = group_by_fingerprint(&cohort.submissions);
        assert!(
            groups.len() < cohort.submissions.len(),
            "a class of 50 repeats answers: {} distinct",
            groups.len()
        );
        let wrong = cohort
            .submissions
            .iter()
            .filter(|s| s.query != cohort.reference)
            .count();
        assert!(wrong > 0, "some students are wrong");
        assert!(wrong < cohort.submissions.len(), "some students are right");
    }

    #[test]
    fn the_hidden_instance_has_constraints() {
        let cohort = generate_cohort(&CohortConfig::default());
        assert!(cohort.db.total_tuples() >= 50);
        assert!(cohort.db.validate_constraints().is_ok());
    }

    #[test]
    fn every_question_number_generates() {
        for q in 1..=8 {
            let cohort = generate_cohort(&CohortConfig {
                question: q,
                class_size: 8,
                ..Default::default()
            });
            assert_eq!(cohort.submissions.len(), 8);
            assert!(!cohort.prompt.is_empty());
        }
    }
}
