//! Submissions and fingerprint-based dedup grouping.

use ratest_ra::ast::Query;
use ratest_ra::canonical::fingerprint;
use std::collections::HashMap;
use std::sync::Arc;

/// One student submission: an identifier, the author's display name and the
/// submitted query.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Stable submission identifier (e.g. `"s017"`).
    pub id: String,
    /// Author display name (shown in reports).
    pub author: String,
    /// The submitted relational-algebra query.
    pub query: Query,
}

impl Submission {
    /// Construct a submission.
    pub fn new(id: impl Into<String>, author: impl Into<String>, query: Query) -> Submission {
        Submission {
            id: id.into(),
            author: author.into(),
            query,
        }
    }
}

/// A group of submissions that share a canonical fingerprint — graded once,
/// verdict shared by every member.
#[derive(Debug, Clone)]
pub struct SubmissionGroup {
    /// The shared canonical fingerprint.
    pub fingerprint: u64,
    /// A representative query (the first member's), used for grading.
    pub query: Arc<Query>,
    /// Indices into the original submission slice.
    pub members: Vec<usize>,
}

/// Group submissions by canonical fingerprint, preserving first-seen order.
pub fn group_by_fingerprint(submissions: &[Submission]) -> Vec<SubmissionGroup> {
    let mut order: Vec<SubmissionGroup> = Vec::new();
    let mut index: HashMap<u64, usize> = HashMap::new();
    for (i, sub) in submissions.iter().enumerate() {
        let fp = fingerprint(&sub.query);
        match index.get(&fp) {
            Some(&g) => order[g].members.push(i),
            None => {
                index.insert(fp, order.len());
                order.push(SubmissionGroup {
                    fingerprint: fp,
                    query: Arc::new(sub.query.clone()),
                    members: vec![i],
                });
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::builder::{col, lit, rel};

    #[test]
    fn equivalent_submissions_share_a_group() {
        let a = rel("R")
            .select(col("x").eq(lit(1i64)).and(col("y").eq(lit(2i64))))
            .build();
        // Same predicate, conjuncts flipped.
        let b = rel("R")
            .select(col("y").eq(lit(2i64)).and(col("x").eq(lit(1i64))))
            .build();
        let c = rel("R").select(col("x").eq(lit(9i64))).build();
        let subs = vec![
            Submission::new("s1", "Ada", a),
            Submission::new("s2", "Ben", b),
            Submission::new("s3", "Cyd", c),
        ];
        let groups = group_by_fingerprint(&subs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members, vec![0, 1]);
        assert_eq!(groups[1].members, vec![2]);
    }

    #[test]
    fn grouping_preserves_first_seen_order() {
        let q1 = rel("R").build();
        let q2 = rel("S").build();
        let subs = vec![
            Submission::new("a", "A", q2.clone()),
            Submission::new("b", "B", q1.clone()),
            Submission::new("c", "C", q2),
        ];
        let groups = group_by_fingerprint(&subs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members, vec![0, 2]);
        assert_eq!(groups[1].members, vec![1]);
    }
}
