//! Cohort sharding and shard-report merging — the multi-process scaling
//! path (`grade --shard i/N` … `grade merge`).
//!
//! The single-CPU grading container cannot express parallelism with threads
//! alone; sharding lets N independent processes (or machines) each grade a
//! deterministic slice of the cohort and write a shard report + verdict
//! cache, which [`merge_reports`] and [`crate::store::write_merged`] then
//! fuse into exactly the artifacts the unsharded run would have produced.
//!
//! The partition is a pure function of the submission id (FNV-1a of the id,
//! modulo the shard count) — independent of directory enumeration order,
//! shard launch order, and of which other files happen to be present — so
//! re-running a shard is idempotent and adding a straggler file only moves
//! that file.

use crate::ingest::IngestedCohort;
use crate::json::Json;
use crate::report::{report_document, ReportCounts};
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// One shard of a cohort: 1-based index `i` out of `count` (`--shard i/N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index, `1 ≤ index ≤ count`.
    pub index: usize,
    /// Total number of shards, ≥ 1.
    pub count: usize,
}

impl ShardSpec {
    /// Construct a validated spec.
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index == 0 || index > count {
            return Err(format!("shard index must be in 1..={count}, got {index}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this shard owns the submission with the given id.
    pub fn owns(&self, submission_id: &str) -> bool {
        shard_of(submission_id, self.count) == self.index - 1
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("--shard expects i/N (e.g. 1/2), got `{s}`"))?;
        let index: usize = i
            .parse()
            .map_err(|_| format!("invalid shard index `{i}`"))?;
        let count: usize = n
            .parse()
            .map_err(|_| format!("invalid shard count `{n}`"))?;
        ShardSpec::new(index, count)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The 0-based shard a submission id belongs to, out of `count`.
/// [`ratest_ra::canonical::fnv1a`] of the id bytes — the same
/// platform-stable hash the canonical fingerprints use, so every process
/// computes the same partition.
pub fn shard_of(submission_id: &str, count: usize) -> usize {
    (ratest_ra::canonical::fnv1a(submission_id.as_bytes()) % count.max(1) as u64) as usize
}

/// Restrict a cohort to the entries a shard owns, preserving their relative
/// order. With `count == 1` this is the identity partition.
pub fn shard_cohort(cohort: &IngestedCohort, spec: &ShardSpec) -> IngestedCohort {
    IngestedCohort {
        entries: cohort
            .entries
            .iter()
            .filter(|e| spec.owns(e.id()))
            .cloned()
            .collect(),
    }
}

/// Merge shard report documents (parsed JSON, as written by
/// [`crate::report::BatchReport::to_json`]) into the class report.
///
/// Rows are pooled and re-sorted by submission id — the same order directory
/// ingestion produces — and the class statistics are recomputed from the
/// merged rows, so for any shard count the merged document is **byte
/// identical** to the report of the corresponding unsharded run (pinned by
/// the conformance suite). Duplicate ids and mismatched labels are merge
/// errors: they mean the inputs are not shards of one cohort.
pub fn merge_reports(shards: &[Json]) -> Result<Json, String> {
    if shards.is_empty() {
        return Err("nothing to merge: no shard reports given".into());
    }
    let mut label: Option<&str> = None;
    let mut shared_annotation: Option<bool> = None;
    let mut rows: Vec<&Json> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let this_label = shard
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("shard {}: missing `label`", i + 1))?;
        match label {
            None => label = Some(this_label),
            Some(l) if l == this_label => {}
            Some(l) => {
                return Err(format!(
                    "shard {}: label `{this_label}` does not match `{l}` — \
                     these are not shards of one batch",
                    i + 1
                ))
            }
        }
        let this_shared = shard
            .get("shared_annotation")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("shard {}: missing `shared_annotation`", i + 1))?;
        match shared_annotation {
            None => shared_annotation = Some(this_shared),
            Some(s) if s == this_shared => {}
            Some(_) => {
                return Err(format!(
                    "shard {}: shared_annotation disagrees across shards",
                    i + 1
                ))
            }
        }
        let submissions = shard
            .get("submissions")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("shard {}: missing `submissions` array", i + 1))?;
        rows.extend(submissions.iter());
    }

    // Ingestion sorts by id; restoring that order makes the merge agree with
    // the unsharded run row-for-row.
    let mut keyed: Vec<(&str, &Json)> = Vec::with_capacity(rows.len());
    for row in rows {
        let id = row
            .get("id")
            .and_then(Json::as_str)
            .ok_or("a submission row is missing `id`")?;
        keyed.push((id, row));
    }
    keyed.sort_by_key(|(id, _)| *id);
    for w in keyed.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(format!(
                "submission `{}` appears in more than one shard — \
                 the inputs overlap or a shard ran twice",
                w[0].0
            ));
        }
    }

    let counts = recompute_counts(&keyed)?;
    Ok(report_document(
        label.expect("at least one shard"),
        shared_annotation.expect("at least one shard"),
        &counts,
        keyed.into_iter().map(|(_, row)| row.clone()).collect(),
    ))
}

/// Recompute the deterministic class statistics from merged rows. Matches
/// [`crate::report::BatchStats::collect`] on every field the JSON carries —
/// including `distinct_groups`, which must be counted over the *merged* row
/// set (one fingerprint can occur in several shards).
fn recompute_counts(rows: &[(&str, &Json)]) -> Result<ReportCounts, String> {
    let mut counts = ReportCounts {
        submissions: rows.len(),
        distinct_groups: 0,
        dedup_hits: 0,
        correct: 0,
        wrong: 0,
        errors: 0,
        timeouts: 0,
        rejected: 0,
        mean_counterexample_size: 0.0,
    };
    let mut fingerprints: BTreeSet<&str> = BTreeSet::new();
    let mut cex_sizes: Vec<usize> = Vec::new();
    for (id, row) in rows {
        let verdict = row
            .get("verdict")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row `{id}`: missing `verdict`"))?;
        match verdict {
            "correct" => counts.correct += 1,
            "wrong" => {
                counts.wrong += 1;
                let size = row
                    .get("counterexample_size")
                    .and_then(Json::as_i64)
                    .filter(|s| *s >= 0)
                    .ok_or_else(|| {
                        format!("row `{id}`: missing or negative `counterexample_size`")
                    })?;
                cex_sizes.push(size as usize);
            }
            "error" => counts.errors += 1,
            "timeout" => counts.timeouts += 1,
            "rejected" => counts.rejected += 1,
            other => return Err(format!("row `{id}`: unknown verdict `{other}`")),
        }
        if verdict != "rejected" {
            let fp = row
                .get("fingerprint")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("row `{id}`: missing `fingerprint`"))?;
            fingerprints.insert(fp);
        }
    }
    counts.distinct_groups = fingerprints.len();
    counts.dedup_hits = counts
        .submissions
        .saturating_sub(counts.rejected)
        .saturating_sub(counts.distinct_groups);
    if !cex_sizes.is_empty() {
        counts.mean_counterexample_size =
            cex_sizes.iter().sum::<usize>() as f64 / cex_sizes.len() as f64;
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_specs_parse_and_validate() {
        assert_eq!(
            "1/2".parse::<ShardSpec>().unwrap(),
            ShardSpec::new(1, 2).unwrap()
        );
        assert_eq!("3/3".parse::<ShardSpec>().unwrap().to_string(), "3/3");
        for bad in ["0/2", "3/2", "1/0", "x/2", "1-2", "1/", "/2"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn the_partition_is_total_and_deterministic() {
        let ids = ["a.sql", "b.sql", "errors/c.sql", "d.ra", "sub/dir/e.sql"];
        for count in 1..=4usize {
            for id in ids {
                let shard = shard_of(id, count);
                assert!(shard < count);
                assert_eq!(shard, shard_of(id, count), "stable across calls");
                // Exactly one shard owns each id.
                let owners: Vec<usize> = (1..=count)
                    .filter(|&i| ShardSpec::new(i, count).unwrap().owns(id))
                    .collect();
                assert_eq!(owners.len(), 1, "{id} with {count} shards");
                assert_eq!(owners[0] - 1, shard);
            }
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let spec = ShardSpec::new(1, 1).unwrap();
        for id in ["x.sql", "", "ünicode.ra"] {
            assert!(spec.owns(id));
        }
    }

    #[test]
    fn merging_rejects_mismatched_or_overlapping_shards() {
        let a = Json::parse(
            r#"{"label":"q1","shared_annotation":true,"stats":{},"submissions":[{"id":"a.sql","author":"a","fingerprint":"00","verdict":"correct"}]}"#,
        )
        .unwrap();
        let b_other_label =
            Json::parse(r#"{"label":"q2","shared_annotation":true,"stats":{},"submissions":[]}"#)
                .unwrap();
        assert!(merge_reports(&[a.clone(), b_other_label])
            .unwrap_err()
            .contains("label"));
        assert!(merge_reports(&[a.clone(), a.clone()])
            .unwrap_err()
            .contains("more than one shard"));
        assert!(merge_reports(&[]).is_err());
    }

    #[test]
    fn merging_recomputes_distinct_groups_across_shards() {
        // The same fingerprint graded in two shards must count once, and a
        // rejected row must not contribute a fingerprint.
        let a = Json::parse(
            r#"{"label":"q","shared_annotation":true,"stats":{},"submissions":[{"id":"a.sql","author":"a","fingerprint":"0f","verdict":"correct"},{"id":"c.sql","author":"c","fingerprint":"0000000000000000","verdict":"rejected","message":"m","phase":"parse","kind":"parse"}]}"#,
        )
        .unwrap();
        let b = Json::parse(
            r#"{"label":"q","shared_annotation":true,"stats":{},"submissions":[{"id":"b.sql","author":"b","fingerprint":"0f","verdict":"wrong","counterexample_size":3,"class":"SPJU","algorithm":"PolytimeMonotone"}]}"#,
        )
        .unwrap();
        let merged = merge_reports(&[a, b]).unwrap();
        let stats = merged.get("stats").unwrap();
        assert_eq!(stats.get("submissions").and_then(Json::as_i64), Some(3));
        assert_eq!(stats.get("distinct_groups").and_then(Json::as_i64), Some(1));
        assert_eq!(stats.get("dedup_hits").and_then(Json::as_i64), Some(1));
        assert_eq!(stats.get("rejected").and_then(Json::as_i64), Some(1));
        assert_eq!(
            stats.get("mean_counterexample_size"),
            Some(&Json::Float(3.0))
        );
        // Rows come back sorted by id.
        let ids: Vec<&str> = merged
            .get("submissions")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|r| r.get("id").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(ids, vec!["a.sql", "b.sql", "c.sql"]);
    }
}
