//! `grade serve` — a persistent grading daemon speaking a versioned NDJSON
//! request/response protocol over stdin/stdout.
//!
//! The paper's RATest deployment was a long-lived service students queried
//! interactively all semester. This module is that shape: one process stays
//! up, holds **warm per-reference state** (the prepared [`Session`] inside a
//! [`Grader`] plus its verdict cache), and answers each request line with
//! one response line — so a re-grade of an already-seen submission performs
//! **zero counterexample searches**, and a whole cohort can be graded one
//! interactive request at a time. The container has no network, so stdio is
//! the transport; any process supervisor or socket relay can wrap it.
//!
//! ## Protocol (`ratest-serve` version 3)
//!
//! One JSON object per line, in both directions. The daemon starts by
//! announcing itself:
//!
//! ```text
//! {"event":"protocol","name":"ratest-serve","version":3}
//! ```
//!
//! Requests carry a `cmd` field; every request produces exactly one
//! response object with an `ok` field (plus zero or more `event` lines
//! before it when streaming is requested):
//!
//! | cmd        | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `hello`    | — capability probe, echoes the protocol version               |
//! | `prepare`  | `ref`, and `question` (1–8) *or* `lang`+`source`; optional `db_tuples`, `seed`, `params` (object), `timeout_ms` |
//! | `grade`    | `ref`, `id`, `lang`, `source`; optional `author`, `events`, `explain`, `repair` |
//! | `stats`    | optional `ref` — counters for one reference, or daemon-scope occupancy without it |
//! | `sync`     | — flush unpersisted verdicts to the `--cache` store            |
//! | `shutdown` | — acknowledge and exit                                        |
//!
//! A `grade` with `"events":true` streams the session's typed progress
//! events ([`ratest_core::session::ExplainEvent`]) as NDJSON lines before
//! the response. A `grade` with `"repair":true` additionally runs the
//! provenance-directed repair search (see [`ratest_repair`]) on a wrong
//! verdict: candidate progress streams as `repair_*` events, and the
//! response's `suggestions` array carries the ranked, confirmed fixes. All
//! emitted fields are **deterministic** (no wall-clock readings), so a
//! scripted conversation replayed against a fresh daemon produces
//! byte-identical output — pinned by the protocol goldens in
//! `tests/serve_protocol.rs` and the `serve-protocol` CI job.
//!
//! ## Version 3: semester-scale serving
//!
//! v3 (see [`ServeConfig`]) adds the survivability layer the course
//! deployment needs:
//!
//! - **Concurrency** — with `threads > 1`, `grade` requests run
//!   thread-per-request over the engine's thread-safe warm state. Every
//!   event line carries its request's `id`, each line is written atomically,
//!   and a request's events always precede its response — so interleaved
//!   streams stay parseable by filtering on `id`. `prepare`, `stats`,
//!   `sync`, and `shutdown` act as barriers: the daemon drains in-flight
//!   grades before answering them.
//! - **Admission control** — at most `threads` grades run at once; a
//!   request that cannot be admitted within `admit_timeout_ms` (a
//!   [`Budget`] deadline) is rejected with a `"verdict":"timeout"` response
//!   carrying `"overloaded":true`. The daemon never hangs and never
//!   queues unboundedly.
//! - **LRU eviction** — `warm_cap` bounds the number of warm references;
//!   preparing one more evicts the least-recently-used (its unpersisted
//!   verdicts are flushed to the store first when one is configured).
//! - **Persistence** — with a `cache` store, verdicts land in the same
//!   append-only file `grade --cache` uses; a restarted daemon preloads it
//!   at `prepare` time, so re-grades after a crash perform zero
//!   counterexample searches.
//! - **Disconnect tolerance** — a client vanishing mid-stream (`EPIPE`) is
//!   a clean shutdown: the daemon drains in-flight work, flushes the store,
//!   and exits 0.
//!
//! Frontend rejections are *successful* gradings with a `rejected` verdict
//! (the diagnostic is the answer); only malformed requests get
//! `"ok":false`.
//!
//! [`Session`]: ratest_core::session::Session

use crate::api::ExplainRequest;
use crate::engine::{Grader, GraderConfig};
use crate::ingest::{compile_submission, IngestEntry, SourceLang};
use crate::json::Json;
use crate::store;
use crate::verdict::Verdict;
use ratest_core::pipeline::RatestOptions;
use ratest_core::session::{Budget, EventHandle, EventSink, ExplainEvent};
use ratest_queries::course::course_questions;
use ratest_storage::{Database, Value};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Protocol name announced in the banner.
pub const PROTOCOL_NAME: &str = "ratest-serve";
/// Protocol version; bump on any wire-visible change (the goldens pin it).
/// v2 added the `repair` opt-in on `grade` (suggestions + `repair_*`
/// events). v3 added concurrent grading, admission control
/// (`"overloaded":true` rejects), warm-reference LRU eviction, the `sync`
/// command, daemon-scope `stats`, and the `warm_refs`/`preloaded` fields on
/// `prepare`.
pub const PROTOCOL_VERSION: i64 = 3;

/// Runtime configuration for [`serve_with`] — everything the `grade serve`
/// flags control.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently-running `grade` requests. `1` (the default)
    /// preserves the fully sequential v2 behavior: every response follows
    /// its request in order.
    pub threads: usize,
    /// Maximum warm prepared references held at once; preparing one more
    /// evicts the least-recently-used. `None` = unbounded.
    pub warm_cap: Option<usize>,
    /// Append-only verdict store (the `grade --cache` format): preloaded at
    /// `prepare` time, flushed on eviction, `sync`, and shutdown.
    pub cache: Option<PathBuf>,
    /// How long an over-capacity `grade` request waits for a slot before it
    /// is rejected with an `"overloaded":true` timeout verdict. `0` rejects
    /// immediately.
    pub admit_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 1,
            warm_cap: None,
            cache: None,
            admit_timeout_ms: 30_000,
        }
    }
}

/// Recover a usable guard from a possibly-poisoned lock. The daemon's
/// invariants hold at every await point (worker panics are converted to
/// error verdicts before locks unwind), so a poisoned output or admission
/// lock means a dead thread, not corrupt state — one failed request must
/// not take down the whole semester's daemon.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Warm state for one prepared reference.
struct RefState {
    label: String,
    db: Database,
    grader: Grader,
    /// The prepared grading context: established once at `prepare`, so the
    /// per-request path never re-hashes the instance.
    context: crate::engine::GradeContext,
    fingerprint: u64,
    /// Registry snapshot taken right after the prepare-time warmup probe:
    /// `stats` reports counter deltas against it, so the probe's search and
    /// cache miss never count as student gradings.
    baseline: ratest_telemetry::MetricsSnapshot,
}

/// Warm references in LRU order: a clock-stamped map where eviction removes
/// the minimum stamp. O(n) eviction scans are fine — `warm_cap` is small
/// (course-scale), and prepare is already the expensive path.
#[derive(Default)]
struct RefLru {
    map: HashMap<String, (Arc<RefState>, u64)>,
    clock: u64,
}

impl RefLru {
    fn len(&self) -> usize {
        self.map.len()
    }

    /// Look up a reference and mark it most-recently-used.
    fn touch(&mut self, id: &str) -> Option<Arc<RefState>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(id).map(|slot| {
            slot.1 = clock;
            slot.0.clone()
        })
    }

    /// Insert (or replace) a reference as most-recently-used; returns the
    /// replaced state on re-prepare so its verdicts can be flushed.
    fn insert(&mut self, id: String, state: Arc<RefState>) -> Option<Arc<RefState>> {
        self.clock += 1;
        self.map.insert(id, (state, self.clock)).map(|(old, _)| old)
    }

    /// Evict least-recently-used references until at most `cap` remain
    /// (never fewer than one — the reference just prepared stays warm).
    fn evict_over(&mut self, cap: usize) -> Vec<(String, Arc<RefState>)> {
        let mut evicted = Vec::new();
        while self.map.len() > cap.max(1) {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(id, _)| id.clone())
                .expect("non-empty map has a minimum stamp");
            let (state, _) = self.map.remove(&victim).expect("victim key present");
            evicted.push((victim, state));
        }
        evicted
    }

    /// All warm references in deterministic (id) order.
    fn sorted(&self) -> Vec<(&str, &Arc<RefState>)> {
        let mut refs: Vec<(&str, &Arc<RefState>)> = self
            .map
            .iter()
            .map(|(id, (state, _))| (id.as_str(), state))
            .collect();
        refs.sort_by_key(|(id, _)| *id);
        refs
    }
}

/// Admission gate: a counted semaphore over in-flight `grade` threads.
/// `drain` doubles as the barrier the sequential commands wait on.
#[derive(Default)]
struct Inflight {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Inflight {
    /// Try to claim a slot, waiting until the budget's deadline runs out.
    /// Returns `false` on rejection — the caller answers with an overload
    /// verdict instead of queueing unboundedly.
    fn acquire(&self, cap: usize, budget: &Budget) -> bool {
        let mut count = lock(&self.count);
        loop {
            if *count < cap {
                *count += 1;
                return true;
            }
            if budget.poll().is_some() {
                return false;
            }
            count = self
                .cv
                .wait_timeout(count, Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    fn release(&self) {
        let mut count = lock(&self.count);
        *count = count.saturating_sub(1);
        self.cv.notify_all();
    }

    /// Block until every in-flight grade has released its slot.
    fn drain(&self) {
        let mut count = lock(&self.count);
        while *count > 0 {
            count = self
                .cv
                .wait_timeout(count, Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// The daemon's view of the on-disk verdict store: every entry known to be
/// on disk (loaded at startup, grown by each flush — so an evicted
/// reference's verdicts are found again on re-prepare without re-reading
/// the file), plus the key set for exact-append bookkeeping.
struct StoreState {
    path: PathBuf,
    entries: Vec<store::CacheEntry>,
    persisted: HashSet<(u64, u64)>,
    appended: u64,
}

impl StoreState {
    fn open(path: PathBuf) -> Result<StoreState, store::StoreError> {
        let loaded = store::load(&path)?;
        let persisted = loaded
            .entries
            .iter()
            .map(|e| (e.context, e.fingerprint))
            .collect();
        Ok(StoreState {
            path,
            entries: loaded.entries,
            persisted,
            appended: 0,
        })
    }

    /// Seed a freshly-prepared grader with this context's stored verdicts —
    /// the restart-equals-warm-start path.
    fn preload(&self, grader: &Grader, context: crate::engine::GradeContext) -> usize {
        let key = context.key();
        grader.preload_cache(self.entries.iter().filter(|e| e.context == key).cloned())
    }

    /// Append the reference's not-yet-persisted verdicts to the store.
    fn flush(&mut self, state: &RefState) -> Result<u64, store::StoreError> {
        let fresh: Vec<store::CacheEntry> = state
            .grader
            .cache_entries()
            .into_iter()
            .filter(|e| !self.persisted.contains(&(e.context, e.fingerprint)))
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        store::append(&self.path, &fresh)?;
        for e in &fresh {
            self.persisted.insert((e.context, e.fingerprint));
        }
        self.appended += fresh.len() as u64;
        let appended = fresh.len() as u64;
        self.entries.extend(fresh);
        Ok(appended)
    }
}

/// The event sink of **one** streamed `grade` request: it owns its
/// submission id and writes NDJSON lines until [`RequestSink::retire`]d.
/// Per-request ownership is what keeps attribution correct: if a timed-out
/// job's thread is still unwinding when the next request starts, the stale
/// thread holds *this* (retired, silent) sink — it can never emit under the
/// next request's id.
struct RequestSink<W: Write + Send> {
    out: Arc<Mutex<W>>,
    id: String,
    live: AtomicBool,
    /// Shared daemon-wide disconnect flag: a failed event write marks the
    /// client gone so the main loop can wind down cleanly instead of
    /// grinding through the rest of the script.
    disconnected: Arc<AtomicBool>,
}

impl<W: Write + Send> RequestSink<W> {
    fn new(out: Arc<Mutex<W>>, id: &str, disconnected: Arc<AtomicBool>) -> Arc<RequestSink<W>> {
        Arc::new(RequestSink {
            out,
            id: id.to_owned(),
            live: AtomicBool::new(true),
            disconnected,
        })
    }

    /// Stop emitting: the request is answered. Taking the output lock makes
    /// retirement atomic with any in-flight [`EventSink::emit`] — once this
    /// returns, no event line for this request can appear after the
    /// response line that follows.
    fn retire(&self) {
        let _out = lock(&self.out);
        self.live.store(false, Ordering::Relaxed);
    }
}

impl<W: Write + Send> EventSink for RequestSink<W> {
    fn emit(&self, event: &ExplainEvent) {
        let id = self.id.as_str();
        let json = match event {
            ExplainEvent::PhaseStarted { phase } => Json::obj(vec![
                ("event", Json::str("phase")),
                ("id", Json::str(id)),
                ("phase", Json::str(phase.name())),
            ]),
            ExplainEvent::CandidateChecked { index, best_size } => {
                let mut pairs = vec![
                    ("event", Json::str("candidate")),
                    ("id", Json::str(id)),
                    ("index", Json::Int(*index as i64)),
                ];
                if let Some(best) = best_size {
                    pairs.push(("best", Json::Int(*best as i64)));
                }
                Json::obj(pairs)
            }
            ExplainEvent::SolverStats {
                variables,
                solution_size,
            } => {
                let mut pairs = vec![
                    ("event", Json::str("solver")),
                    ("id", Json::str(id)),
                    ("variables", Json::Int(*variables as i64)),
                ];
                if let Some(size) = solution_size {
                    pairs.push(("solution", Json::Int(*size as i64)));
                }
                Json::obj(pairs)
            }
            ExplainEvent::Verdict {
                agrees,
                counterexample_size,
                class,
                algorithm,
            } => {
                let mut pairs = vec![
                    ("event", Json::str("verdict")),
                    ("id", Json::str(id)),
                    ("agrees", Json::Bool(*agrees)),
                ];
                if let Some(size) = counterexample_size {
                    pairs.push(("counterexample_size", Json::Int(*size as i64)));
                }
                pairs.push(("class", Json::str(class.to_string())));
                pairs.push(("algorithm", Json::str(format!("{algorithm:?}"))));
                Json::obj(pairs)
            }
            ExplainEvent::RepairStarted { candidates } => Json::obj(vec![
                ("event", Json::str("repair_started")),
                ("id", Json::str(id)),
                ("candidates", Json::Int(*candidates as i64)),
            ]),
            ExplainEvent::RepairCandidateChecked { index, confirmed } => Json::obj(vec![
                ("event", Json::str("repair_candidate")),
                ("id", Json::str(id)),
                ("index", Json::Int(*index as i64)),
                ("confirmed", Json::Bool(*confirmed)),
            ]),
            ExplainEvent::RepairFinished { suggestions, tried } => Json::obj(vec![
                ("event", Json::str("repair_finished")),
                ("id", Json::str(id)),
                ("suggestions", Json::Int(*suggestions as i64)),
                ("tried", Json::Int(*tried as i64)),
            ]),
        };
        let mut out = lock(&self.out);
        // Checked under the lock so a concurrent retire() fully serializes
        // against this write (events strictly precede the response; a stale
        // thread from a timed-out job stays silent).
        if !self.live.load(Ordering::Relaxed) {
            return;
        }
        if writeln!(out, "{}", json.render())
            .and_then(|_| out.flush())
            .is_err()
        {
            // The client is gone; grading continues (the verdict still
            // lands in the cache/store) but this stream goes quiet.
            self.live.store(false, Ordering::Relaxed);
            self.disconnected.store(true, Ordering::Relaxed);
        }
    }
}

/// Run the daemon loop with the default (sequential, unbounded, storeless)
/// configuration: read NDJSON requests from `input`, write responses (and
/// streamed events) to `output`, until `shutdown` or EOF.
pub fn serve<R: BufRead, W: Write + Send + 'static>(input: R, output: W) -> io::Result<()> {
    serve_with(input, output, ServeConfig::default())
}

/// [`serve`] with explicit [`ServeConfig`] — the `grade serve` entry point
/// once flags are parsed.
pub fn serve_with<R: BufRead, W: Write + Send + 'static>(
    input: R,
    output: W,
    config: ServeConfig,
) -> io::Result<()> {
    let out = Arc::new(Mutex::new(output));
    let disconnected = Arc::new(AtomicBool::new(false));
    let store = match config.cache.clone() {
        Some(path) => Some(StoreState::open(path).map_err(store_io_error)?),
        None => None,
    };
    let mut daemon = Daemon {
        config,
        refs: RefLru::default(),
        store,
        inflight: Arc::new(Inflight::default()),
        evictions: 0,
        out: out.clone(),
        disconnected: disconnected.clone(),
    };

    let banner = Json::obj(vec![
        ("event", Json::str("protocol")),
        ("name", Json::str(PROTOCOL_NAME)),
        ("version", Json::Int(PROTOCOL_VERSION)),
    ]);
    if let Err(e) = write_line(&out, &banner) {
        if is_disconnect(&e) {
            return Ok(());
        }
        return Err(e);
    }

    let mut result = Ok(());
    for line in input.lines() {
        if disconnected.load(Ordering::Relaxed) {
            break;
        }
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match daemon.dispatch(&line) {
            Flow::Spawned => {}
            Flow::Respond(response) => {
                if let Err(e) = write_line(&out, &response) {
                    if !is_disconnect(&e) {
                        result = Err(e);
                    }
                    break;
                }
            }
            Flow::Shutdown(response) => {
                if let Err(e) = write_line(&out, &response) {
                    if !is_disconnect(&e) {
                        result = Err(e);
                    }
                }
                break;
            }
        }
    }

    // Wind-down — reached on shutdown, EOF, *and* client disconnect alike:
    // every in-flight verdict finishes and lands in the store before exit,
    // so a vanished client (`EPIPE`) is a clean `Ok(())`, not a crash.
    daemon.inflight.drain();
    let flush = daemon.flush_all().map(|_| ()).map_err(store_io_error);
    result.and(flush)
}

fn store_io_error(e: store::StoreError) -> io::Error {
    io::Error::other(format!("verdict store: {e}"))
}

/// Whether a write error means the client went away (as opposed to a real
/// I/O fault). `EPIPE` and its cousins are a clean shutdown signal.
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::WriteZero
    )
}

fn write_line<W: Write>(out: &Arc<Mutex<W>>, json: &Json) -> io::Result<()> {
    let mut out = lock(out);
    writeln!(out, "{}", json.render())?;
    out.flush()
}

fn error_response(cmd: Option<&str>, message: impl Into<String>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(false))];
    if let Some(cmd) = cmd {
        pairs.push(("cmd", Json::str(cmd)));
    }
    pairs.push(("error", Json::str(message.into())));
    Json::obj(pairs)
}

/// What the main loop does with one request line.
enum Flow {
    /// Write this response now (the command ran inline).
    Respond(Json),
    /// A grade thread was spawned; it writes its own response.
    Spawned,
    /// Write this response, then exit the loop.
    Shutdown(Json),
}

/// All daemon state, owned by the main loop. `grade` is the only command
/// that leaves this thread; everything else runs behind a drain barrier.
struct Daemon<W: Write + Send + 'static> {
    config: ServeConfig,
    refs: RefLru,
    store: Option<StoreState>,
    inflight: Arc<Inflight>,
    evictions: u64,
    out: Arc<Mutex<W>>,
    disconnected: Arc<AtomicBool>,
}

impl<W: Write + Send + 'static> Daemon<W> {
    fn dispatch(&mut self, line: &str) -> Flow {
        let request = match Json::parse(line) {
            Ok(json) => json,
            Err(e) => {
                return Flow::Respond(error_response(None, format!("request is not JSON: {e}")))
            }
        };
        let Some(cmd) = request.get("cmd").and_then(Json::as_str) else {
            return Flow::Respond(error_response(None, "request has no `cmd` field"));
        };
        match cmd {
            "hello" => Flow::Respond(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cmd", Json::str("hello")),
                ("protocol", Json::str(PROTOCOL_NAME)),
                ("version", Json::Int(PROTOCOL_VERSION)),
            ])),
            "grade" => self.dispatch_grade(request),
            // Everything below reads or mutates daemon-wide state, so it
            // waits out in-flight grades first — which also guarantees that
            // by the time `stats` (or the shutdown ack) is written, every
            // earlier grade's response line is already on the wire.
            "prepare" => {
                self.inflight.drain();
                Flow::Respond(self.cmd_prepare(&request))
            }
            "stats" => {
                self.inflight.drain();
                Flow::Respond(self.cmd_stats(&request))
            }
            "sync" => {
                self.inflight.drain();
                Flow::Respond(self.cmd_sync())
            }
            "shutdown" => {
                self.inflight.drain();
                Flow::Shutdown(Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("cmd", Json::str("shutdown")),
                ]))
            }
            other => Flow::Respond(error_response(
                Some(other),
                format!("unknown command `{other}`"),
            )),
        }
    }

    /// Route a `grade`: inline when sequential, thread-per-request when
    /// concurrent — with admission control so a flood is rejected (with a
    /// verdict) instead of queueing unboundedly.
    fn dispatch_grade(&mut self, request: Json) -> Flow {
        let ref_id = match ref_field(&request, "grade") {
            Ok(r) => r.to_owned(),
            Err(e) => return Flow::Respond(e),
        };
        let Some(state) = self.refs.touch(&ref_id) else {
            return Flow::Respond(error_response(
                Some("grade"),
                format!("unknown reference `{ref_id}` — `prepare` it first"),
            ));
        };
        let Some(id) = request.get("id").and_then(Json::as_str).map(str::to_owned) else {
            return Flow::Respond(error_response(Some("grade"), "missing `id` field"));
        };
        // Counted at admission, so `stats.graded` = grade requests accepted
        // for this reference (overload rejects included: the daemon did
        // answer them).
        state.grader.metrics().counter_inc("serve.requests.grade");
        if self.config.threads <= 1 {
            return Flow::Respond(cmd_grade(
                &request,
                &ref_id,
                &state,
                &self.out,
                &self.disconnected,
            ));
        }
        let admit =
            Budget::unlimited().with_deadline(Duration::from_millis(self.config.admit_timeout_ms));
        if !self.inflight.acquire(self.config.threads, &admit) {
            let author = request
                .get("author")
                .and_then(Json::as_str)
                .unwrap_or(&id)
                .to_owned();
            return Flow::Respond(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cmd", Json::str("grade")),
                ("ref", Json::str(&ref_id)),
                ("id", Json::str(&id)),
                ("author", Json::str(&author)),
                ("verdict", Json::str("timeout")),
                ("from_cache", Json::Bool(false)),
                ("timeout_ms", Json::Int(self.config.admit_timeout_ms as i64)),
                ("overloaded", Json::Bool(true)),
            ]));
        }
        let out = self.out.clone();
        let disconnected = self.disconnected.clone();
        let inflight = self.inflight.clone();
        std::thread::spawn(move || {
            // The slot is released no matter what: a panicking handler must
            // not wedge the drain barrier (the engine already converts
            // grading panics into error verdicts, so this is belt and
            // braces for the serve plumbing itself).
            let response = catch_unwind(AssertUnwindSafe(|| {
                cmd_grade(&request, &ref_id, &state, &out, &disconnected)
            }))
            .unwrap_or_else(|_| error_response(Some("grade"), "request handler panicked"));
            if let Err(e) = write_line(&out, &response) {
                if is_disconnect(&e) {
                    disconnected.store(true, Ordering::Relaxed);
                }
            }
            inflight.release();
        });
        Flow::Spawned
    }

    fn cmd_prepare(&mut self, request: &Json) -> Json {
        let ref_id = match ref_field(request, "prepare") {
            Ok(r) => r.to_owned(),
            Err(e) => return e,
        };
        let db_tuples = request
            .get("db_tuples")
            .and_then(Json::as_i64)
            .unwrap_or(60)
            .max(0) as usize;
        // The instance is generated daemon-side; cap it so one request
        // cannot stall request intake on data generation alone.
        const MAX_DB_TUPLES: usize = 100_000;
        if db_tuples > MAX_DB_TUPLES {
            return error_response(
                Some("prepare"),
                format!("db_tuples {db_tuples} exceeds the daemon cap of {MAX_DB_TUPLES}"),
            );
        }
        let seed = request.get("seed").and_then(Json::as_i64).unwrap_or(2019) as u64;
        let timeout_ms = request
            .get("timeout_ms")
            .and_then(Json::as_i64)
            .unwrap_or(30_000)
            .max(0) as u64;

        let db = ratest_datagen::university_database(&ratest_datagen::UniversityConfig {
            total_tuples: db_tuples,
            seed,
            ..Default::default()
        });

        // Resolve the reference: a course question number or inline source.
        let (label, reference) = if let Some(n) = request.get("question").and_then(Json::as_i64) {
            match course_questions()
                .into_iter()
                .find(|q| q.number == n as usize)
            {
                Some(q) => (q.prompt.to_owned(), q.reference),
                None => {
                    return error_response(
                        Some("prepare"),
                        format!("no course question {n} (valid: 1..8)"),
                    )
                }
            }
        } else {
            let lang: SourceLang = match request
                .get("lang")
                .and_then(Json::as_str)
                .unwrap_or("sql")
                .parse()
            {
                Ok(l) => l,
                Err(e) => return error_response(Some("prepare"), e),
            };
            let Some(source) = request.get("source").and_then(Json::as_str) else {
                return error_response(Some("prepare"), "prepare needs `question` or `source`");
            };
            match compile_submission(&ref_id, &ref_id, lang, source, &db) {
                IngestEntry::Parsed(s) => (format!("reference {ref_id}"), s.query),
                IngestEntry::Rejected(r) => {
                    return error_response(
                        Some("prepare"),
                        format!("reference does not compile: {}", r.rendered),
                    )
                }
            }
        };

        let mut options = RatestOptions::default();
        // Reference preparation (evaluate + annotate) runs under the same
        // wall-clock bound as grading, so a flooding inline reference cannot
        // hang the daemon. The deadline is fixed at prepare time; that is
        // safe because with `timeout_ms > 0` every grade request runs under
        // its own fresh per-job budget, and with `timeout_ms == 0` the user
        // explicitly asked for no limits at all.
        if timeout_ms > 0 {
            options.budget = Budget::unlimited().with_deadline(Duration::from_millis(timeout_ms));
        }
        if let Some(Json::Obj(pairs)) = request.get("params") {
            for (name, value) in pairs {
                let value = match value {
                    Json::Int(i) => Value::Int(*i),
                    Json::Str(s) => Value::from(s.as_str()),
                    other => {
                        return error_response(
                            Some("prepare"),
                            format!("param `{name}` must be an int or string, got {other:?}"),
                        )
                    }
                };
                options.parameters.insert(name.clone(), value);
            }
        }
        let grader = Grader::new(GraderConfig {
            workers: 1,
            per_job_timeout: Duration::from_millis(timeout_ms),
            options,
            // Repair is a per-request opt-in on `grade`, never ambient
            // state; each serve grader holds exactly one context, so the
            // engine-level session cap is moot — eviction happens at the
            // whole-reference level (`RefLru`).
            repair: None,
            warm_cap: None,
        });

        // Warm the session now: the context is established (instance
        // hashed, reference evaluated + annotated) exactly once, at prepare
        // time; every grade request reuses the handle. A failure here (e.g.
        // a reference that does not evaluate) is a prepare error.
        let context = match grader.prepare_context(&reference, &db) {
            Ok(c) => c,
            Err(e) => return error_response(Some("prepare"), e.to_string()),
        };
        // Preload stored verdicts *before* the warmup probe: on a restart
        // the probe itself is answered from the store, so a prepared-again
        // reference performs zero counterexample searches.
        let preloaded = self
            .store
            .as_ref()
            .map(|s| s.preload(&grader, context) as i64);
        let probe = ExplainRequest::new("__warmup__", "__warmup__", reference.clone());
        let fingerprint = probe.fingerprint();
        if let Err(e) = grader.respond_prepared(context, &probe, EventHandle::none()) {
            return error_response(Some("prepare"), e.to_string());
        }
        let shared_annotation = grader.shared_annotation_for(context).unwrap_or(false);

        let baseline = grader.metrics_snapshot();
        let state = Arc::new(RefState {
            label,
            db,
            grader,
            context,
            fingerprint,
            baseline,
        });

        let mut flushed: Vec<Arc<RefState>> = Vec::new();
        if let Some(old) = self.refs.insert(ref_id.clone(), state.clone()) {
            flushed.push(old);
        }
        if let Some(cap) = self.config.warm_cap {
            let evicted = self.refs.evict_over(cap);
            self.evictions += evicted.len() as u64;
            flushed.extend(evicted.into_iter().map(|(_, s)| s));
        }
        if let Some(store) = self.store.as_mut() {
            for old in &flushed {
                if let Err(e) = store.flush(old) {
                    return error_response(
                        Some("prepare"),
                        format!("flushing evicted reference failed: {e}"),
                    );
                }
            }
        }

        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("cmd", Json::str("prepare")),
            ("ref", Json::str(&ref_id)),
            ("label", Json::str(&state.label)),
            (
                "fingerprint",
                Json::str(format!("{:016x}", state.fingerprint)),
            ),
            ("shared_annotation", Json::Bool(shared_annotation)),
            ("db_tuples", Json::Int(state.db.total_tuples() as i64)),
            ("seed", Json::Int(seed as i64)),
            ("warm_refs", Json::Int(self.refs.len() as i64)),
        ];
        if let Some(preloaded) = preloaded {
            pairs.push(("preloaded", Json::Int(preloaded)));
        }
        Json::obj(pairs)
    }

    fn cmd_stats(&mut self, request: &Json) -> Json {
        let Some(ref_id) = request.get("ref").and_then(Json::as_str) else {
            return self.cmd_stats_daemon();
        };
        let Some(state) = self.refs.touch(ref_id) else {
            return error_response(Some("stats"), format!("unknown reference `{ref_id}`"));
        };
        // Every headline figure is a registry delta against the post-warmup
        // baseline, so the prepare-time probe never counts as a student
        // grading — the old hand-maintained counters (and the `- 1` warmup
        // hack) are gone. The full deterministic registry rides along under
        // `metrics` (volatile durations structurally stripped, keeping the
        // reply byte-reproducible).
        let snapshot = state.grader.metrics_snapshot();
        let since = |name: &str| Json::Int(snapshot.counter_since(&state.baseline, name) as i64);
        let metrics =
            Json::parse(&snapshot.to_json(false)).expect("registry snapshot renders valid JSON");
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("cmd", Json::str("stats")),
            ("ref", Json::str(ref_id)),
            ("graded", since("serve.requests.grade")),
            ("cache_hits", since("grader.cache_hits")),
            ("cache_misses", since("grader.cache_misses")),
            ("searches", since("grader.searches")),
            (
                "cached_verdicts",
                Json::Int(state.grader.cached_verdicts() as i64),
            ),
            ("metrics", metrics),
        ])
    }

    /// `stats` without a `ref`: daemon-scope occupancy. Counters sum the
    /// per-reference deltas of the *currently warm* references (an evicted
    /// reference takes its counts with it — the store keeps its verdicts).
    fn cmd_stats_daemon(&self) -> Json {
        let mut graded = 0i64;
        let mut searches = 0i64;
        for (_, state) in self.refs.sorted() {
            let snapshot = state.grader.metrics_snapshot();
            graded += snapshot.counter_since(&state.baseline, "serve.requests.grade") as i64;
            searches += snapshot.counter_since(&state.baseline, "grader.searches") as i64;
        }
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("cmd", Json::str("stats")),
            ("scope", Json::str("daemon")),
            ("protocol_version", Json::Int(PROTOCOL_VERSION)),
            ("threads", Json::Int(self.config.threads as i64)),
            ("warm_refs", Json::Int(self.refs.len() as i64)),
            (
                "warm_cap",
                self.config
                    .warm_cap
                    .map(|c| Json::Int(c as i64))
                    .unwrap_or(Json::Null),
            ),
            ("evictions", Json::Int(self.evictions as i64)),
            ("graded", Json::Int(graded)),
            ("searches", Json::Int(searches)),
        ];
        match &self.store {
            Some(store) => {
                pairs.push(("persisted", Json::Int(store.persisted.len() as i64)));
                pairs.push(("appended", Json::Int(store.appended as i64)));
            }
            None => {
                pairs.push(("persisted", Json::Null));
                pairs.push(("appended", Json::Null));
            }
        }
        Json::obj(pairs)
    }

    /// Flush every warm reference's unpersisted verdicts to the store.
    fn cmd_sync(&mut self) -> Json {
        if self.store.is_none() {
            return error_response(Some("sync"), "daemon has no --cache store configured");
        }
        match self.flush_all() {
            Ok(appended) => {
                let store = self.store.as_ref().expect("store checked above");
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("cmd", Json::str("sync")),
                    ("appended", Json::Int(appended as i64)),
                    ("persisted", Json::Int(store.persisted.len() as i64)),
                ])
            }
            Err(e) => error_response(Some("sync"), format!("verdict store append failed: {e}")),
        }
    }

    /// Flush all warm references (deterministic id order); returns how many
    /// entries were appended.
    fn flush_all(&mut self) -> Result<u64, store::StoreError> {
        let Some(store) = self.store.as_mut() else {
            return Ok(0);
        };
        let mut ids: Vec<String> = self.refs.map.keys().cloned().collect();
        ids.sort();
        let mut appended = 0;
        for id in ids {
            if let Some((state, _)) = self.refs.map.get(&id) {
                appended += store.flush(state)?;
            }
        }
        Ok(appended)
    }
}

fn ref_field<'a>(request: &'a Json, cmd: &str) -> Result<&'a str, Json> {
    request
        .get("ref")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(Some(cmd), "missing `ref` field"))
}

/// Grade one submission against a warm reference. Runs on the main loop
/// when sequential and on its own thread when concurrent — it only touches
/// the (thread-safe) engine and the shared output lock, never the daemon's
/// mutable maps.
fn cmd_grade<W: Write + Send + 'static>(
    request: &Json,
    ref_id: &str,
    state: &RefState,
    out: &Arc<Mutex<W>>,
    disconnected: &Arc<AtomicBool>,
) -> Json {
    let Some(id) = request.get("id").and_then(Json::as_str) else {
        return error_response(Some("grade"), "missing `id` field");
    };
    let author = request
        .get("author")
        .and_then(Json::as_str)
        .unwrap_or(id)
        .to_owned();
    let lang: SourceLang = match request
        .get("lang")
        .and_then(Json::as_str)
        .unwrap_or("sql")
        .parse()
    {
        Ok(l) => l,
        Err(e) => return error_response(Some("grade"), e),
    };
    let Some(source) = request.get("source").and_then(Json::as_str) else {
        return error_response(Some("grade"), "missing `source` field");
    };
    let want_events = request
        .get("events")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let want_explanation = request
        .get("explain")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let want_repair = request
        .get("repair")
        .and_then(Json::as_bool)
        .unwrap_or(false);

    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("cmd", Json::str("grade")),
        ("ref", Json::str(ref_id)),
        ("id", Json::str(id)),
        ("author", Json::str(&author)),
    ];
    match compile_submission(id, &author, lang, source, &state.db) {
        IngestEntry::Rejected(r) => {
            // A frontend rejection is a verdict, not a protocol error.
            pairs.push(("fingerprint", Json::str(format!("{:016x}", 0))));
            pairs.push(("verdict", Json::str("rejected")));
            pairs.push(("from_cache", Json::Bool(false)));
            if let Verdict::Rejected {
                message,
                phase,
                kind,
                span,
            } = &r.verdict
            {
                pairs.push(("message", Json::str(message)));
                pairs.push(("phase", Json::str(phase)));
                pairs.push(("kind", Json::str(kind)));
                if let Some((start, end)) = span {
                    pairs.push((
                        "span",
                        Json::Arr(vec![Json::Int(*start as i64), Json::Int(*end as i64)]),
                    ));
                }
            }
            Json::obj(pairs)
        }
        IngestEntry::Parsed(submission) => {
            // A per-request sink (not a shared gate): a stale thread from an
            // earlier timed-out job keeps its own retired sink and can never
            // emit under this request's id.
            let sink = want_events.then(|| RequestSink::new(out.clone(), id, disconnected.clone()));
            let events = match &sink {
                Some(sink) => EventHandle::new(sink.clone() as Arc<dyn EventSink>),
                None => EventHandle::none(),
            };
            let repair_options = want_repair.then(ratest_repair::RepairOptions::default);
            let outcome = state.grader.respond_prepared_with(
                state.context,
                &ExplainRequest::new(submission.id.clone(), author.clone(), submission.query),
                events,
                repair_options.as_ref(),
            );
            if let Some(sink) = &sink {
                sink.retire();
            }
            let response = match outcome {
                Ok(r) => r,
                Err(e) => return error_response(Some("grade"), e.to_string()),
            };
            pairs.push((
                "fingerprint",
                Json::str(format!("{:016x}", response.fingerprint)),
            ));
            pairs.push(("verdict", Json::str(response.verdict.tag())));
            pairs.push(("from_cache", Json::Bool(response.from_cache)));
            match &response.verdict {
                Verdict::Wrong {
                    counterexample,
                    class,
                    algorithm,
                    suggestions,
                    ..
                } => {
                    pairs.push((
                        "counterexample_size",
                        Json::Int(counterexample.size() as i64),
                    ));
                    pairs.push(("class", Json::str(class.to_string())));
                    pairs.push(("algorithm", Json::str(format!("{algorithm:?}"))));
                    if want_explanation {
                        pairs.push((
                            "explanation",
                            Json::str(ratest_core::report::render_counterexample(counterexample)),
                        ));
                    }
                    if want_repair {
                        let rendered: Vec<Json> = suggestions
                            .iter()
                            .map(|s| {
                                Json::parse(&s.to_json()).expect("suggestions render valid JSON")
                            })
                            .collect();
                        pairs.push(("suggestions", Json::Arr(rendered)));
                    }
                }
                Verdict::Error { message } => {
                    pairs.push(("message", Json::str(message)));
                }
                Verdict::Timeout { budget } => {
                    pairs.push(("timeout_ms", Json::Int(budget.as_millis() as i64)));
                }
                Verdict::Correct | Verdict::Rejected { .. } => {}
            }
            Json::obj(pairs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cloneable in-memory writer for driving the daemon in-process.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        pub(crate) fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn run(script: &str) -> String {
        let out = SharedBuf::default();
        serve(script.as_bytes(), out.clone()).unwrap();
        out.contents()
    }

    #[test]
    fn the_daemon_announces_its_protocol_and_answers_hello() {
        let out = run(r#"{"cmd":"hello"}"#);
        let mut lines = out.lines();
        let banner = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            banner.get("name").and_then(Json::as_str),
            Some(PROTOCOL_NAME)
        );
        assert_eq!(
            banner.get("version").and_then(Json::as_i64),
            Some(PROTOCOL_VERSION)
        );
        let hello = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn malformed_and_unknown_requests_are_protocol_errors() {
        let out = run("not json\n{\"no_cmd\":1}\n{\"cmd\":\"nope\"}\n{\"cmd\":\"grade\",\"ref\":\"missing\",\"id\":\"s\",\"source\":\"x\"}");
        let errors: Vec<Json> = out
            .lines()
            .skip(1)
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(errors.len(), 4);
        for e in &errors {
            assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false), "{e:?}");
        }
        assert!(errors[3]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("prepare"));
    }

    #[test]
    fn a_conversation_grades_warm_regrades_and_shuts_down() {
        let script = r#"
{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}
{"cmd":"grade","ref":"q3","id":"s1.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))"}
{"cmd":"grade","ref":"q3","id":"s2.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name](rename[s](Student), rename[r](Registration)))"}
{"cmd":"grade","ref":"q3","id":"s1-again.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))"}
{"cmd":"stats","ref":"q3"}
{"cmd":"shutdown"}
"#;
        let out = run(script);
        let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
        // banner, prepare, 3 grades, stats, shutdown
        assert_eq!(docs.len(), 7, "{out}");
        assert_eq!(docs[1].get("cmd").and_then(Json::as_str), Some("prepare"));
        assert_eq!(docs[1].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(docs[1].get("warm_refs").and_then(Json::as_i64), Some(1));

        // The warm re-grade of s1 is answered from cache.
        assert_eq!(
            docs[2].get("from_cache").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            docs[4].get("from_cache").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            docs[2].get("verdict").and_then(Json::as_str),
            docs[4].get("verdict").and_then(Json::as_str),
        );
        // Two distinct submissions → exactly two searches despite three grades.
        let stats = &docs[5];
        assert_eq!(stats.get("graded").and_then(Json::as_i64), Some(3));
        assert_eq!(stats.get("searches").and_then(Json::as_i64), Some(2));
        assert_eq!(stats.get("cache_hits").and_then(Json::as_i64), Some(1));
        assert_eq!(docs[6].get("cmd").and_then(Json::as_str), Some("shutdown"));
    }

    #[test]
    fn rejected_sources_are_verdicts_not_errors() {
        let script = r#"
{"cmd":"prepare","ref":"q1","question":1,"db_tuples":24,"seed":7,"params":{"minCS":1}}
{"cmd":"grade","ref":"q1","id":"bad.sql","lang":"sql","source":"SELECT nme FROM Student"}
{"cmd":"shutdown"}
"#;
        let out = run(script);
        let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
        let graded = &docs[2];
        assert_eq!(graded.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            graded.get("verdict").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(graded.get("phase").and_then(Json::as_str), Some("resolve"));
        assert!(graded.get("span").is_some());
    }

    #[test]
    fn event_streaming_is_opt_in_and_deterministic() {
        let script = r#"
{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}
{"cmd":"grade","ref":"q3","id":"w.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))","events":true}
{"cmd":"shutdown"}
"#;
        let a = run(script);
        let b = run(script);
        assert_eq!(a, b, "two daemon runs are byte-identical");
        let events: Vec<Json> = a
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .filter(|d| d.get("event").and_then(Json::as_str) == Some("phase"))
            .collect();
        assert!(!events.is_empty(), "{a}");
        assert!(events
            .iter()
            .all(|e| e.get("id").and_then(Json::as_str) == Some("w.ra")));
        // The final event is the verdict, matching the response line.
        let verdict_events: Vec<Json> = a
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .filter(|d| d.get("event").and_then(Json::as_str) == Some("verdict"))
            .collect();
        assert_eq!(verdict_events.len(), 1);
        assert_eq!(
            verdict_events[0].get("agrees").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn daemon_scope_stats_report_occupancy() {
        let script = r#"
{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}
{"cmd":"grade","ref":"q3","id":"s1.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name](rename[s](Student), rename[r](Registration)))"}
{"cmd":"stats"}
{"cmd":"shutdown"}
"#;
        let out = run(script);
        let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
        let stats = &docs[3];
        assert_eq!(stats.get("scope").and_then(Json::as_str), Some("daemon"));
        assert_eq!(stats.get("warm_refs").and_then(Json::as_i64), Some(1));
        assert_eq!(stats.get("warm_cap"), Some(&Json::Null));
        assert_eq!(stats.get("evictions").and_then(Json::as_i64), Some(0));
        assert_eq!(stats.get("graded").and_then(Json::as_i64), Some(1));
        assert_eq!(stats.get("searches").and_then(Json::as_i64), Some(1));
        assert_eq!(stats.get("persisted"), Some(&Json::Null));
    }

    #[test]
    fn sync_without_a_store_is_an_error() {
        let out = run("{\"cmd\":\"sync\"}\n{\"cmd\":\"shutdown\"}");
        let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(docs[1].get("ok").and_then(Json::as_bool), Some(false));
        assert!(docs[1]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("--cache"));
    }

    /// A writer that fails with `BrokenPipe` after a byte budget — a client
    /// that hung up mid-conversation.
    #[derive(Clone)]
    struct HangupWriter {
        written: Arc<Mutex<usize>>,
        budget: usize,
    }

    impl Write for HangupWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let mut written = self.written.lock().unwrap();
            if *written + buf.len() > self.budget {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "client went away",
                ));
            }
            *written += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn a_client_hangup_is_a_clean_shutdown_not_a_crash() {
        let script = r#"
{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}
{"cmd":"grade","ref":"q3","id":"s1.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name](rename[s](Student), rename[r](Registration)))"}
{"cmd":"grade","ref":"q3","id":"s2.ra","lang":"ra","source":"project[s.name](rename[s](Student))"}
{"cmd":"shutdown"}
"#;
        // Budget past the banner + prepare, inside the grade responses: the
        // daemon must treat the failed write as EPIPE and exit Ok.
        let writer = HangupWriter {
            written: Arc::new(Mutex::new(0)),
            budget: 400,
        };
        let result = serve(script.as_bytes(), writer);
        assert!(result.is_ok(), "{result:?}");
    }
}
