//! `grade serve` — a persistent grading daemon speaking a versioned NDJSON
//! request/response protocol over stdin/stdout.
//!
//! The paper's RATest deployment was a long-lived service students queried
//! interactively all semester. This module is that shape: one process stays
//! up, holds **warm per-reference state** (the prepared [`Session`] inside a
//! [`Grader`] plus its verdict cache), and answers each request line with
//! one response line — so a re-grade of an already-seen submission performs
//! **zero counterexample searches**, and a whole cohort can be graded one
//! interactive request at a time. The container has no network, so stdio is
//! the transport; any process supervisor or socket relay can wrap it.
//!
//! ## Protocol (`ratest-serve` version 2)
//!
//! One JSON object per line, in both directions. The daemon starts by
//! announcing itself:
//!
//! ```text
//! {"event":"protocol","name":"ratest-serve","version":2}
//! ```
//!
//! Requests carry a `cmd` field; every request produces exactly one
//! response object with an `ok` field (plus zero or more `event` lines
//! before it when streaming is requested):
//!
//! | cmd        | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `hello`    | — capability probe, echoes the protocol version               |
//! | `prepare`  | `ref`, and `question` (1–8) *or* `lang`+`source`; optional `db_tuples`, `seed`, `params` (object), `timeout_ms` |
//! | `grade`    | `ref`, `id`, `lang`, `source`; optional `author`, `events`, `explain`, `repair` |
//! | `stats`    | `ref` — graded/cache-hit/search counters for the reference    |
//! | `shutdown` | — acknowledge and exit                                        |
//!
//! A `grade` with `"events":true` streams the session's typed progress
//! events ([`ratest_core::session::ExplainEvent`]) as NDJSON lines before
//! the response. A `grade` with `"repair":true` additionally runs the
//! provenance-directed repair search (see [`ratest_repair`]) on a wrong
//! verdict: candidate progress streams as `repair_*` events, and the
//! response's `suggestions` array carries the ranked, confirmed fixes. All
//! emitted fields are **deterministic** (no wall-clock readings), so a
//! scripted conversation replayed against a fresh daemon produces
//! byte-identical output — pinned by the protocol goldens in
//! `tests/serve_protocol.rs` and the `serve-protocol` CI job.
//!
//! Frontend rejections are *successful* gradings with a `rejected` verdict
//! (the diagnostic is the answer); only malformed requests get
//! `"ok":false`.

use crate::api::ExplainRequest;
use crate::engine::{Grader, GraderConfig};
use crate::ingest::{compile_submission, IngestEntry, SourceLang};
use crate::json::Json;
use crate::verdict::Verdict;
use ratest_core::pipeline::RatestOptions;
use ratest_core::session::{EventHandle, EventSink, ExplainEvent};
use ratest_queries::course::course_questions;
use ratest_storage::{Database, Value};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Protocol name announced in the banner.
pub const PROTOCOL_NAME: &str = "ratest-serve";
/// Protocol version; bump on any wire-visible change (the goldens pin it).
/// v2 added the `repair` opt-in on `grade` (suggestions + `repair_*`
/// events).
pub const PROTOCOL_VERSION: i64 = 2;

/// Warm state for one prepared reference.
struct RefState {
    label: String,
    db: Database,
    grader: Grader,
    /// The prepared grading context: established once at `prepare`, so the
    /// per-request path never re-hashes the instance.
    context: crate::engine::GradeContext,
    fingerprint: u64,
    /// Registry snapshot taken right after the prepare-time warmup probe:
    /// `stats` reports counter deltas against it, so the probe's search and
    /// cache miss never count as student gradings.
    baseline: ratest_telemetry::MetricsSnapshot,
}

/// The event sink of **one** streamed `grade` request: it owns its
/// submission id and writes NDJSON lines until [`RequestSink::retire`]d.
/// Per-request ownership is what keeps attribution correct: if a timed-out
/// job's thread is still unwinding when the next request starts, the stale
/// thread holds *this* (retired, silent) sink — it can never emit under the
/// next request's id.
struct RequestSink<W: Write + Send> {
    out: Arc<Mutex<W>>,
    id: String,
    live: std::sync::atomic::AtomicBool,
}

impl<W: Write + Send> RequestSink<W> {
    fn new(out: Arc<Mutex<W>>, id: &str) -> Arc<RequestSink<W>> {
        Arc::new(RequestSink {
            out,
            id: id.to_owned(),
            live: std::sync::atomic::AtomicBool::new(true),
        })
    }

    /// Stop emitting: the request is answered. Taking the output lock makes
    /// retirement atomic with any in-flight [`EventSink::emit`] — once this
    /// returns, no event line for this request can appear after the
    /// response line that follows.
    fn retire(&self) {
        let _out = self.out.lock().expect("serve output poisoned");
        self.live.store(false, std::sync::atomic::Ordering::Relaxed);
    }
}

impl<W: Write + Send> EventSink for RequestSink<W> {
    fn emit(&self, event: &ExplainEvent) {
        let id = self.id.as_str();
        let json = match event {
            ExplainEvent::PhaseStarted { phase } => Json::obj(vec![
                ("event", Json::str("phase")),
                ("id", Json::str(id)),
                ("phase", Json::str(phase.name())),
            ]),
            ExplainEvent::CandidateChecked { index, best_size } => {
                let mut pairs = vec![
                    ("event", Json::str("candidate")),
                    ("id", Json::str(id)),
                    ("index", Json::Int(*index as i64)),
                ];
                if let Some(best) = best_size {
                    pairs.push(("best", Json::Int(*best as i64)));
                }
                Json::obj(pairs)
            }
            ExplainEvent::SolverStats {
                variables,
                solution_size,
            } => {
                let mut pairs = vec![
                    ("event", Json::str("solver")),
                    ("id", Json::str(id)),
                    ("variables", Json::Int(*variables as i64)),
                ];
                if let Some(size) = solution_size {
                    pairs.push(("solution", Json::Int(*size as i64)));
                }
                Json::obj(pairs)
            }
            ExplainEvent::Verdict {
                agrees,
                counterexample_size,
                class,
                algorithm,
            } => {
                let mut pairs = vec![
                    ("event", Json::str("verdict")),
                    ("id", Json::str(id)),
                    ("agrees", Json::Bool(*agrees)),
                ];
                if let Some(size) = counterexample_size {
                    pairs.push(("counterexample_size", Json::Int(*size as i64)));
                }
                pairs.push(("class", Json::str(class.to_string())));
                pairs.push(("algorithm", Json::str(format!("{algorithm:?}"))));
                Json::obj(pairs)
            }
            ExplainEvent::RepairStarted { candidates } => Json::obj(vec![
                ("event", Json::str("repair_started")),
                ("id", Json::str(id)),
                ("candidates", Json::Int(*candidates as i64)),
            ]),
            ExplainEvent::RepairCandidateChecked { index, confirmed } => Json::obj(vec![
                ("event", Json::str("repair_candidate")),
                ("id", Json::str(id)),
                ("index", Json::Int(*index as i64)),
                ("confirmed", Json::Bool(*confirmed)),
            ]),
            ExplainEvent::RepairFinished { suggestions, tried } => Json::obj(vec![
                ("event", Json::str("repair_finished")),
                ("id", Json::str(id)),
                ("suggestions", Json::Int(*suggestions as i64)),
                ("tried", Json::Int(*tried as i64)),
            ]),
        };
        if let Ok(mut out) = self.out.lock() {
            // Checked under the lock so a concurrent retire() fully
            // serializes against this write (events strictly precede the
            // response; a stale thread from a timed-out job stays silent).
            if !self.live.load(std::sync::atomic::Ordering::Relaxed) {
                return;
            }
            let _ = writeln!(out, "{}", json.render());
            let _ = out.flush();
        }
    }
}

/// Run the daemon loop: read NDJSON requests from `input`, write responses
/// (and streamed events) to `output`, until `shutdown` or EOF.
pub fn serve<R: BufRead, W: Write + Send + 'static>(input: R, output: W) -> io::Result<()> {
    let out = Arc::new(Mutex::new(output));
    write_line(
        &out,
        &Json::obj(vec![
            ("event", Json::str("protocol")),
            ("name", Json::str(PROTOCOL_NAME)),
            ("version", Json::Int(PROTOCOL_VERSION)),
        ]),
    )?;

    let mut refs: HashMap<String, RefState> = HashMap::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_request(&line, &mut refs, &out);
        write_line(&out, &response)?;
        if shutdown {
            break;
        }
    }
    Ok(())
}

fn write_line<W: Write>(out: &Arc<Mutex<W>>, json: &Json) -> io::Result<()> {
    let mut out = out.lock().expect("serve output poisoned");
    writeln!(out, "{}", json.render())?;
    out.flush()
}

fn error_response(cmd: Option<&str>, message: impl Into<String>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(false))];
    if let Some(cmd) = cmd {
        pairs.push(("cmd", Json::str(cmd)));
    }
    pairs.push(("error", Json::str(message.into())));
    Json::obj(pairs)
}

/// Handle one request line; returns the response document and whether the
/// daemon should exit.
fn handle_request<W: Write + Send + 'static>(
    line: &str,
    refs: &mut HashMap<String, RefState>,
    out: &Arc<Mutex<W>>,
) -> (Json, bool) {
    let request = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => {
            return (
                error_response(None, format!("request is not JSON: {e}")),
                false,
            )
        }
    };
    let Some(cmd) = request.get("cmd").and_then(Json::as_str) else {
        return (error_response(None, "request has no `cmd` field"), false);
    };
    match cmd {
        "hello" => (
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cmd", Json::str("hello")),
                ("protocol", Json::str(PROTOCOL_NAME)),
                ("version", Json::Int(PROTOCOL_VERSION)),
            ]),
            false,
        ),
        "prepare" => (cmd_prepare(&request, refs), false),
        "grade" => (cmd_grade(&request, refs, out), false),
        "stats" => (cmd_stats(&request, refs), false),
        "shutdown" => (
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cmd", Json::str("shutdown")),
            ]),
            true,
        ),
        other => (
            error_response(Some(other), format!("unknown command `{other}`")),
            false,
        ),
    }
}

fn ref_field<'a>(request: &'a Json, cmd: &str) -> Result<&'a str, Json> {
    request
        .get("ref")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(Some(cmd), "missing `ref` field"))
}

fn cmd_prepare(request: &Json, refs: &mut HashMap<String, RefState>) -> Json {
    let ref_id = match ref_field(request, "prepare") {
        Ok(r) => r.to_owned(),
        Err(e) => return e,
    };
    let db_tuples = request
        .get("db_tuples")
        .and_then(Json::as_i64)
        .unwrap_or(60)
        .max(0) as usize;
    // The instance is generated daemon-side; cap it so one request cannot
    // stall the single-threaded loop on data generation alone.
    const MAX_DB_TUPLES: usize = 100_000;
    if db_tuples > MAX_DB_TUPLES {
        return error_response(
            Some("prepare"),
            format!("db_tuples {db_tuples} exceeds the daemon cap of {MAX_DB_TUPLES}"),
        );
    }
    let seed = request.get("seed").and_then(Json::as_i64).unwrap_or(2019) as u64;
    let timeout_ms = request
        .get("timeout_ms")
        .and_then(Json::as_i64)
        .unwrap_or(30_000)
        .max(0) as u64;

    let db = ratest_datagen::university_database(&ratest_datagen::UniversityConfig {
        total_tuples: db_tuples,
        seed,
        ..Default::default()
    });

    // Resolve the reference: a course question number or inline source.
    let (label, reference) = if let Some(n) = request.get("question").and_then(Json::as_i64) {
        match course_questions()
            .into_iter()
            .find(|q| q.number == n as usize)
        {
            Some(q) => (q.prompt.to_owned(), q.reference),
            None => {
                return error_response(
                    Some("prepare"),
                    format!("no course question {n} (valid: 1..8)"),
                )
            }
        }
    } else {
        let lang: SourceLang = match request
            .get("lang")
            .and_then(Json::as_str)
            .unwrap_or("sql")
            .parse()
        {
            Ok(l) => l,
            Err(e) => return error_response(Some("prepare"), e),
        };
        let Some(source) = request.get("source").and_then(Json::as_str) else {
            return error_response(Some("prepare"), "prepare needs `question` or `source`");
        };
        match compile_submission(&ref_id, &ref_id, lang, source, &db) {
            IngestEntry::Parsed(s) => (format!("reference {ref_id}"), s.query),
            IngestEntry::Rejected(r) => {
                return error_response(
                    Some("prepare"),
                    format!("reference does not compile: {}", r.rendered),
                )
            }
        }
    };

    let mut options = RatestOptions::default();
    // Reference preparation (evaluate + annotate) runs under the same
    // wall-clock bound as grading, so a flooding inline reference cannot
    // hang the daemon. The deadline is fixed at prepare time; that is safe
    // because with `timeout_ms > 0` every grade request runs under its own
    // fresh per-job budget, and with `timeout_ms == 0` the user explicitly
    // asked for no limits at all.
    if timeout_ms > 0 {
        options.budget = ratest_core::session::Budget::unlimited()
            .with_deadline(Duration::from_millis(timeout_ms));
    }
    if let Some(Json::Obj(pairs)) = request.get("params") {
        for (name, value) in pairs {
            let value = match value {
                Json::Int(i) => Value::Int(*i),
                Json::Str(s) => Value::from(s.as_str()),
                other => {
                    return error_response(
                        Some("prepare"),
                        format!("param `{name}` must be an int or string, got {other:?}"),
                    )
                }
            };
            options.parameters.insert(name.clone(), value);
        }
    }
    let grader = Grader::new(GraderConfig {
        workers: 1,
        per_job_timeout: Duration::from_millis(timeout_ms),
        options,
        // Repair is a per-request opt-in on `grade`, never ambient state.
        repair: None,
    });

    // Warm the session now: the context is established (instance hashed,
    // reference evaluated + annotated) exactly once, at prepare time; every
    // grade request reuses the handle. A failure here (e.g. a reference
    // that does not evaluate) is a prepare error.
    let context = match grader.prepare_context(&reference, &db) {
        Ok(c) => c,
        Err(e) => return error_response(Some("prepare"), e.to_string()),
    };
    let probe = ExplainRequest::new("__warmup__", "__warmup__", reference.clone());
    let fingerprint = probe.fingerprint();
    if let Err(e) = grader.respond_prepared(context, &probe, EventHandle::none()) {
        return error_response(Some("prepare"), e.to_string());
    }
    let shared_annotation = grader.shared_annotation_for(context).unwrap_or(false);

    let baseline = grader.metrics_snapshot();
    let state = RefState {
        label,
        db,
        grader,
        context,
        fingerprint,
        baseline,
    };
    let response = Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("cmd", Json::str("prepare")),
        ("ref", Json::str(&ref_id)),
        ("label", Json::str(&state.label)),
        (
            "fingerprint",
            Json::str(format!("{:016x}", state.fingerprint)),
        ),
        ("shared_annotation", Json::Bool(shared_annotation)),
        ("db_tuples", Json::Int(state.db.total_tuples() as i64)),
        ("seed", Json::Int(seed as i64)),
    ]);
    refs.insert(ref_id, state);
    response
}

fn cmd_grade<W: Write + Send + 'static>(
    request: &Json,
    refs: &mut HashMap<String, RefState>,
    out: &Arc<Mutex<W>>,
) -> Json {
    let ref_id = match ref_field(request, "grade") {
        Ok(r) => r.to_owned(),
        Err(e) => return e,
    };
    let Some(state) = refs.get_mut(&ref_id) else {
        return error_response(
            Some("grade"),
            format!("unknown reference `{ref_id}` — `prepare` it first"),
        );
    };
    let Some(id) = request.get("id").and_then(Json::as_str) else {
        return error_response(Some("grade"), "missing `id` field");
    };
    let author = request
        .get("author")
        .and_then(Json::as_str)
        .unwrap_or(id)
        .to_owned();
    let lang: SourceLang = match request
        .get("lang")
        .and_then(Json::as_str)
        .unwrap_or("sql")
        .parse()
    {
        Ok(l) => l,
        Err(e) => return error_response(Some("grade"), e),
    };
    let Some(source) = request.get("source").and_then(Json::as_str) else {
        return error_response(Some("grade"), "missing `source` field");
    };
    let want_events = request
        .get("events")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let want_explanation = request
        .get("explain")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let want_repair = request
        .get("repair")
        .and_then(Json::as_bool)
        .unwrap_or(false);

    state.grader.metrics().counter_inc("serve.requests.grade");
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("cmd", Json::str("grade")),
        ("ref", Json::str(&ref_id)),
        ("id", Json::str(id)),
        ("author", Json::str(&author)),
    ];
    match compile_submission(id, &author, lang, source, &state.db) {
        IngestEntry::Rejected(r) => {
            // A frontend rejection is a verdict, not a protocol error.
            pairs.push(("fingerprint", Json::str(format!("{:016x}", 0))));
            pairs.push(("verdict", Json::str("rejected")));
            pairs.push(("from_cache", Json::Bool(false)));
            if let Verdict::Rejected {
                message,
                phase,
                kind,
                span,
            } = &r.verdict
            {
                pairs.push(("message", Json::str(message)));
                pairs.push(("phase", Json::str(phase)));
                pairs.push(("kind", Json::str(kind)));
                if let Some((start, end)) = span {
                    pairs.push((
                        "span",
                        Json::Arr(vec![Json::Int(*start as i64), Json::Int(*end as i64)]),
                    ));
                }
            }
            Json::obj(pairs)
        }
        IngestEntry::Parsed(submission) => {
            // A per-request sink (not a shared gate): a stale thread from an
            // earlier timed-out job keeps its own retired sink and can never
            // emit under this request's id.
            let sink = want_events.then(|| RequestSink::new(out.clone(), id));
            let events = match &sink {
                Some(sink) => EventHandle::new(sink.clone() as Arc<dyn EventSink>),
                None => EventHandle::none(),
            };
            let repair_options = want_repair.then(ratest_repair::RepairOptions::default);
            let outcome = state.grader.respond_prepared_with(
                state.context,
                &ExplainRequest::new(submission.id.clone(), author.clone(), submission.query),
                events,
                repair_options.as_ref(),
            );
            if let Some(sink) = &sink {
                sink.retire();
            }
            let response = match outcome {
                Ok(r) => r,
                Err(e) => return error_response(Some("grade"), e.to_string()),
            };
            pairs.push((
                "fingerprint",
                Json::str(format!("{:016x}", response.fingerprint)),
            ));
            pairs.push(("verdict", Json::str(response.verdict.tag())));
            pairs.push(("from_cache", Json::Bool(response.from_cache)));
            match &response.verdict {
                Verdict::Wrong {
                    counterexample,
                    class,
                    algorithm,
                    suggestions,
                    ..
                } => {
                    pairs.push((
                        "counterexample_size",
                        Json::Int(counterexample.size() as i64),
                    ));
                    pairs.push(("class", Json::str(class.to_string())));
                    pairs.push(("algorithm", Json::str(format!("{algorithm:?}"))));
                    if want_explanation {
                        pairs.push((
                            "explanation",
                            Json::str(ratest_core::report::render_counterexample(counterexample)),
                        ));
                    }
                    if want_repair {
                        let rendered: Vec<Json> = suggestions
                            .iter()
                            .map(|s| {
                                Json::parse(&s.to_json()).expect("suggestions render valid JSON")
                            })
                            .collect();
                        pairs.push(("suggestions", Json::Arr(rendered)));
                    }
                }
                Verdict::Error { message } => {
                    pairs.push(("message", Json::str(message)));
                }
                Verdict::Timeout { budget } => {
                    pairs.push(("timeout_ms", Json::Int(budget.as_millis() as i64)));
                }
                Verdict::Correct | Verdict::Rejected { .. } => {}
            }
            Json::obj(pairs)
        }
    }
}

fn cmd_stats(request: &Json, refs: &HashMap<String, RefState>) -> Json {
    let ref_id = match ref_field(request, "stats") {
        Ok(r) => r.to_owned(),
        Err(e) => return e,
    };
    let Some(state) = refs.get(&ref_id) else {
        return error_response(Some("stats"), format!("unknown reference `{ref_id}`"));
    };
    // Every headline figure is a registry delta against the post-warmup
    // baseline, so the prepare-time probe never counts as a student grading
    // — the old hand-maintained counters (and the `- 1` warmup hack) are
    // gone. The full deterministic registry rides along under `metrics`
    // (volatile durations structurally stripped, keeping the reply
    // byte-reproducible).
    let snapshot = state.grader.metrics_snapshot();
    let since = |name: &str| Json::Int(snapshot.counter_since(&state.baseline, name) as i64);
    let metrics =
        Json::parse(&snapshot.to_json(false)).expect("registry snapshot renders valid JSON");
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("cmd", Json::str("stats")),
        ("ref", Json::str(&ref_id)),
        ("graded", since("serve.requests.grade")),
        ("cache_hits", since("grader.cache_hits")),
        ("cache_misses", since("grader.cache_misses")),
        ("searches", since("grader.searches")),
        (
            "cached_verdicts",
            Json::Int(state.grader.cached_verdicts() as i64),
        ),
        ("metrics", metrics),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cloneable in-memory writer for driving the daemon in-process.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        pub(crate) fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn run(script: &str) -> String {
        let out = SharedBuf::default();
        serve(script.as_bytes(), out.clone()).unwrap();
        out.contents()
    }

    #[test]
    fn the_daemon_announces_its_protocol_and_answers_hello() {
        let out = run(r#"{"cmd":"hello"}"#);
        let mut lines = out.lines();
        let banner = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            banner.get("name").and_then(Json::as_str),
            Some(PROTOCOL_NAME)
        );
        assert_eq!(
            banner.get("version").and_then(Json::as_i64),
            Some(PROTOCOL_VERSION)
        );
        let hello = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn malformed_and_unknown_requests_are_protocol_errors() {
        let out = run("not json\n{\"no_cmd\":1}\n{\"cmd\":\"nope\"}\n{\"cmd\":\"grade\",\"ref\":\"missing\",\"id\":\"s\",\"source\":\"x\"}");
        let errors: Vec<Json> = out
            .lines()
            .skip(1)
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(errors.len(), 4);
        for e in &errors {
            assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false), "{e:?}");
        }
        assert!(errors[3]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("prepare"));
    }

    #[test]
    fn a_conversation_grades_warm_regrades_and_shuts_down() {
        let script = r#"
{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}
{"cmd":"grade","ref":"q3","id":"s1.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))"}
{"cmd":"grade","ref":"q3","id":"s2.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name](rename[s](Student), rename[r](Registration)))"}
{"cmd":"grade","ref":"q3","id":"s1-again.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))"}
{"cmd":"stats","ref":"q3"}
{"cmd":"shutdown"}
"#;
        let out = run(script);
        let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
        // banner, prepare, 3 grades, stats, shutdown
        assert_eq!(docs.len(), 7, "{out}");
        assert_eq!(docs[1].get("cmd").and_then(Json::as_str), Some("prepare"));
        assert_eq!(docs[1].get("ok").and_then(Json::as_bool), Some(true));

        // The warm re-grade of s1 is answered from cache.
        assert_eq!(
            docs[2].get("from_cache").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            docs[4].get("from_cache").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            docs[2].get("verdict").and_then(Json::as_str),
            docs[4].get("verdict").and_then(Json::as_str),
        );
        // Two distinct submissions → exactly two searches despite three grades.
        let stats = &docs[5];
        assert_eq!(stats.get("graded").and_then(Json::as_i64), Some(3));
        assert_eq!(stats.get("searches").and_then(Json::as_i64), Some(2));
        assert_eq!(stats.get("cache_hits").and_then(Json::as_i64), Some(1));
        assert_eq!(docs[6].get("cmd").and_then(Json::as_str), Some("shutdown"));
    }

    #[test]
    fn rejected_sources_are_verdicts_not_errors() {
        let script = r#"
{"cmd":"prepare","ref":"q1","question":1,"db_tuples":24,"seed":7,"params":{"minCS":1}}
{"cmd":"grade","ref":"q1","id":"bad.sql","lang":"sql","source":"SELECT nme FROM Student"}
{"cmd":"shutdown"}
"#;
        let out = run(script);
        let docs: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
        let graded = &docs[2];
        assert_eq!(graded.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            graded.get("verdict").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(graded.get("phase").and_then(Json::as_str), Some("resolve"));
        assert!(graded.get("span").is_some());
    }

    #[test]
    fn event_streaming_is_opt_in_and_deterministic() {
        let script = r#"
{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}
{"cmd":"grade","ref":"q3","id":"w.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))","events":true}
{"cmd":"shutdown"}
"#;
        let a = run(script);
        let b = run(script);
        assert_eq!(a, b, "two daemon runs are byte-identical");
        let events: Vec<Json> = a
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .filter(|d| d.get("event").and_then(Json::as_str) == Some("phase"))
            .collect();
        assert!(!events.is_empty(), "{a}");
        assert!(events
            .iter()
            .all(|e| e.get("id").and_then(Json::as_str) == Some("w.ra")));
        // The final event is the verdict, matching the response line.
        let verdict_events: Vec<Json> = a
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .filter(|d| d.get("event").and_then(Json::as_str) == Some("verdict"))
            .collect();
        assert_eq!(verdict_events.len(), 1);
        assert_eq!(
            verdict_events[0].get("agrees").and_then(Json::as_bool),
            Some(false)
        );
    }
}
