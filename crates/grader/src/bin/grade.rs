//! `grade` — batch-grade student submissions against a reference query.
//!
//! ## Primary mode: grade a directory of submission files
//!
//! ```text
//! grade <DIR> --reference <N | path.sql | path.ra>
//!       [--db-tuples N] [--seed N] [--workers N] [--timeout-ms N]
//!       [--param name=value]... [--json PATH] [--explain ID] [--diagnostics]
//!       [--shard i/N] [--cache PATH.rvc]
//! ```
//!
//! `<DIR>` is walked recursively; `.sql` files go through the SQL frontend,
//! `.ra` files through the RA surface-syntax parser (dispatch by extension).
//! Files the frontend rejects appear in the report as `rejected` with a
//! spanned diagnostic. `--reference` is a course question number (1–8) or a
//! path to a reference query file. The hidden instance is a generated
//! university database (`--db-tuples`, `--seed`).
//!
//! `--cache PATH` persists the verdict cache across invocations: verdicts
//! are loaded before grading (corrupt records are skipped and reported) and
//! the newly computed ones are appended afterwards, so a warm re-grade
//! performs zero counterexample searches. `--shard i/N` grades only the
//! i-th of N deterministic cohort slices — run one process per shard, then
//! fuse the artifacts with `grade merge`.
//!
//! ## Spawn mode: run every shard from one invocation
//!
//! ```text
//! grade <DIR> --reference <...> --spawn N --json MERGED.json [--cache MERGED.rvc] [...]
//! ```
//!
//! The driver launches one `grade --shard i/N` subprocess per shard — all
//! of them concurrently, so on a multi-core host the wall clock is the
//! slowest shard rather than the sum — and automatically fuses the shard
//! reports into exactly the report the unsharded run would have produced.
//! `--cache` keeps its unsharded load-then-append semantics: every shard
//! warm-starts from a private copy of the file's pre-existing records, and
//! the driver appends the fresh verdicts (deduped across shards) once all
//! of them are done.
//!
//! ## Fmt mode: canonicalize RA surface syntax
//!
//! ```text
//! grade fmt <file.ra>... [--write]
//! ```
//!
//! Parses each `.ra` file and re-renders it through the parseable surface
//! renderer (`ra::display::to_surface_string`). Formatting is idempotent:
//! formatting an already-formatted file is a no-op. Without `--write` the
//! formatted text goes to stdout; with it the files are rewritten in place
//! (only when the text actually changed).
//!
//! ## Serve mode: a persistent grading daemon
//!
//! ```text
//! grade serve [--threads N] [--warm-cap N] [--cache PATH.rvc]
//!             [--admit-timeout-ms N]
//! ```
//!
//! Speaks the versioned `ratest-serve` NDJSON protocol over stdin/stdout:
//! `prepare` a reference once, then `grade` submissions interactively with
//! warm per-reference state (a re-grade performs zero counterexample
//! searches). `--threads` grades that many requests concurrently (with
//! admission control — an over-capacity request waits at most
//! `--admit-timeout-ms` before being rejected with an overload verdict),
//! `--warm-cap` LRU-evicts warm references beyond the cap, and `--cache`
//! persists verdicts to the same store `grade --cache` uses, so a restarted
//! daemon warm-starts. See `ratest_grader::serve` for the protocol
//! reference.
//!
//! ## Merge mode: fuse shard artifacts into the class report
//!
//! ```text
//! grade merge <shard.json>... [--json MERGED.json]
//!             [--cache-in shard.rvc]... [--cache MERGED.rvc]
//! ```
//!
//! The merged report is byte-identical to the one an unsharded run would
//! have written; the merged cache contains every shard's verdicts, deduped.
//!
//! ## Secondary mode: synthetic cohorts for benchmarks / load tests
//!
//! ```text
//! grade --generate [--question 1..8] [--class N] [--db-tuples N] [--seed N]
//!       [--workers N] [--timeout-ms N] [--json PATH] [--explain ID]
//!       [--compare-sequential]
//! ```

use ratest_grader::json::Json;
use ratest_grader::{
    generate_cohort, ingest_dir, merge_reports, shard_cohort, store, CacheEntry, CohortConfig,
    Grader, GraderConfig, ShardSpec,
};
use ratest_queries::course::course_questions;
use ratest_ra::ast::Query;
use ratest_storage::{Database, Value};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: grade <DIR> --reference <N|path.sql|path.ra> \
     [--db-tuples N] [--seed N] [--workers N] [--timeout-ms N] \
     [--param name=value]... [--json PATH] [--explain ID] [--diagnostics] \
     [--suggest] [--shard i/N | --spawn N] [--cache PATH.rvc] \
     [--metrics PATH.json] [--trace PATH.ndjson] [--warm-cap N]\n\
       grade serve [--threads N] [--warm-cap N] [--cache PATH.rvc] \
     [--admit-timeout-ms N]\n\
       grade fmt <file.ra>... [--write]\n\
       grade merge <shard.json>... [--json MERGED.json] \
     [--cache-in shard.rvc]... [--cache MERGED.rvc]\n\
       grade --generate [--question 1..8] [--class N] [--db-tuples N] \
     [--seed N] [--workers N] [--timeout-ms N] [--json PATH] [--explain ID] \
     [--compare-sequential]";

struct Args {
    /// Directory of submissions (primary mode).
    dir: Option<PathBuf>,
    /// Reference query: a question number or a file path.
    reference: Option<String>,
    /// Synthetic-cohort mode (benchmarks / load tests).
    generate: bool,
    cohort: CohortConfig,
    workers: usize,
    timeout_ms: u64,
    params: Vec<(String, Value)>,
    json_path: Option<String>,
    explain_id: Option<String>,
    diagnostics: bool,
    compare_sequential: bool,
    /// Grade only this slice of the cohort (directory mode).
    shard: Option<ShardSpec>,
    /// Run all N shards as subprocesses from this invocation and auto-merge.
    spawn: Option<usize>,
    /// Persistent verdict cache to load before and append to after grading.
    cache_path: Option<String>,
    /// Write the engine's full metrics snapshot (including the volatile
    /// duration section) as JSON after grading.
    metrics_path: Option<String>,
    /// Record explain-trace spans and write them as NDJSON after grading.
    /// Forces `--workers 1` so the span tree stays well-nested.
    trace_path: Option<String>,
    /// Enrich wrong verdicts with provenance-directed repair suggestions.
    suggest: bool,
    /// Cap on warm per-context sessions held by the engine (LRU-evicted
    /// beyond it); `None` = unbounded.
    warm_cap: Option<usize>,
}

/// Arguments of the `merge` subcommand.
struct MergeArgs {
    /// Shard report JSON files to fuse.
    reports: Vec<PathBuf>,
    /// Where to write the merged report (stdout when absent).
    json_out: Option<String>,
    /// Shard verdict cache files to fuse.
    cache_in: Vec<String>,
    /// Where to write the merged cache.
    cache_out: Option<String>,
}

fn parse_merge_args(rest: impl Iterator<Item = String>) -> Result<MergeArgs, String> {
    let mut args = MergeArgs {
        reports: Vec::new(),
        json_out: None,
        cache_in: Vec::new(),
        cache_out: None,
    };
    let mut it = rest;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--json" => args.json_out = Some(value("--json")?),
            "--cache" => args.cache_out = Some(value("--cache")?),
            "--cache-in" => args.cache_in.push(value("--cache-in")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            report => args.reports.push(PathBuf::from(report)),
        }
    }
    if args.reports.is_empty() && args.cache_in.is_empty() {
        return Err(format!(
            "merge needs shard report files and/or --cache-in files\n{USAGE}"
        ));
    }
    if !args.cache_in.is_empty() && args.cache_out.is_none() {
        return Err("--cache-in requires --cache <output path>".into());
    }
    if args.reports.is_empty() && args.json_out.is_some() {
        return Err("--json needs shard report files to merge".into());
    }
    Ok(args)
}

/// Parse the flags of the `serve` subcommand into a [`ServeConfig`].
///
/// [`ServeConfig`]: ratest_grader::serve::ServeConfig
fn parse_serve_args(
    rest: impl Iterator<Item = String>,
) -> Result<ratest_grader::serve::ServeConfig, String> {
    let mut config = ratest_grader::serve::ServeConfig::default();
    let mut it = rest;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--threads" => config.threads = parse::<usize>(&value("--threads")?)?.max(1),
            "--warm-cap" => config.warm_cap = Some(parse(&value("--warm-cap")?)?),
            "--cache" => config.cache = Some(PathBuf::from(value("--cache")?)),
            "--admit-timeout-ms" => config.admit_timeout_ms = parse(&value("--admit-timeout-ms")?)?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown serve flag: {other}")),
        }
    }
    Ok(config)
}

fn parse_args(rest: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        dir: None,
        reference: None,
        generate: false,
        cohort: CohortConfig::default(),
        workers: 4,
        timeout_ms: 30_000,
        params: Vec::new(),
        json_path: None,
        explain_id: None,
        diagnostics: false,
        compare_sequential: false,
        shard: None,
        spawn: None,
        cache_path: None,
        metrics_path: None,
        trace_path: None,
        suggest: false,
        warm_cap: None,
    };
    let mut it = rest;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--reference" => args.reference = Some(value("--reference")?),
            "--generate" => args.generate = true,
            "--question" => args.cohort.question = parse(&value("--question")?)?,
            "--class" => args.cohort.class_size = parse(&value("--class")?)?,
            "--db-tuples" => args.cohort.db_tuples = parse(&value("--db-tuples")?)?,
            "--seed" => args.cohort.seed = parse(&value("--seed")?)?,
            "--workers" => args.workers = parse(&value("--workers")?)?,
            "--timeout-ms" => args.timeout_ms = parse(&value("--timeout-ms")?)?,
            "--param" => {
                let kv = value("--param")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--param expects name=value, got `{kv}`"))?;
                let v = match v.parse::<i64>() {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::from(v),
                };
                args.params.push((k.to_owned(), v));
            }
            "--json" => args.json_path = Some(value("--json")?),
            "--explain" => args.explain_id = Some(value("--explain")?),
            "--diagnostics" => args.diagnostics = true,
            "--compare-sequential" => args.compare_sequential = true,
            "--shard" => args.shard = Some(value("--shard")?.parse()?),
            "--spawn" => args.spawn = Some(parse(&value("--spawn")?)?),
            "--cache" => args.cache_path = Some(value("--cache")?),
            "--metrics" => args.metrics_path = Some(value("--metrics")?),
            "--trace" => args.trace_path = Some(value("--trace")?),
            "--suggest" => args.suggest = true,
            "--warm-cap" => args.warm_cap = Some(parse(&value("--warm-cap")?)?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            dir => {
                if args.dir.replace(PathBuf::from(dir)).is_some() {
                    return Err("only one submissions directory may be given".into());
                }
            }
        }
    }
    if args.dir.is_none() && !args.generate {
        return Err(format!(
            "expected a submissions directory (or --generate)\n{USAGE}"
        ));
    }
    if args.dir.is_some() && args.generate {
        return Err("--generate cannot be combined with a submissions directory".into());
    }
    if args.generate && args.shard.is_some() {
        return Err("--shard applies to directory mode only".into());
    }
    if let Some(n) = args.spawn {
        if n == 0 {
            return Err("--spawn needs at least 1 shard".into());
        }
        if args.generate {
            return Err("--spawn applies to directory mode only".into());
        }
        if args.shard.is_some() {
            return Err("--spawn drives the shards itself; drop --shard".into());
        }
        if args.json_path.is_none() {
            return Err("--spawn needs --json <MERGED.json> for the fused report".into());
        }
        if args.metrics_path.is_some() || args.trace_path.is_some() {
            return Err(
                "--metrics/--trace instrument one grading process; run them per shard, not with --spawn"
                    .into(),
            );
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid numeric value: {s}"))
}

/// Resolve `--reference`: a course question number or a `.sql`/`.ra` file.
fn resolve_reference(spec: &str, db: &Database) -> Result<(String, Query), String> {
    if let Ok(n) = spec.parse::<usize>() {
        let questions = course_questions();
        let q = questions
            .into_iter()
            .find(|q| q.number == n)
            .ok_or_else(|| format!("no course question {n} (valid: 1..8)"))?;
        return Ok((q.prompt.to_owned(), q.reference));
    }
    let path = PathBuf::from(spec);
    let source = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {spec}: {e}"))?;
    let query = match path.extension().and_then(|e| e.to_str()) {
        Some("sql") => ratest_sql::compile_sql(&source, db)
            .map_err(|e| format!("reference {spec} is invalid:\n{}", e.render(&source)))?,
        Some("ra") => ratest_ra::parser::parse_query(&source)
            .map_err(|e| format!("reference {spec} is invalid: {e}"))?,
        _ => return Err(format!("reference {spec} must end in .sql or .ra")),
    };
    Ok((format!("reference {spec}"), query))
}

/// Run `grade merge`: fuse shard report JSONs and shard verdict caches.
fn run_merge(args: MergeArgs) -> ExitCode {
    if !args.reports.is_empty() {
        let mut docs = Vec::with_capacity(args.reports.len());
        for path in &args.reports {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("grade: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match Json::parse(&text) {
                Ok(doc) => docs.push(doc),
                Err(e) => {
                    eprintln!("grade: {} is not a report: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let merged = match merge_reports(&docs) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("grade: merge failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let rendered = merged.render();
        match &args.json_out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &rendered) {
                    eprintln!("grade: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                let rows = merged
                    .get("submissions")
                    .and_then(Json::as_array)
                    .map(|a| a.len())
                    .unwrap_or(0);
                eprintln!(
                    "merged {} shard report(s) ({rows} submissions) into {path}",
                    args.reports.len()
                );
            }
            // The document itself owns stdout (so `grade merge ... >
            // class.json` is valid JSON); status lines go to stderr.
            None => println!("{rendered}"),
        }
    }

    if let Some(out) = &args.cache_out {
        let mut entries: Vec<CacheEntry> = Vec::new();
        for path in &args.cache_in {
            // `store::load` treats a missing file as an empty cache — right
            // for the cold-start grading path, wrong for an explicit merge
            // input, where a typo'd path would silently drop a shard.
            if !Path::new(path).exists() {
                eprintln!("grade: --cache-in {path}: no such file");
                return ExitCode::FAILURE;
            }
            match store::load(Path::new(path)) {
                Ok(loaded) => {
                    report_skipped(path, &loaded.skipped);
                    entries.extend(loaded.entries);
                }
                Err(e) => {
                    eprintln!("grade: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let total = entries.len();
        if let Err(e) = store::write_merged(Path::new(out), &entries) {
            eprintln!("grade: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "merged {} cache file(s) ({total} records) into {out}",
            args.cache_in.len()
        );
    }
    ExitCode::SUCCESS
}

/// Run all N shards as concurrent subprocesses of this same binary and
/// fuse their artifacts — the single-invocation driver for the
/// shard-within-a-machine path. `raw_args` is the original command line;
/// the driver strips its own flags and adds `--shard i/N` plus per-shard
/// artifact paths. The shards launch together and the driver waits for all
/// of them, so on a multi-core host the wall clock is the slowest shard,
/// not the sum — while the merged report stays byte-identical to the
/// unsharded run's.
fn run_spawn(args: &Args, raw_args: &[String]) -> ExitCode {
    let n = args.spawn.expect("spawn mode");
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("grade: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tmp = std::env::temp_dir().join(format!("ratest-spawn-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&tmp) {
        eprintln!("grade: cannot create {}: {e}", tmp.display());
        return ExitCode::FAILURE;
    }
    // The per-shard artifacts are scratch state; remove them on every exit
    // path, including a failed shard (the merged outputs the user asked for
    // live at --json/--cache, outside the scratch dir).
    let code = run_spawn_in(args, raw_args, n, &exe, &tmp);
    let _ = std::fs::remove_dir_all(&tmp);
    code
}

/// The body of [`run_spawn`], with the scratch directory's lifetime managed
/// by the caller.
fn run_spawn_in(args: &Args, raw_args: &[String], n: usize, exe: &Path, tmp: &Path) -> ExitCode {
    // The shard invocations inherit everything except the driver-only
    // flags. `--cache` is stripped too: with the shards running
    // *concurrently*, pointing them all at the user's cache file would race
    // on the append — each shard instead gets a private scratch copy
    // (pre-existing records still warm-start every shard), and the driver
    // folds the fresh verdicts back into the user's file once all shards
    // are done, preserving the unsharded load-then-append semantics.
    let mut base: Vec<String> = Vec::new();
    let mut it = raw_args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spawn" | "--json" | "--cache" => {
                let _ = it.next();
            }
            _ => base.push(a.clone()),
        }
    }
    let user_cache = args.cache_path.as_ref().map(Path::new);
    let cache_preexists = user_cache.map(|p| p.exists()).unwrap_or(false);

    // Launch every shard before waiting on any of them.
    let mut children: Vec<(usize, std::process::Child)> = Vec::new();
    let mut shard_reports: Vec<PathBuf> = Vec::new();
    let mut shard_caches: Vec<PathBuf> = Vec::new();
    for i in 1..=n {
        let json = tmp.join(format!("shard{i}.json"));
        let mut cmd = std::process::Command::new(exe);
        cmd.args(&base)
            .arg("--shard")
            .arg(format!("{i}/{n}"))
            .arg("--json")
            .arg(&json);
        if let Some(user) = user_cache {
            let scratch = tmp.join(format!("shard{i}.rvc"));
            if cache_preexists {
                if let Err(e) = std::fs::copy(user, &scratch) {
                    eprintln!("grade: cannot seed shard cache {}: {e}", scratch.display());
                    return ExitCode::FAILURE;
                }
            }
            cmd.arg("--cache").arg(&scratch);
            shard_caches.push(scratch);
        }
        eprintln!("spawn {i}/{n}: {}", exe.display());
        match cmd.spawn() {
            Ok(child) => children.push((i, child)),
            Err(e) => {
                eprintln!("grade: cannot spawn shard {i}/{n}: {e}");
                for (_, mut c) in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return ExitCode::FAILURE;
            }
        }
        shard_reports.push(json);
    }
    let mut failed = false;
    for (i, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("grade: shard {i}/{n} failed with {status}");
                failed = true;
            }
            Err(e) => {
                eprintln!("grade: cannot wait for shard {i}/{n}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }

    // Fold the shards' fresh verdicts back into the user's cache file,
    // append-only: records already on disk are never rewritten, and a
    // fingerprint two shards both graded lands once (the verdicts are
    // deterministic, so first-shard-wins loses nothing).
    if let Some(user) = user_cache {
        let persisted: HashSet<(u64, u64)> = if cache_preexists {
            match store::load(user) {
                Ok(loaded) => loaded
                    .entries
                    .iter()
                    .map(|e| (e.context, e.fingerprint))
                    .collect(),
                Err(e) => {
                    eprintln!("grade: {}: {e}", user.display());
                    return ExitCode::FAILURE;
                }
            }
        } else {
            HashSet::new()
        };
        let mut seen = persisted;
        let mut fresh: Vec<CacheEntry> = Vec::new();
        for scratch in &shard_caches {
            match store::load(scratch) {
                Ok(loaded) => {
                    report_skipped(&scratch.display().to_string(), &loaded.skipped);
                    for e in loaded.entries {
                        if seen.insert((e.context, e.fingerprint)) {
                            fresh.push(e);
                        }
                    }
                }
                Err(e) => {
                    eprintln!("grade: {}: {e}", scratch.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = store::append(user, &fresh) {
            eprintln!("grade: cannot update {}: {e}", user.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "verdict cache: appended {} new record(s) to {}",
            fresh.len(),
            user.display()
        );
    }

    // Fuse the shard reports exactly like `grade merge` would.
    run_merge(MergeArgs {
        reports: shard_reports,
        json_out: args.json_path.clone(),
        cache_in: Vec::new(),
        cache_out: None,
    })
}

/// Run `grade fmt`: parse each `.ra` file and re-render it through the
/// parseable surface renderer. The renderer's output re-parses to the same
/// AST, so formatting is idempotent — pinned by the property test in
/// `tests/repair_conformance.rs`.
fn run_fmt(files: &[String], write: bool) -> ExitCode {
    if files.is_empty() {
        eprintln!("grade: fmt needs at least one .ra file\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in files {
        if !path.ends_with(".ra") {
            eprintln!("grade: fmt handles .ra files only, got {path}");
            failed = true;
            continue;
        }
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("grade: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        let query = match ratest_ra::parser::parse_query(&source) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("grade: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let formatted = format!("{}\n", ratest_ra::display::to_surface_string(&query));
        if write {
            if formatted != source {
                if let Err(e) = std::fs::write(path, &formatted) {
                    eprintln!("grade: cannot write {path}: {e}");
                    failed = true;
                    continue;
                }
                eprintln!("formatted {path}");
            }
        } else {
            print!("{formatted}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn report_skipped(path: &str, skipped: &[store::SkippedRecord]) {
    for s in skipped {
        eprintln!(
            "grade: {path}: skipped corrupt record at line {}: {}",
            s.line, s.reason
        );
    }
}

fn main() -> ExitCode {
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    let mut argv = raw_args.iter().cloned().peekable();
    match argv.peek().map(String::as_str) {
        Some("merge") => {
            argv.next();
            return match parse_merge_args(argv) {
                Ok(a) => run_merge(a),
                Err(e) => {
                    eprintln!("grade: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("fmt") => {
            argv.next();
            let rest: Vec<String> = argv.collect();
            let write = rest.iter().any(|a| a == "--write");
            let files: Vec<String> = rest.into_iter().filter(|a| a != "--write").collect();
            return run_fmt(&files, write);
        }
        Some("serve") => {
            argv.next();
            let config = match parse_serve_args(argv) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("grade: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let stdin = std::io::stdin();
            return match ratest_grader::serve::serve_with(stdin.lock(), std::io::stdout(), config) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("grade: serve transport error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("grade: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.spawn.is_some() {
        return run_spawn(&args, &raw_args);
    }

    let mut options = ratest_core::RatestOptions::default();
    for (k, v) in &args.params {
        options.parameters.insert(k.clone(), v.clone());
    }
    // `--trace` needs a single worker: the span tree is reconstructed from
    // the flat event order, which interleaved workers would scramble.
    let trace_sink = args.trace_path.as_ref().map(|_| {
        let sink = std::sync::Arc::new(ratest_core::TracingSink::new());
        options.events = ratest_core::session::EventHandle::new(
            sink.clone() as std::sync::Arc<dyn ratest_core::session::EventSink>
        );
        sink
    });
    let workers = if trace_sink.is_some() {
        if args.workers > 1 {
            eprintln!("grade: --trace forces --workers 1 (spans must stay well-nested)");
        }
        1
    } else {
        args.workers.max(1)
    };
    let grader = Grader::new(GraderConfig {
        workers,
        per_job_timeout: Duration::from_millis(args.timeout_ms),
        options,
        repair: args.suggest.then(ratest_repair::RepairOptions::default),
        warm_cap: args.warm_cap,
    });

    // Seed the engine from the persistent verdict cache, remembering which
    // keys were already on disk so only the fresh ones are appended later.
    let mut persisted_keys: HashSet<(u64, u64)> = HashSet::new();
    if let Some(path) = &args.cache_path {
        match store::load(Path::new(path)) {
            Ok(loaded) => {
                report_skipped(path, &loaded.skipped);
                persisted_keys = loaded
                    .entries
                    .iter()
                    .map(|e| (e.context, e.fingerprint))
                    .collect();
                let inserted = grader.preload_cache(loaded.entries);
                println!("verdict cache: loaded {inserted} record(s) from {path}");
            }
            Err(e) => {
                eprintln!("grade: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = if let Some(dir) = &args.dir {
        // Primary mode: grade a directory of .sql/.ra submissions.
        let db = ratest_datagen::university_database(&ratest_datagen::UniversityConfig {
            total_tuples: args.cohort.db_tuples,
            seed: args.cohort.seed,
            ..Default::default()
        });
        let spec = match &args.reference {
            Some(s) => s.clone(),
            None => {
                eprintln!("grade: directory mode requires --reference <N|path.sql|path.ra>");
                return ExitCode::FAILURE;
            }
        };
        let (label, reference) = match resolve_reference(&spec, &db) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("grade: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut cohort = match ingest_dir(dir, &db) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("grade: cannot read {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        let total_files = cohort.entries.len();
        if let Some(spec) = &args.shard {
            cohort = shard_cohort(&cohort, spec);
            println!(
                "shard {spec}: {} of {total_files} submission(s) belong to this shard",
                cohort.entries.len()
            );
        }
        println!(
            "{label}\ncohort: {} files ({} parsed, {} rejected) over a hidden instance of {} tuples (seed {})\n",
            cohort.entries.len(),
            cohort.parsed_count(),
            cohort.rejected_count(),
            db.total_tuples(),
            args.cohort.seed
        );
        if args.diagnostics {
            for r in cohort.rejected() {
                println!("{}:\n{}\n", r.id, r.rendered);
            }
        }
        match grader.grade_cohort(&label, &reference, &db, &cohort) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("grade: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // Secondary mode: synthetic cohort for benchmarks / load tests.
        let cohort = generate_cohort(&args.cohort);
        println!("question {}: {}", args.cohort.question, cohort.prompt);
        println!(
            "cohort: {} generated submissions over a hidden instance of {} tuples (seed {})\n",
            cohort.submissions.len(),
            cohort.db.total_tuples(),
            args.cohort.seed
        );
        match grader.grade(
            &cohort.prompt,
            &cohort.reference,
            &cohort.db,
            &cohort.submissions,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("grade: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    print!("{}", report.render_text());

    if let Some(id) = &args.explain_id {
        match report.explanation_for(id) {
            Some(text) => println!("\nexplanation for {id}:\n{text}"),
            None => println!("\n{id}: no counterexample (correct, error, or unknown id)"),
        }
    }

    if args.compare_sequential {
        if args.dir.is_some() {
            eprintln!("grade: --compare-sequential applies to --generate mode only");
        } else {
            let cohort = generate_cohort(&args.cohort);
            let sequential = Grader::new(GraderConfig {
                workers: 1,
                per_job_timeout: Duration::from_millis(args.timeout_ms),
                ..Default::default()
            });
            match sequential.grade(
                &cohort.prompt,
                &cohort.reference,
                &cohort.db,
                &cohort.submissions,
            ) {
                Ok(seq) => {
                    let par = report.stats.wall_time.as_secs_f64();
                    let s = seq.stats.wall_time.as_secs_f64();
                    println!(
                        "\nsequential wall {:?} vs {} workers {:?}  (speedup {:.2}x)",
                        seq.stats.wall_time,
                        args.workers.max(1),
                        report.stats.wall_time,
                        if par > 0.0 { s / par } else { f64::INFINITY }
                    );
                }
                Err(e) => eprintln!("grade: sequential comparison failed: {e}"),
            }
        }
    }

    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("grade: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote JSON report to {path}");
    }

    // Append-only persistence: records that were already on disk are never
    // rewritten, only this run's fresh verdicts go out.
    if let Some(path) = &args.cache_path {
        let fresh: Vec<CacheEntry> = grader
            .cache_entries()
            .into_iter()
            .filter(|e| !persisted_keys.contains(&(e.context, e.fingerprint)))
            .collect();
        if let Err(e) = store::append(Path::new(path), &fresh) {
            eprintln!("grade: cannot update {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "verdict cache: appended {} new record(s) to {path}",
            fresh.len()
        );
    }

    if let Some(path) = &args.metrics_path {
        // The file gets the *full* snapshot: counters/gauges/histograms are
        // deterministic, wall-clock totals ride in the `volatile` section so
        // a consumer can strip them structurally for byte-wise comparison.
        let snapshot = grader.metrics_snapshot().to_json(true);
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("grade: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics snapshot to {path}");
    }
    if let (Some(path), Some(sink)) = (&args.trace_path, &trace_sink) {
        if let Err(e) = std::fs::write(path, sink.to_ndjson()) {
            eprintln!("grade: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote explain-trace spans to {path}");
    }
    ExitCode::SUCCESS
}
