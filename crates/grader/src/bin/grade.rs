//! `grade` — batch-grade a generated cohort of student submissions.
//!
//! Generates a class of submissions for one course question (reference
//! queries + mutation-based student errors + a hidden university instance),
//! grades them on a worker pool with fingerprint dedup and a shared
//! reference annotation, and prints the class report.
//!
//! ```text
//! grade [--question 1..8] [--class N] [--db-tuples N] [--workers N]
//!       [--seed N] [--timeout-ms N] [--json PATH] [--explain ID]
//!       [--compare-sequential]
//! ```

use ratest_grader::{generate_cohort, CohortConfig, Grader, GraderConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    cohort: CohortConfig,
    workers: usize,
    timeout_ms: u64,
    json_path: Option<String>,
    explain_id: Option<String>,
    compare_sequential: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cohort: CohortConfig::default(),
        workers: 4,
        timeout_ms: 30_000,
        json_path: None,
        explain_id: None,
        compare_sequential: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--question" => args.cohort.question = parse(&value("--question")?)?,
            "--class" => args.cohort.class_size = parse(&value("--class")?)?,
            "--db-tuples" => args.cohort.db_tuples = parse(&value("--db-tuples")?)?,
            "--seed" => args.cohort.seed = parse(&value("--seed")?)?,
            "--workers" => args.workers = parse(&value("--workers")?)?,
            "--timeout-ms" => args.timeout_ms = parse(&value("--timeout-ms")?)?,
            "--json" => args.json_path = Some(value("--json")?),
            "--explain" => args.explain_id = Some(value("--explain")?),
            "--compare-sequential" => args.compare_sequential = true,
            "--help" | "-h" => {
                println!(
                    "usage: grade [--question 1..8] [--class N] [--db-tuples N] \
                     [--workers N] [--seed N] [--timeout-ms N] [--json PATH] \
                     [--explain ID] [--compare-sequential]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid numeric value: {s}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("grade: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cohort = generate_cohort(&args.cohort);
    println!("question {}: {}", args.cohort.question, cohort.prompt);
    println!(
        "cohort: {} submissions over a hidden instance of {} tuples (seed {})\n",
        cohort.submissions.len(),
        cohort.db.total_tuples(),
        args.cohort.seed
    );

    let grader = Grader::new(GraderConfig {
        workers: args.workers.max(1),
        per_job_timeout: Duration::from_millis(args.timeout_ms),
        ..Default::default()
    });
    let report = match grader.grade(
        &cohort.prompt,
        &cohort.reference,
        &cohort.db,
        &cohort.submissions,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("grade: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_text());

    if let Some(id) = &args.explain_id {
        match report.explanation_for(id) {
            Some(text) => println!("\nexplanation for {id}:\n{text}"),
            None => println!("\n{id}: no counterexample (correct, error, or unknown id)"),
        }
    }

    if args.compare_sequential {
        let sequential = Grader::new(GraderConfig {
            workers: 1,
            per_job_timeout: Duration::from_millis(args.timeout_ms),
            ..Default::default()
        });
        match sequential.grade(
            &cohort.prompt,
            &cohort.reference,
            &cohort.db,
            &cohort.submissions,
        ) {
            Ok(seq) => {
                let par = report.stats.wall_time.as_secs_f64();
                let s = seq.stats.wall_time.as_secs_f64();
                println!(
                    "\nsequential wall {:?} vs {} workers {:?}  (speedup {:.2}x)",
                    seq.stats.wall_time,
                    args.workers.max(1),
                    report.stats.wall_time,
                    if par > 0.0 { s / par } else { f64::INFINITY }
                );
            }
            Err(e) => eprintln!("grade: sequential comparison failed: {e}"),
        }
    }

    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("grade: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote JSON report to {path}");
    }
    ExitCode::SUCCESS
}
