//! `grade` — batch-grade student submissions against a reference query.
//!
//! ## Primary mode: grade a directory of submission files
//!
//! ```text
//! grade <DIR> --reference <N | path.sql | path.ra>
//!       [--db-tuples N] [--seed N] [--workers N] [--timeout-ms N]
//!       [--param name=value]... [--json PATH] [--explain ID] [--diagnostics]
//! ```
//!
//! `<DIR>` is walked recursively; `.sql` files go through the SQL frontend,
//! `.ra` files through the RA surface-syntax parser (dispatch by extension).
//! Files the frontend rejects appear in the report as `rejected` with a
//! spanned diagnostic. `--reference` is a course question number (1–8) or a
//! path to a reference query file. The hidden instance is a generated
//! university database (`--db-tuples`, `--seed`).
//!
//! ## Secondary mode: synthetic cohorts for benchmarks / load tests
//!
//! ```text
//! grade --generate [--question 1..8] [--class N] [--db-tuples N] [--seed N]
//!       [--workers N] [--timeout-ms N] [--json PATH] [--explain ID]
//!       [--compare-sequential]
//! ```

use ratest_grader::{generate_cohort, ingest_dir, CohortConfig, Grader, GraderConfig};
use ratest_queries::course::course_questions;
use ratest_ra::ast::Query;
use ratest_storage::{Database, Value};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: grade <DIR> --reference <N|path.sql|path.ra> \
     [--db-tuples N] [--seed N] [--workers N] [--timeout-ms N] \
     [--param name=value]... [--json PATH] [--explain ID] [--diagnostics]\n\
       grade --generate [--question 1..8] [--class N] [--db-tuples N] \
     [--seed N] [--workers N] [--timeout-ms N] [--json PATH] [--explain ID] \
     [--compare-sequential]";

struct Args {
    /// Directory of submissions (primary mode).
    dir: Option<PathBuf>,
    /// Reference query: a question number or a file path.
    reference: Option<String>,
    /// Synthetic-cohort mode (benchmarks / load tests).
    generate: bool,
    cohort: CohortConfig,
    workers: usize,
    timeout_ms: u64,
    params: Vec<(String, Value)>,
    json_path: Option<String>,
    explain_id: Option<String>,
    diagnostics: bool,
    compare_sequential: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: None,
        reference: None,
        generate: false,
        cohort: CohortConfig::default(),
        workers: 4,
        timeout_ms: 30_000,
        params: Vec::new(),
        json_path: None,
        explain_id: None,
        diagnostics: false,
        compare_sequential: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--reference" => args.reference = Some(value("--reference")?),
            "--generate" => args.generate = true,
            "--question" => args.cohort.question = parse(&value("--question")?)?,
            "--class" => args.cohort.class_size = parse(&value("--class")?)?,
            "--db-tuples" => args.cohort.db_tuples = parse(&value("--db-tuples")?)?,
            "--seed" => args.cohort.seed = parse(&value("--seed")?)?,
            "--workers" => args.workers = parse(&value("--workers")?)?,
            "--timeout-ms" => args.timeout_ms = parse(&value("--timeout-ms")?)?,
            "--param" => {
                let kv = value("--param")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--param expects name=value, got `{kv}`"))?;
                let v = match v.parse::<i64>() {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::from(v),
                };
                args.params.push((k.to_owned(), v));
            }
            "--json" => args.json_path = Some(value("--json")?),
            "--explain" => args.explain_id = Some(value("--explain")?),
            "--diagnostics" => args.diagnostics = true,
            "--compare-sequential" => args.compare_sequential = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            dir => {
                if args.dir.replace(PathBuf::from(dir)).is_some() {
                    return Err("only one submissions directory may be given".into());
                }
            }
        }
    }
    if args.dir.is_none() && !args.generate {
        return Err(format!(
            "expected a submissions directory (or --generate)\n{USAGE}"
        ));
    }
    if args.dir.is_some() && args.generate {
        return Err("--generate cannot be combined with a submissions directory".into());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid numeric value: {s}"))
}

/// Resolve `--reference`: a course question number or a `.sql`/`.ra` file.
fn resolve_reference(spec: &str, db: &Database) -> Result<(String, Query), String> {
    if let Ok(n) = spec.parse::<usize>() {
        let questions = course_questions();
        let q = questions
            .into_iter()
            .find(|q| q.number == n)
            .ok_or_else(|| format!("no course question {n} (valid: 1..8)"))?;
        return Ok((q.prompt.to_owned(), q.reference));
    }
    let path = PathBuf::from(spec);
    let source = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {spec}: {e}"))?;
    let query = match path.extension().and_then(|e| e.to_str()) {
        Some("sql") => ratest_sql::compile_sql(&source, db)
            .map_err(|e| format!("reference {spec} is invalid:\n{}", e.render(&source)))?,
        Some("ra") => ratest_ra::parser::parse_query(&source)
            .map_err(|e| format!("reference {spec} is invalid: {e}"))?,
        _ => return Err(format!("reference {spec} must end in .sql or .ra")),
    };
    Ok((format!("reference {spec}"), query))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("grade: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut options = ratest_core::RatestOptions::default();
    for (k, v) in &args.params {
        options.parameters.insert(k.clone(), v.clone());
    }
    let grader = Grader::new(GraderConfig {
        workers: args.workers.max(1),
        per_job_timeout: Duration::from_millis(args.timeout_ms),
        options,
    });

    let report = if let Some(dir) = &args.dir {
        // Primary mode: grade a directory of .sql/.ra submissions.
        let db = ratest_datagen::university_database(&ratest_datagen::UniversityConfig {
            total_tuples: args.cohort.db_tuples,
            seed: args.cohort.seed,
            ..Default::default()
        });
        let spec = match &args.reference {
            Some(s) => s.clone(),
            None => {
                eprintln!("grade: directory mode requires --reference <N|path.sql|path.ra>");
                return ExitCode::FAILURE;
            }
        };
        let (label, reference) = match resolve_reference(&spec, &db) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("grade: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cohort = match ingest_dir(dir, &db) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("grade: cannot read {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{label}\ncohort: {} files ({} parsed, {} rejected) over a hidden instance of {} tuples (seed {})\n",
            cohort.entries.len(),
            cohort.parsed_count(),
            cohort.rejected_count(),
            db.total_tuples(),
            args.cohort.seed
        );
        if args.diagnostics {
            for r in cohort.rejected() {
                println!("{}:\n{}\n", r.id, r.rendered);
            }
        }
        match grader.grade_cohort(&label, &reference, &db, &cohort) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("grade: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // Secondary mode: synthetic cohort for benchmarks / load tests.
        let cohort = generate_cohort(&args.cohort);
        println!("question {}: {}", args.cohort.question, cohort.prompt);
        println!(
            "cohort: {} generated submissions over a hidden instance of {} tuples (seed {})\n",
            cohort.submissions.len(),
            cohort.db.total_tuples(),
            args.cohort.seed
        );
        match grader.grade(
            &cohort.prompt,
            &cohort.reference,
            &cohort.db,
            &cohort.submissions,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("grade: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    print!("{}", report.render_text());

    if let Some(id) = &args.explain_id {
        match report.explanation_for(id) {
            Some(text) => println!("\nexplanation for {id}:\n{text}"),
            None => println!("\n{id}: no counterexample (correct, error, or unknown id)"),
        }
    }

    if args.compare_sequential {
        if args.dir.is_some() {
            eprintln!("grade: --compare-sequential applies to --generate mode only");
        } else {
            let cohort = generate_cohort(&args.cohort);
            let sequential = Grader::new(GraderConfig {
                workers: 1,
                per_job_timeout: Duration::from_millis(args.timeout_ms),
                ..Default::default()
            });
            match sequential.grade(
                &cohort.prompt,
                &cohort.reference,
                &cohort.db,
                &cohort.submissions,
            ) {
                Ok(seq) => {
                    let par = report.stats.wall_time.as_secs_f64();
                    let s = seq.stats.wall_time.as_secs_f64();
                    println!(
                        "\nsequential wall {:?} vs {} workers {:?}  (speedup {:.2}x)",
                        seq.stats.wall_time,
                        args.workers.max(1),
                        report.stats.wall_time,
                        if par > 0.0 { s / par } else { f64::INFINITY }
                    );
                }
                Err(e) => eprintln!("grade: sequential comparison failed: {e}"),
            }
        }
    }

    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("grade: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote JSON report to {path}");
    }
    ExitCode::SUCCESS
}
