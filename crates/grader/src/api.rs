//! The request/response values of the grading API.
//!
//! Every layer above the core pipeline — the batch engine, the persistent
//! verdict store, cohort sharding and the `grade serve` daemon — speaks
//! [`ExplainRequest`] / [`ExplainResponse`] pairs: *grade this query against
//! the prepared reference* / *here is the verdict, its fingerprint, and
//! whether warm state answered it*.
//!
//! Both values are **codec-serializable** via [`ratest_storage::codec`]:
//! queries travel as their parseable RA surface syntax
//! ([`ratest_ra::display::to_surface_string`], round-trip pinned by the
//! `ra` crate's property tests), verdicts as the same token stream the
//! verdict store uses — with the two store-unpersistable kinds (timeout,
//! rejected) encoded here, because a *wire* response has no persistence
//! policy. Round-tripping a response re-encodes byte-identically, which is
//! what lets shard drivers and the daemon exchange values through files and
//! pipes without a second serialization scheme.

use crate::store;
use crate::verdict::Verdict;
use ratest_ra::ast::Query;
use ratest_ra::display::to_surface_string;
use ratest_storage::codec::{Decoder, Encoder};
use std::sync::Arc;
use std::time::Duration;

/// A single grading request: one submission to explain against the
/// requester's prepared reference.
#[derive(Debug, Clone)]
pub struct ExplainRequest {
    /// Submission id (file path, LMS id, ...).
    pub id: String,
    /// Author display name.
    pub author: String,
    /// The submitted query (already parsed by a frontend).
    pub query: Arc<Query>,
}

impl ExplainRequest {
    /// Build a request.
    pub fn new(id: impl Into<String>, author: impl Into<String>, query: Query) -> ExplainRequest {
        ExplainRequest {
            id: id.into(),
            author: author.into(),
            query: Arc::new(query),
        }
    }

    /// The request's canonical fingerprint (what dedup and caches key on).
    pub fn fingerprint(&self) -> u64 {
        ratest_ra::canonical::fingerprint(&self.query)
    }
}

/// The answer to one [`ExplainRequest`].
#[derive(Debug, Clone)]
pub struct ExplainResponse {
    /// The request's submission id, echoed back.
    pub id: String,
    /// The request's author, echoed back.
    pub author: String,
    /// Canonical fingerprint of the submitted query.
    pub fingerprint: u64,
    /// The verdict.
    pub verdict: Verdict,
    /// Whether warm state (the cross-batch verdict cache) answered the
    /// request without a counterexample search.
    pub from_cache: bool,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Encode a request to its canonical token stream.
pub fn encode_request(req: &ExplainRequest, e: &mut Encoder) {
    e.tag("xreq").s(&req.id).s(&req.author);
    e.s(&to_surface_string(&req.query));
}

/// Decode a request.
pub fn decode_request(d: &mut Decoder) -> Result<ExplainRequest, String> {
    d.expect("xreq").map_err(|e| e.to_string())?;
    let id = d.s().map_err(|e| e.to_string())?;
    let author = d.s().map_err(|e| e.to_string())?;
    let surface = d.s().map_err(|e| e.to_string())?;
    let query = ratest_ra::parser::parse_query(&surface)
        .map_err(|e| format!("request query does not parse: {e}"))?;
    Ok(ExplainRequest {
        id,
        author,
        query: Arc::new(query),
    })
}

/// Encode any verdict kind — the wire codec has no persistence policy, so
/// timeouts and rejections (which [`store::encode_verdict`] refuses) are
/// first-class here.
pub fn encode_verdict_wire(v: &Verdict, e: &mut Encoder) {
    match v {
        Verdict::Timeout { budget } => {
            e.tag("timeout").u(budget.as_millis() as u64);
        }
        Verdict::Rejected {
            message,
            phase,
            kind,
            span,
        } => {
            e.tag("rejected").s(message).s(phase).s(kind);
            match span {
                Some((start, end)) => {
                    e.u(1).u(*start as u64).u(*end as u64);
                }
                None => {
                    e.u(0);
                }
            }
        }
        persistable => store::encode_verdict_into(persistable, e)
            .expect("correct/wrong/error verdicts always encode"),
    }
}

/// Decode any verdict kind.
pub fn decode_verdict_wire(d: &mut Decoder) -> Result<Verdict, String> {
    let tag = d.tag().map_err(|e| e.to_string())?;
    match tag {
        "timeout" => Ok(Verdict::Timeout {
            budget: Duration::from_millis(d.u().map_err(|e| e.to_string())?),
        }),
        "rejected" => {
            let message = d.s().map_err(|e| e.to_string())?;
            let phase = d.s().map_err(|e| e.to_string())?;
            let kind = d.s().map_err(|e| e.to_string())?;
            let span = match d.u().map_err(|e| e.to_string())? {
                0 => None,
                _ => {
                    let start = d.usize().map_err(|e| e.to_string())?;
                    let end = d.usize().map_err(|e| e.to_string())?;
                    Some((start, end))
                }
            };
            Ok(Verdict::Rejected {
                message,
                phase,
                kind,
                span,
            })
        }
        other => store::decode_verdict_tagged(other, d),
    }
}

/// Encode a response to its canonical token stream.
pub fn encode_response(resp: &ExplainResponse, e: &mut Encoder) {
    e.tag("xresp")
        .s(&resp.id)
        .s(&resp.author)
        .u(resp.fingerprint)
        .u(resp.from_cache as u64);
    encode_verdict_wire(&resp.verdict, e);
}

/// Decode a response.
pub fn decode_response(d: &mut Decoder) -> Result<ExplainResponse, String> {
    d.expect("xresp").map_err(|e| e.to_string())?;
    let id = d.s().map_err(|e| e.to_string())?;
    let author = d.s().map_err(|e| e.to_string())?;
    let fingerprint = d.u().map_err(|e| e.to_string())?;
    let from_cache = d.u().map_err(|e| e.to_string())? != 0;
    let verdict = decode_verdict_wire(d)?;
    Ok(ExplainResponse {
        id,
        author,
        fingerprint,
        verdict,
        from_cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Grader, GraderConfig};
    use ratest_ra::testdata;

    fn roundtrip_response(resp: &ExplainResponse) -> ExplainResponse {
        let mut e = Encoder::new();
        encode_response(resp, &mut e);
        let payload = e.finish();
        let mut d = Decoder::new(&payload);
        let back = decode_response(&mut d).unwrap();
        d.done().unwrap();
        // Canonical: re-encoding is byte-identical.
        let mut e2 = Encoder::new();
        encode_response(&back, &mut e2);
        assert_eq!(e2.finish(), payload);
        back
    }

    #[test]
    fn requests_roundtrip_through_the_codec() {
        let req = ExplainRequest::new("s1.ra", "Ada", testdata::example1_q1());
        let mut e = Encoder::new();
        encode_request(&req, &mut e);
        let payload = e.finish();
        let mut d = Decoder::new(&payload);
        let back = decode_request(&mut d).unwrap();
        d.done().unwrap();
        assert_eq!(back.id, "s1.ra");
        assert_eq!(back.author, "Ada");
        // Surface-syntax round trip preserves the canonical fingerprint.
        assert_eq!(back.fingerprint(), req.fingerprint());
    }

    #[test]
    fn all_verdict_kinds_roundtrip_on_the_wire() {
        // Real correct/wrong verdicts from grading the running example.
        let db = testdata::figure1_db();
        let reference = testdata::example1_q1();
        let grader = Grader::new(GraderConfig::default());
        let responses = grader
            .respond_all(
                &reference,
                &db,
                &[
                    ExplainRequest::new("s0", "Ada", reference.clone()),
                    ExplainRequest::new("s1", "Ben", testdata::example1_q2()),
                ],
            )
            .unwrap();
        assert_eq!(responses.len(), 2);
        for resp in &responses {
            let back = roundtrip_response(resp);
            assert_eq!(back.verdict.tag(), resp.verdict.tag());
            assert_eq!(back.fingerprint, resp.fingerprint);
        }

        // The two store-unpersistable kinds are first-class on the wire.
        let timeout = ExplainResponse {
            id: "s2".into(),
            author: "Cyd".into(),
            fingerprint: 7,
            verdict: Verdict::Timeout {
                budget: Duration::from_millis(1500),
            },
            from_cache: false,
        };
        assert!(matches!(
            roundtrip_response(&timeout).verdict,
            Verdict::Timeout { budget } if budget == Duration::from_millis(1500)
        ));
        let rejected = ExplainResponse {
            id: "s3.sql".into(),
            author: "Dee".into(),
            fingerprint: 0,
            verdict: Verdict::Rejected {
                message: "unknown column `nme`".into(),
                phase: "resolve".into(),
                kind: "unknown_column".into(),
                span: Some((7, 10)),
            },
            from_cache: false,
        };
        match roundtrip_response(&rejected).verdict {
            Verdict::Rejected { span, kind, .. } => {
                assert_eq!(span, Some((7, 10)));
                assert_eq!(kind, "unknown_column");
            }
            other => panic!("expected rejected, got {}", other.tag()),
        }
    }
}
