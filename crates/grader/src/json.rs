//! A minimal JSON document builder **and parser**.
//!
//! The build container has no network access, so `serde_json` is not
//! available. The class-level report needs to *emit* JSON (correct string
//! escaping, stable key order as inserted), and `grade merge` needs to
//! *read back* shard reports written by this same writer. The parser keeps
//! object keys in document order, so re-rendering a parsed document (or any
//! sub-object, e.g. a submission row lifted into a merged report)
//! reproduces the original bytes.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (emitted without a fractional part).
    Int(i64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parse a JSON document. Object key order is preserved.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            input,
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(value)
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: what was expected and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What the parser expected.
    pub expected: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    depth: usize,
}

/// Containers deeper than this are a parse error, not a stack overflow —
/// the parser recurses per nesting level, and `grade merge` feeds it
/// arbitrary files. Real reports nest 4 levels.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, expected: impl Into<String>) -> JsonParseError {
        JsonParseError {
            expected: expected.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("`{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(format!("nesting no deeper than {MAX_DEPTH}")))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                self.depth -= 1;
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("`,` or `]`"));
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("`:`"));
            }
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                self.depth -= 1;
                return Ok(Json::Obj(pairs));
            }
            if !self.eat(b',') {
                return Err(self.err("`,` or `}`"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        if !self.eat(b'"') {
            return Err(self.err("`\"`"));
        }
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-quote) bytes at once.
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            if self.pos > start {
                if !self.input.is_char_boundary(self.pos) {
                    return Err(self.err("valid UTF-8 string content"));
                }
                out.push_str(&self.input[start..self.pos]);
            }
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("4 hex digits"))?;
                            // The writer only emits \u for control chars, so
                            // surrogate pairs are not supported; reject them
                            // rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("non-surrogate code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("escape character")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("closing `\"`")),
                _ => unreachable!("loop above stops only at quote/backslash/end"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("a number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("an integer"))
        }
    }
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::str("cohort")),
            ("size", Json::Int(50)),
            ("rate", Json::Float(0.25)),
            (
                "tags",
                Json::Arr(vec![Json::str("a"), Json::Null, Json::Bool(true)]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"cohort","size":50,"rate":0.25,"tags":["a",null,true]}"#
        );
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_render_roundtrip_is_byte_identical() {
        // Everything the report writer can emit must survive a parse →
        // render cycle byte-for-byte: that is what makes `grade merge`
        // capable of reproducing the unsharded document exactly.
        for doc in [
            r#"{"name":"cohort","size":50,"rate":0.25,"tags":["a",null,true]}"#,
            r#"{}"#,
            r#"[]"#,
            r#"{"nested":{"deep":[1,-2,3.5],"empty":{}},"last":false}"#,
            "\"a\\\"b\\\\c\\nd\\u0001\"",
            r#"{"ms":1833.33024,"neg":-0.5,"tiny":0.0000001}"#,
            r#""unicode: Märy 学生""#,
        ] {
            let parsed = Json::parse(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
            assert_eq!(parsed.render(), doc);
        }
    }

    #[test]
    fn parse_preserves_key_order() {
        let parsed = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        match &parsed {
            Json::Obj(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["z", "a", "m"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"stats":{"wrong":3},"rows":[{"id":"a"}],"ok":true}"#).unwrap();
        assert_eq!(
            doc.get("stats")
                .and_then(|s| s.get("wrong"))
                .and_then(Json::as_i64),
            Some(3)
        );
        assert_eq!(
            doc.get("rows")
                .and_then(Json::as_array)
                .and_then(|r| r[0].get("id"))
                .and_then(Json::as_str),
            Some("a")
        );
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn malformed_documents_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            r#"{"a":}"#,
            "tru",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "{} trailing",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        let mixed = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&mixed).is_err());
        // Nesting at the cap still parses; one past it does not.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn whitespace_between_tokens_is_accepted() {
        let doc = " {\n\t\"a\" : [ 1 , 2 ] ,\r\n \"b\" : null } ";
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.render(), r#"{"a":[1,2],"b":null}"#);
    }
}
