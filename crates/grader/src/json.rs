//! A minimal JSON document builder.
//!
//! The build container has no network access, so `serde_json` is not
//! available; the class-level report only needs to *emit* JSON, which this
//! ~100-line writer covers (correct string escaping, stable key order as
//! inserted).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (emitted without a fractional part).
    Int(i64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::str("cohort")),
            ("size", Json::Int(50)),
            ("rate", Json::Float(0.25)),
            (
                "tags",
                Json::Arr(vec![Json::str("a"), Json::Null, Json::Bool(true)]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"cohort","size":50,"rate":0.25,"tags":["a",null,true]}"#
        );
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }
}
