//! # ratest-grader
//!
//! The batch grading engine: the class-scale workload the paper's Section 6
//! deployment (the RATest course tool) served. Given **one** reference query,
//! a hidden test instance and *N* student submissions, the engine produces a
//! per-submission verdict — *agrees*, *counterexample* (with the small
//! distinguishing sub-instance), *error* or *timeout* — plus a class-level
//! report with dedup/cache/timing statistics.
//!
//! Three batch-level optimizations make this much cheaper than running the
//! one-pair [`ratest_core::pipeline::explain`] in a loop:
//!
//! 1. **Dedup by canonical fingerprint** ([`submission`]): submissions are
//!    grouped by [`ratest_ra::canonical::fingerprint`], so syntactically
//!    different but equivalent-after-normalization queries are explained
//!    once and the verdict is reused for every member of the group. Across
//!    batches, a fingerprint → verdict cache gives the same effect for
//!    resubmissions.
//! 2. **Shared reference preparation**
//!    ([`ratest_core::pipeline::PreparedReference`]): the reference query is
//!    evaluated and provenance-annotated once per batch; workers combine the
//!    shared annotation with each submission's own annotation via
//!    [`ratest_provenance::difference_of`] instead of re-annotating the
//!    reference per pair.
//! 3. **A bounded worker pool** ([`engine`]): distinct submissions are graded
//!    concurrently by `workers` threads with a per-job wall-clock timeout, so
//!    one pathological submission cannot stall the whole class.
//!
//! Two more layers take the engine beyond one process:
//!
//! 4. **A persistent verdict store** ([`store`]): the cross-batch cache
//!    serializes to an on-disk, versioned, append-only file keyed by the
//!    platform-stable FNV-1a canonical fingerprints. A warm re-grade from a
//!    populated cache performs zero counterexample searches and renders a
//!    byte-identical JSON report.
//! 5. **Cohort sharding** ([`shard`]): `grade --shard i/N` grades a
//!    deterministic slice of the cohort in its own process; `grade merge`
//!    fuses the shard reports and caches into exactly the unsharded
//!    artifacts, and `grade --spawn N` drives all N shards (as sequential
//!    subprocesses) plus the merge from one invocation.
//! 6. **Warm sessions + a wire API** ([`api`]): the engine is built on
//!    [`ratest_core::session::Session`] — one prepared session per grading
//!    context survives across batches — and every consumer speaks
//!    [`ExplainRequest`]/[`ExplainResponse`] values that serialize via
//!    `ratest_storage::codec`.
//! 7. **A persistent daemon** ([`serve`]): `grade serve` speaks the
//!    versioned `ratest-serve` NDJSON protocol over stdio with warm
//!    per-reference state, streaming typed progress events; a served
//!    re-grade performs zero counterexample searches.
//!
//! Real-world cohorts come from the [`ingest`] module: a directory of
//! `.sql` / `.ra` submission files is dispatched by extension through the
//! `ratest_sql` frontend or the RA surface-syntax parser, with frontend
//! rejections surfacing as first-class [`Verdict::Rejected`] rows (spanned
//! diagnostics, "did you mean" hints) in the same report. The [`cohort`]
//! module can still *generate* synthetic workloads (reference questions from
//! `ratest_queries::course`, student errors from `ratest_queries::mutations`,
//! ability/adoption from `ratest_userstudy::sample_class`, hidden instances
//! from `ratest_datagen`) for benchmarks and load tests; the `grade` binary
//! wires both into a CLI, with directory ingestion as the primary mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cohort;
pub mod engine;
pub mod ingest;
pub mod json;
pub mod report;
pub mod serve;
pub mod shard;
pub mod store;
pub mod submission;
pub mod verdict;

pub use api::{ExplainRequest, ExplainResponse};
pub use cohort::{generate_cohort, CohortConfig, GeneratedCohort};
pub use engine::{GradeContext, Grader, GraderConfig, GraderError};
pub use ingest::{
    compile_submission, ingest_dir, IngestEntry, IngestedCohort, RejectedSubmission, SourceLang,
};
pub use report::{BatchReport, BatchStats};
pub use serve::{serve, serve_with, ServeConfig};
pub use shard::{merge_reports, shard_cohort, shard_of, ShardSpec};
pub use store::{CacheEntry, LoadedCache, SkippedRecord, StoreError};
pub use submission::{group_by_fingerprint, Submission, SubmissionGroup};
pub use verdict::{GradedSubmission, Verdict};
