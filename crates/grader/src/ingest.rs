//! Directory ingestion: turn a directory of student submission files into a
//! gradable cohort, dispatching on file extension.
//!
//! * `.sql` files go through the `ratest_sql` frontend (parse + lower
//!   against the hidden instance's schema). Frontend rejections become
//!   [`Verdict::Rejected`] entries carrying the spanned diagnostic.
//! * `.ra` files go through the RA surface-syntax parser
//!   ([`ratest_ra::parser::parse_query`]) followed by a typecheck against
//!   the instance, so an `.ra` submission naming a missing relation is also
//!   rejected up front rather than erroring mid-batch.
//! * Everything else (READMEs, editor droppings) is ignored.
//!
//! Subdirectories are walked recursively; the submission id is the relative
//! path (`errors/parse_missing_from.sql`), the author is the file stem.

use crate::submission::Submission;
use crate::verdict::Verdict;
use ratest_sql::SqlError;
use ratest_storage::Database;
use std::io;
use std::path::{Path, PathBuf};

/// One file of an ingested cohort, in directory order.
#[derive(Debug, Clone)]
pub enum IngestEntry {
    /// The file parsed (and, for SQL, lowered) cleanly.
    Parsed(Submission),
    /// The frontend rejected the file; it is reported but never graded.
    Rejected(RejectedSubmission),
}

impl IngestEntry {
    /// The submission id of the entry.
    pub fn id(&self) -> &str {
        match self {
            IngestEntry::Parsed(s) => &s.id,
            IngestEntry::Rejected(r) => &r.id,
        }
    }
}

/// A submission rejected by the SQL/RA frontend.
#[derive(Debug, Clone)]
pub struct RejectedSubmission {
    /// Submission id (the file's path relative to the ingested directory).
    pub id: String,
    /// Author display name (file stem).
    pub author: String,
    /// The rejection, as a verdict ([`Verdict::Rejected`]).
    pub verdict: Verdict,
    /// The diagnostic rendered against the source, with a caret line.
    pub rendered: String,
}

/// An ingested cohort: entries in directory order.
#[derive(Debug, Clone, Default)]
pub struct IngestedCohort {
    /// All entries, parsed and rejected, in directory order.
    pub entries: Vec<IngestEntry>,
}

impl IngestedCohort {
    /// Number of entries the frontend accepted.
    pub fn parsed_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, IngestEntry::Parsed(_)))
            .count()
    }

    /// Number of entries the frontend rejected.
    pub fn rejected_count(&self) -> usize {
        self.entries.len() - self.parsed_count()
    }

    /// The parsed submissions, in directory order (cloned — used once per
    /// grading run to hand the engine an owned batch).
    pub fn submissions(&self) -> Vec<Submission> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                IngestEntry::Parsed(s) => Some(s.clone()),
                IngestEntry::Rejected(_) => None,
            })
            .collect()
    }

    /// The rejected submissions, in directory order.
    pub fn rejected(&self) -> Vec<&RejectedSubmission> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                IngestEntry::Rejected(r) => Some(r),
                IngestEntry::Parsed(_) => None,
            })
            .collect()
    }
}

/// Read every `.sql` / `.ra` file under `dir` (recursively) and build a
/// cohort against the schema of `db`.
///
/// Entries are ordered by their submission id (the `/`-separated relative
/// path) — a canonical order every process agrees on, which is what lets
/// `grade merge` interleave shard rows back into exactly this sequence.
///
/// Only directory *enumeration* failures are `Err`: anything wrong with an
/// individual file — a frontend rejection, a non-UTF-8 or unreadable body —
/// becomes a [`Verdict::Rejected`] row so one bad submission can never sink
/// the cohort.
pub fn ingest_dir(dir: &Path, db: &Database) -> io::Result<IngestedCohort> {
    let mut files = Vec::new();
    collect_files(dir, &mut files)?;
    // The id keeps the extension: `q1.sql` and `q1.ra` in the same
    // directory are distinct submissions and must not share a report row.
    let mut ids: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|path| {
            let id = path
                .strip_prefix(dir)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            (id, path)
        })
        .collect();
    ids.sort_by(|a, b| a.0.cmp(&b.0));
    let mut cohort = IngestedCohort::default();
    for (id, path) in ids {
        let author = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| id.clone());
        let source = match std::fs::read(&path) {
            Ok(bytes) => match String::from_utf8(bytes) {
                Ok(s) => s,
                Err(e) => {
                    let at = e.utf8_error().valid_up_to();
                    cohort.entries.push(IngestEntry::Rejected(reject_unreadable(
                        &id,
                        &author,
                        format!("submission is not valid UTF-8 (first bad byte at offset {at})"),
                        "invalid_utf8",
                        Some((at, at + 1)),
                    )));
                    continue;
                }
            },
            Err(e) => {
                cohort.entries.push(IngestEntry::Rejected(reject_unreadable(
                    &id,
                    &author,
                    format!("submission could not be read: {e}"),
                    "unreadable",
                    None,
                )));
                continue;
            }
        };
        let ext = path
            .extension()
            .map(|e| e.to_ascii_lowercase())
            .unwrap_or_default();
        let lang = if ext == "sql" {
            SourceLang::Sql
        } else {
            SourceLang::Ra
        };
        cohort
            .entries
            .push(compile_submission(&id, &author, lang, &source, db));
    }
    Ok(cohort)
}

/// The frontend a submission source goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceLang {
    /// The `ratest_sql` SQL frontend (parse + lower against the schema).
    Sql,
    /// The RA surface-syntax parser followed by a typecheck.
    Ra,
}

impl std::str::FromStr for SourceLang {
    type Err = String;

    fn from_str(s: &str) -> Result<SourceLang, String> {
        match s {
            "sql" => Ok(SourceLang::Sql),
            "ra" => Ok(SourceLang::Ra),
            other => Err(format!("unknown submission language `{other}` (sql|ra)")),
        }
    }
}

/// Compile one submission source through the frontend for `lang`, producing
/// either a parsed [`Submission`] or a spanned rejection — the shared
/// ingestion step behind both directory grading and the `grade serve`
/// daemon's inline `grade` command.
pub fn compile_submission(
    id: &str,
    author: &str,
    lang: SourceLang,
    source: &str,
    db: &Database,
) -> IngestEntry {
    match lang {
        SourceLang::Sql => match ratest_sql::compile_sql(source, db) {
            Ok(query) => IngestEntry::Parsed(Submission::new(id, author, query)),
            Err(e) => IngestEntry::Rejected(reject_sql(id, author, source, &e)),
        },
        SourceLang::Ra => match ratest_ra::parser::parse_query(source) {
            Ok(query) => match ratest_ra::typecheck::output_schema(&query, db) {
                Ok(_) => IngestEntry::Parsed(Submission::new(id, author, query)),
                Err(e) => IngestEntry::Rejected(reject_ra_resolve(id, author, &e)),
            },
            Err(e) => IngestEntry::Rejected(reject_ra_parse(id, author, source, &e)),
        },
    }
}

/// A file that never reached a frontend: unreadable bytes are rejected in an
/// `ingest` phase of their own, with a span when one exists (the offset of
/// the first invalid byte).
fn reject_unreadable(
    id: &str,
    author: &str,
    message: String,
    kind: &str,
    span: Option<(usize, usize)>,
) -> RejectedSubmission {
    RejectedSubmission {
        id: id.to_owned(),
        author: author.to_owned(),
        rendered: message.clone(),
        verdict: Verdict::Rejected {
            message,
            phase: "ingest".into(),
            kind: kind.into(),
            span,
        },
    }
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(&path, out)?;
        } else if matches!(
            path.extension().map(|e| e.to_ascii_lowercase()),
            Some(ext) if ext == "sql" || ext == "ra"
        ) {
            out.push(path);
        }
    }
    Ok(())
}

fn reject_sql(id: &str, author: &str, source: &str, e: &SqlError) -> RejectedSubmission {
    let span = e.span();
    RejectedSubmission {
        id: id.to_owned(),
        author: author.to_owned(),
        verdict: Verdict::Rejected {
            message: e.to_string(),
            phase: e.phase().name().to_owned(),
            kind: e.kind().to_owned(),
            span: Some((span.start, span.end)),
        },
        rendered: e.render(source),
    }
}

fn reject_ra_parse(
    id: &str,
    author: &str,
    source: &str,
    e: &ratest_ra::QueryError,
) -> RejectedSubmission {
    let span = match e {
        ratest_ra::QueryError::Parse { position, .. } => {
            // An end-of-input error sits at `source.len()`; keep the span
            // inside the source (possibly empty) rather than one past it.
            let end = if *position < source.len() {
                *position + 1
            } else {
                *position
            };
            Some((*position, end))
        }
        _ => None,
    };
    RejectedSubmission {
        id: id.to_owned(),
        author: author.to_owned(),
        verdict: Verdict::Rejected {
            message: e.to_string(),
            phase: "parse".into(),
            kind: "parse".into(),
            span,
        },
        rendered: e.to_string(),
    }
}

fn reject_ra_resolve(id: &str, author: &str, e: &ratest_ra::QueryError) -> RejectedSubmission {
    let kind = match e {
        ratest_ra::QueryError::UnknownColumn { .. } => "unknown_column",
        ratest_ra::QueryError::AmbiguousColumn { .. } => "ambiguous_column",
        ratest_ra::QueryError::Storage(ratest_storage::StorageError::UnknownRelation(_)) => {
            "unknown_relation"
        }
        _ => "resolve",
    };
    RejectedSubmission {
        id: id.to_owned(),
        author: author.to_owned(),
        verdict: Verdict::Rejected {
            message: e.to_string(),
            phase: "resolve".into(),
            kind: kind.into(),
            span: None,
        },
        rendered: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::testdata::figure1_db;

    fn write(dir: &Path, name: &str, contents: &str) {
        let path = dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(path, contents).unwrap();
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ratest-ingest-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingests_mixed_extensions_and_rejects_malformed_files() {
        let dir = scratch_dir("mixed");
        write(&dir, "a_sql_query.sql", "SELECT name, major FROM Student");
        write(&dir, "b_ra_query.ra", "project[name, major](Student)");
        write(&dir, "c_broken.sql", "SELECT nme FROM Student");
        write(&dir, "d_bad_ra.ra", "project[name](NoSuchTable)");
        write(&dir, "README.md", "not a submission");
        write(
            &dir,
            "errors/e_unterminated.sql",
            "SELECT 'oops FROM Student",
        );

        let db = figure1_db();
        let cohort = ingest_dir(&dir, &db).unwrap();
        assert_eq!(cohort.entries.len(), 5, "README is ignored");
        assert_eq!(cohort.submissions().len(), 2);
        let rejected = cohort.rejected();
        assert_eq!(rejected.len(), 3);

        let by_id = |id: &str| -> &RejectedSubmission {
            rejected
                .iter()
                .find(|r| r.id == id)
                .copied()
                .unwrap_or_else(|| panic!("missing {id}"))
        };
        match &by_id("c_broken.sql").verdict {
            Verdict::Rejected { kind, span, .. } => {
                assert_eq!(kind, "unknown_column");
                assert_eq!(span.unwrap().0, 7);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        match &by_id("d_bad_ra.ra").verdict {
            Verdict::Rejected { phase, kind, .. } => {
                assert_eq!(phase, "resolve");
                assert_eq!(kind, "unknown_relation");
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        match &by_id("errors/e_unterminated.sql").verdict {
            Verdict::Rejected { phase, .. } => assert_eq!(phase, "lexer"),
            other => panic!("unexpected verdict {other:?}"),
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_empty_directory_is_an_empty_cohort_and_still_grades() {
        let dir = scratch_dir("empty");
        let db = figure1_db();
        let cohort = ingest_dir(&dir, &db).unwrap();
        assert!(cohort.entries.is_empty());
        assert_eq!(cohort.parsed_count(), 0);
        assert_eq!(cohort.rejected_count(), 0);
        // Grading an empty cohort is a report with zero rows, not an error.
        let report = crate::engine::Grader::new(crate::engine::GraderConfig::default())
            .grade_cohort("empty", &ratest_ra::testdata::example1_q1(), &db, &cohort)
            .unwrap();
        assert_eq!(report.stats.submissions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_stems_are_distinct_submissions() {
        let dir = scratch_dir("dupstem");
        write(&dir, "a.sql", "SELECT name, major FROM Student");
        write(&dir, "a.ra", "project[name, major](Student)");
        let db = figure1_db();
        let cohort = ingest_dir(&dir, &db).unwrap();
        assert_eq!(cohort.entries.len(), 2);
        let ids: Vec<&str> = cohort.entries.iter().map(|e| e.id()).collect();
        assert_eq!(ids, vec!["a.ra", "a.sql"], "extension kept, both present");
        // Both parsed — and they stay separate report rows even though the
        // stems (and thus authors) collide.
        assert_eq!(cohort.parsed_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_files_become_spanned_rejections_not_errors() {
        let dir = scratch_dir("nonutf8");
        std::fs::write(dir.join("binary.sql"), [0x53, 0x45, 0x4c, 0xff, 0xfe]).unwrap();
        write(&dir, "fine.sql", "SELECT name, major FROM Student");
        let db = figure1_db();
        let cohort = ingest_dir(&dir, &db).expect("one bad file must not sink the cohort");
        assert_eq!(cohort.entries.len(), 2);
        assert_eq!(cohort.parsed_count(), 1);
        let rejected = cohort.rejected();
        assert_eq!(rejected.len(), 1);
        match &rejected[0].verdict {
            Verdict::Rejected {
                phase, kind, span, ..
            } => {
                assert_eq!(phase, "ingest");
                assert_eq!(kind, "invalid_utf8");
                assert_eq!(*span, Some((3, 4)), "span points at the first bad byte");
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_byte_files_become_rejections_not_panics() {
        let dir = scratch_dir("zerobyte");
        write(&dir, "empty.sql", "");
        write(&dir, "empty.ra", "");
        let db = figure1_db();
        let cohort = ingest_dir(&dir, &db).unwrap();
        assert_eq!(cohort.entries.len(), 2);
        assert_eq!(cohort.parsed_count(), 0);
        for r in cohort.rejected() {
            match &r.verdict {
                Verdict::Rejected { span, .. } => {
                    // A span on empty input must stay inside the (empty)
                    // source, not point past it.
                    if let Some((start, end)) = span {
                        assert!(*start == 0 && *end == 0, "{}: span {span:?}", r.id);
                    }
                }
                other => panic!("{}: unexpected verdict {other:?}", r.id),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ids_preserve_directory_structure_and_order_is_sorted() {
        let dir = scratch_dir("order");
        write(&dir, "z_last.sql", "SELECT name FROM Student");
        write(&dir, "a_first.sql", "SELECT name FROM Student");
        write(&dir, "sub/middle.ra", "Student");
        let db = figure1_db();
        let cohort = ingest_dir(&dir, &db).unwrap();
        let ids: Vec<&str> = cohort.entries.iter().map(|e| e.id()).collect();
        assert_eq!(ids, vec!["a_first.sql", "sub/middle.ra", "z_last.sql"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
