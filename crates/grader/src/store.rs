//! The persistent verdict store: an on-disk, versioned, **append-only**
//! serialization of the cross-batch verdict cache.
//!
//! Fingerprints ([`ratest_ra::canonical::fingerprint`]) and grading-context
//! keys are platform-stable FNV-1a hashes, so a cache written by one process
//! (or one cohort shard) is meaningful to every other: a warm re-grade
//! replays all deterministic verdicts without a single counterexample
//! search, and `grade merge` can fuse the caches of independent shards.
//!
//! ## File format (version 2)
//!
//! ```text
//! ratest-verdict-cache v2
//! <context:016x> <fingerprint:016x> <checksum:016x> <payload>
//! ...
//! ```
//!
//! Version 2 extends the `wrong` payload with the verdict's (possibly empty)
//! list of repair suggestions; everything else is unchanged from v1. The
//! header bump makes the incompatibility explicit: a v1 file fails loudly
//! with a version error instead of silently skipping every record.
//!
//! One record per line. The payload is a [`ratest_storage::codec`] token
//! stream describing the verdict (including, for wrong submissions, the full
//! counterexample sub-instance with its original tuple identifiers), with
//! `\`, newline and carriage return escaped so a record is always exactly
//! one line. The checksum is the FNV-1a hash of the unescaped payload.
//!
//! Loading is **corruption tolerant**: a record that fails to parse, fails
//! its checksum, or decodes to garbage is skipped and reported in
//! [`LoadedCache::skipped`] — never a panic, and never fatal to the
//! surrounding records. Only a missing/foreign header is fatal (that is a
//! version or file-identity problem, not bit rot).
//!
//! Two verdict kinds are deliberately *not* persisted, mirroring the
//! in-memory cache policy: timeouts (load-dependent, caching one would make
//! a transient stall permanent) and rejections (they never enter the engine
//! cache — the frontend re-derives them from the submission source). The
//! stored [`Verdict::Wrong`] normalises its [`Timings`] to zero: wall-clock
//! breakdowns are provenance of one run, not part of the verdict.

use crate::verdict::Verdict;
use ratest_core::pipeline::{Algorithm, Timings};
use ratest_core::problem::{Counterexample, Witness};
use ratest_ra::classify::QueryClass;
use ratest_ra::eval::{Params, ResultSet};
use ratest_storage::codec::{
    decode_database, decode_selection, decode_value, encode_database, encode_selection,
    encode_value, Decoder, Encoder,
};
use ratest_storage::SubInstance;
use std::fmt;
use std::io;
use std::path::Path;

/// Magic first line of a verdict cache file; bump the version suffix on any
/// format change (golden tests pin the current schema).
pub const CACHE_HEADER: &str = "ratest-verdict-cache v2";

/// One persisted cache entry: the grading-context key, the submission's
/// canonical fingerprint, and the verdict.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Hash of everything besides the submission that the verdict depends on
    /// (reference query, hidden instance, pipeline options).
    pub context: u64,
    /// Canonical fingerprint of the submitted query.
    pub fingerprint: u64,
    /// The cached verdict.
    pub verdict: Verdict,
}

/// A record that failed to load, with its 1-based line number and reason.
#[derive(Debug, Clone)]
pub struct SkippedRecord {
    /// 1-based line number in the cache file.
    pub line: usize,
    /// Human-readable reason the record was skipped.
    pub reason: String,
}

/// The outcome of loading a cache file: the good records plus a report of
/// every skipped one.
#[derive(Debug, Default)]
pub struct LoadedCache {
    /// Successfully decoded entries, in file order.
    pub entries: Vec<CacheEntry>,
    /// Records that were skipped (corrupt line, checksum mismatch, ...).
    pub skipped: Vec<SkippedRecord>,
}

/// Fatal store errors. Corrupt *records* are not errors (they are skipped);
/// these are problems with the file as a whole or the data being written.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file exists but does not start with [`CACHE_HEADER`] — a
    /// different format version or not a verdict cache at all.
    Header {
        /// The first line actually found (truncated for display).
        found: String,
    },
    /// The verdict kind cannot be persisted (timeout / rejected).
    Unpersistable(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "cache file I/O error: {e}"),
            StoreError::Header { found } => {
                write!(f, "not a `{CACHE_HEADER}` file (first line: `{found}`)")
            }
            StoreError::Unpersistable(kind) => {
                write!(f, "`{kind}` verdicts are not persisted")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

use ratest_ra::canonical::fnv1a;

// ---------------------------------------------------------------------------
// Verdict payload codec
// ---------------------------------------------------------------------------

fn class_tag(c: QueryClass) -> &'static str {
    match c {
        QueryClass::SJ => "SJ",
        QueryClass::SPU => "SPU",
        QueryClass::PJ => "PJ",
        QueryClass::JU => "JU",
        QueryClass::JUStar => "JUStar",
        QueryClass::SPJU => "SPJU",
        QueryClass::SPJUDStar => "SPJUDStar",
        QueryClass::SPJUD => "SPJUD",
        QueryClass::Aggregate => "Aggregate",
    }
}

fn decode_class(tag: &str) -> Result<QueryClass, String> {
    Ok(match tag {
        "SJ" => QueryClass::SJ,
        "SPU" => QueryClass::SPU,
        "PJ" => QueryClass::PJ,
        "JU" => QueryClass::JU,
        "JUStar" => QueryClass::JUStar,
        "SPJU" => QueryClass::SPJU,
        "SPJUDStar" => QueryClass::SPJUDStar,
        "SPJUD" => QueryClass::SPJUD,
        "Aggregate" => QueryClass::Aggregate,
        other => return Err(format!("unknown query class `{other}`")),
    })
}

fn algorithm_tag(a: Algorithm) -> &'static str {
    match a {
        Algorithm::Auto => "Auto",
        Algorithm::Basic => "Basic",
        Algorithm::OptSigma => "OptSigma",
        Algorithm::PolytimeMonotone => "PolytimeMonotone",
        Algorithm::PolytimeSpjudStar => "PolytimeSpjudStar",
        Algorithm::AggBasic => "AggBasic",
        Algorithm::AggParam => "AggParam",
        Algorithm::AggOpt => "AggOpt",
    }
}

fn decode_algorithm(tag: &str) -> Result<Algorithm, String> {
    Ok(match tag {
        "Auto" => Algorithm::Auto,
        "Basic" => Algorithm::Basic,
        "OptSigma" => Algorithm::OptSigma,
        "PolytimeMonotone" => Algorithm::PolytimeMonotone,
        "PolytimeSpjudStar" => Algorithm::PolytimeSpjudStar,
        "AggBasic" => Algorithm::AggBasic,
        "AggParam" => Algorithm::AggParam,
        "AggOpt" => Algorithm::AggOpt,
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

fn encode_result_set(r: &ResultSet, e: &mut Encoder) {
    ratest_storage::codec::encode_schema(r.schema(), e);
    e.u(r.len() as u64);
    for row in r.rows() {
        e.u(row.len() as u64);
        for v in row {
            encode_value(v, e);
        }
    }
}

fn decode_result_set(d: &mut Decoder) -> Result<ResultSet, String> {
    let schema = ratest_storage::codec::decode_schema(d).map_err(|e| e.to_string())?;
    let nrows = d.usize().map_err(|e| e.to_string())?;
    let mut rows = Vec::with_capacity(nrows.min(65_536));
    for _ in 0..nrows {
        let nvals = d.usize().map_err(|e| e.to_string())?;
        let mut row = Vec::with_capacity(nvals.min(256));
        for _ in 0..nvals {
            row.push(decode_value(d).map_err(|e| e.to_string())?);
        }
        rows.push(row);
    }
    Ok(ResultSet::from_rows(schema, rows))
}

/// Parameters are a `HashMap`; encode sorted by name so the payload — and
/// with it the cache file — is byte-deterministic.
fn encode_params(p: &Params, e: &mut Encoder) {
    let mut entries: Vec<(&String, &ratest_storage::Value)> = p.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    e.u(entries.len() as u64);
    for (k, v) in entries {
        e.s(k);
        encode_value(v, e);
    }
}

fn decode_params(d: &mut Decoder) -> Result<Params, String> {
    let n = d.usize().map_err(|e| e.to_string())?;
    let mut p = Params::new();
    for _ in 0..n {
        let k = d.s().map_err(|e| e.to_string())?;
        let v = decode_value(d).map_err(|e| e.to_string())?;
        p.insert(k, v);
    }
    Ok(p)
}

fn encode_counterexample(cex: &Counterexample, e: &mut Encoder) {
    encode_selection(&cex.subinstance.selection, e);
    encode_database(&cex.subinstance.database, e);
    encode_result_set(&cex.q1_result, e);
    encode_result_set(&cex.q2_result, e);
    match &cex.witness {
        Some(w) => {
            e.u(1);
            e.u(w.tuple.len() as u64);
            for v in &w.tuple {
                encode_value(v, e);
            }
            e.u(w.from_q1 as u64);
            encode_selection(&w.selection, e);
        }
        None => {
            e.u(0);
        }
    }
    encode_params(&cex.parameters, e);
}

fn decode_counterexample(d: &mut Decoder) -> Result<Counterexample, String> {
    let selection = decode_selection(d).map_err(|e| e.to_string())?;
    let database = decode_database(d).map_err(|e| e.to_string())?;
    let q1_result = decode_result_set(d)?;
    let q2_result = decode_result_set(d)?;
    let witness = match d.u().map_err(|e| e.to_string())? {
        0 => None,
        _ => {
            let n = d.usize().map_err(|e| e.to_string())?;
            let mut tuple = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                tuple.push(decode_value(d).map_err(|e| e.to_string())?);
            }
            let from_q1 = d.u().map_err(|e| e.to_string())? != 0;
            let selection = decode_selection(d).map_err(|e| e.to_string())?;
            Some(Witness {
                tuple,
                from_q1,
                selection,
            })
        }
    };
    let parameters = decode_params(d)?;
    Ok(Counterexample {
        subinstance: SubInstance {
            selection,
            database,
        },
        q1_result,
        q2_result,
        witness,
        parameters,
    })
}

/// Encode a verdict to its canonical payload string.
///
/// Returns [`StoreError::Unpersistable`] for timeouts and rejections, which
/// are intentionally excluded from the persistent cache (see module docs).
/// (The wire-level [`crate::api`] codec, which has no persistence policy,
/// encodes those two kinds itself and reuses this stream for the rest.)
pub fn encode_verdict(v: &Verdict) -> Result<String, StoreError> {
    let mut e = Encoder::new();
    encode_verdict_into(v, &mut e)?;
    Ok(e.finish())
}

/// Append a persistable verdict to an existing encoder stream.
pub(crate) fn encode_verdict_into(v: &Verdict, e: &mut Encoder) -> Result<(), StoreError> {
    match v {
        Verdict::Correct => {
            e.tag("correct");
        }
        Verdict::Wrong {
            counterexample,
            class,
            algorithm,
            timings: _, // normalised to zero: run provenance, not verdict
            suggestions,
        } => {
            e.tag("wrong")
                .tag(class_tag(*class))
                .tag(algorithm_tag(*algorithm));
            encode_counterexample(counterexample, e);
            e.u(suggestions.len() as u64);
            for s in suggestions {
                ratest_repair::encode_suggestion(s, e);
            }
        }
        Verdict::Error { message } => {
            e.tag("error").s(message);
        }
        Verdict::Timeout { .. } => return Err(StoreError::Unpersistable("timeout")),
        Verdict::Rejected { .. } => return Err(StoreError::Unpersistable("rejected")),
    }
    Ok(())
}

/// Decode the body of a verdict whose tag was already consumed.
pub(crate) fn decode_verdict_tagged(tag: &str, d: &mut Decoder) -> Result<Verdict, String> {
    Ok(match tag {
        "correct" => Verdict::Correct,
        "wrong" => {
            let class = decode_class(d.tag().map_err(|e| e.to_string())?)?;
            let algorithm = decode_algorithm(d.tag().map_err(|e| e.to_string())?)?;
            let cex = decode_counterexample(d)?;
            let nsugg = d.usize().map_err(|e| e.to_string())?;
            let mut suggestions = Vec::with_capacity(nsugg.min(64));
            for _ in 0..nsugg {
                suggestions.push(ratest_repair::decode_suggestion(d).map_err(|e| e.to_string())?);
            }
            Verdict::Wrong {
                counterexample: Box::new(cex),
                class,
                algorithm,
                timings: Timings::default(),
                suggestions,
            }
        }
        "error" => Verdict::Error {
            message: d.s().map_err(|e| e.to_string())?,
        },
        other => return Err(format!("unknown verdict tag `{other}`")),
    })
}

/// Decode a verdict payload string.
pub fn decode_verdict(payload: &str) -> Result<Verdict, String> {
    let mut d = Decoder::new(payload);
    let tag = d.tag().map_err(|e| e.to_string())?;
    let verdict = decode_verdict_tagged(tag, &mut d)?;
    d.done().map_err(|e| e.to_string())?;
    Ok(verdict)
}

// ---------------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------------

fn escape(payload: &str) -> String {
    let mut out = String::with_capacity(payload.len());
    for c in payload.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(line: &str) -> Result<String, String> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad escape `\\{other}`")),
            None => return Err("trailing backslash".into()),
        }
    }
    Ok(out)
}

/// Render one record line (without trailing newline).
fn render_record(entry: &CacheEntry) -> Result<String, StoreError> {
    let payload = encode_verdict(&entry.verdict)?;
    Ok(format!(
        "{:016x} {:016x} {:016x} {}",
        entry.context,
        entry.fingerprint,
        fnv1a(payload.as_bytes()),
        escape(&payload)
    ))
}

fn parse_record(line: &str) -> Result<CacheEntry, String> {
    let mut parts = line.splitn(4, ' ');
    let context = parts
        .next()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or("bad context field")?;
    let fingerprint = parts
        .next()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or("bad fingerprint field")?;
    let checksum = parts
        .next()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or("bad checksum field")?;
    let payload = unescape(parts.next().ok_or("missing payload")?)?;
    if fnv1a(payload.as_bytes()) != checksum {
        return Err("checksum mismatch".into());
    }
    let verdict = decode_verdict(&payload)?;
    Ok(CacheEntry {
        context,
        fingerprint,
        verdict,
    })
}

// ---------------------------------------------------------------------------
// File operations
// ---------------------------------------------------------------------------

/// Load a verdict cache file. A missing file is an empty cache (the first
/// cold run starts from nothing); corrupt records are skipped and reported.
pub fn load(path: &Path) -> Result<LoadedCache, StoreError> {
    let contents = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadedCache::default()),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let mut lines = contents.lines().enumerate();
    match lines.next() {
        None => return Ok(LoadedCache::default()), // empty file: empty cache
        Some((_, header)) if header == CACHE_HEADER => {}
        Some((_, header)) => {
            let mut found = header.to_owned();
            found.truncate(64);
            return Err(StoreError::Header { found });
        }
    }
    let mut out = LoadedCache::default();
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok(entry) => out.entries.push(entry),
            Err(reason) => out.skipped.push(SkippedRecord {
                line: idx + 1,
                reason,
            }),
        }
    }
    Ok(out)
}

/// Append entries to a cache file, creating it (with its version header) if
/// absent. Entries are written sorted by `(context, fingerprint)` so the
/// bytes appended by one logical operation are deterministic.
///
/// This is the only write mode the grading path uses: existing records are
/// never rewritten, so a crash mid-append at worst truncates the final
/// record — exactly the corruption [`load`] tolerates.
pub fn append(path: &Path, entries: &[CacheEntry]) -> Result<(), StoreError> {
    use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
    let mut sorted: Vec<&CacheEntry> = entries.iter().collect();
    sorted.sort_by_key(|e| (e.context, e.fingerprint));
    let (needs_header, needs_newline) = match std::fs::metadata(path) {
        Ok(m) if m.len() == 0 => (true, false),
        Ok(m) => {
            // A crash mid-append can leave the file without its final
            // newline; gluing the next record onto that partial line would
            // corrupt *two* records. Start on a fresh line instead.
            let mut f = std::fs::File::open(path)?;
            f.seek(SeekFrom::Start(m.len() - 1))?;
            let mut last = [0u8; 1];
            f.read_exact(&mut last)?;
            (false, last[0] != b'\n')
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => (true, false),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let mut buf = String::new();
    if needs_header {
        buf.push_str(CACHE_HEADER);
        buf.push('\n');
    } else if needs_newline {
        buf.push('\n');
    }
    for entry in sorted {
        buf.push_str(&render_record(entry)?);
        buf.push('\n');
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(buf.as_bytes())?;
    Ok(())
}

/// Write a fresh cache file containing exactly `entries` (sorted, deduped by
/// key — first occurrence wins). Used by `grade merge` to fuse shard caches.
pub fn write_merged(path: &Path, entries: &[CacheEntry]) -> Result<(), StoreError> {
    let mut seen = std::collections::HashSet::new();
    let mut unique: Vec<&CacheEntry> = Vec::with_capacity(entries.len());
    for e in entries {
        if seen.insert((e.context, e.fingerprint)) {
            unique.push(e);
        }
    }
    unique.sort_by_key(|e| (e.context, e.fingerprint));
    let mut buf = String::from(CACHE_HEADER);
    buf.push('\n');
    for entry in unique {
        buf.push_str(&render_record(entry)?);
        buf.push('\n');
    }
    std::fs::write(path, buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Grader, GraderConfig};
    use crate::submission::Submission;
    use ratest_ra::testdata;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ratest-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.rvc")
    }

    /// Real verdicts from grading the running example.
    fn graded_entries() -> Vec<CacheEntry> {
        let db = testdata::figure1_db();
        let reference = testdata::example1_q1();
        let subs = vec![
            Submission::new("s0", "Ada", reference.clone()),
            Submission::new("s1", "Ben", testdata::example1_q2()),
        ];
        let grader = Grader::new(GraderConfig::default());
        grader.grade("toy", &reference, &db, &subs).unwrap();
        grader.cache_entries()
    }

    #[test]
    fn verdicts_roundtrip_through_the_payload_codec() {
        for entry in graded_entries() {
            let payload = encode_verdict(&entry.verdict).unwrap();
            let back = decode_verdict(&payload).unwrap();
            // Canonical: re-encoding the decoded verdict is byte-identical.
            assert_eq!(encode_verdict(&back).unwrap(), payload);
            assert_eq!(back.tag(), entry.verdict.tag());
            if let (Some(a), Some(b)) = (entry.verdict.counterexample(), back.counterexample()) {
                assert_eq!(a.size(), b.size());
                assert_eq!(a.q1_result, b.q1_result);
                assert_eq!(a.q2_result, b.q2_result);
                assert_eq!(a.subinstance.selection, b.subinstance.selection);
                assert_eq!(a.witness, b.witness);
            }
        }
    }

    #[test]
    fn cache_files_roundtrip_and_append_is_incremental() {
        let path = scratch("roundtrip");
        let entries = graded_entries();
        assert!(!entries.is_empty());
        append(&path, &entries).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.entries.len(), entries.len());
        assert!(loaded.skipped.is_empty());

        // Appending more entries keeps the earlier records untouched.
        let extra = CacheEntry {
            context: 7,
            fingerprint: 9,
            verdict: Verdict::Error {
                message: "multi\nline\\message".into(),
            },
        };
        append(&path, &[extra]).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.entries.len(), entries.len() + 1);
        assert!(loaded.skipped.is_empty());
        let last = loaded.entries.last().unwrap();
        match &last.verdict {
            Verdict::Error { message } => assert_eq!(message, "multi\nline\\message"),
            other => panic!("expected error verdict, got {}", other.tag()),
        }
    }

    #[test]
    fn appending_after_a_crash_truncated_write_starts_a_fresh_line() {
        let path = scratch("truncated");
        let entries = graded_entries();
        append(&path, &entries).unwrap();
        // Simulate a crash mid-append: chop the final record's tail,
        // including its newline.
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.truncate(contents.len() - 10);
        std::fs::write(&path, &contents).unwrap();

        let extra = CacheEntry {
            context: 42,
            fingerprint: 42,
            verdict: Verdict::Correct,
        };
        append(&path, std::slice::from_ref(&extra)).unwrap();
        let loaded = load(&path).unwrap();
        // Only the deliberately truncated record is lost; the fresh append
        // must not be glued onto the partial line.
        assert_eq!(loaded.skipped.len(), 1, "{:?}", loaded.skipped);
        assert_eq!(loaded.entries.len(), entries.len());
        assert!(loaded
            .entries
            .iter()
            .any(|e| e.context == 42 && e.fingerprint == 42));
    }

    #[test]
    fn a_missing_file_is_an_empty_cache() {
        let loaded = load(Path::new("/nonexistent/definitely/not/here.rvc")).unwrap();
        assert!(loaded.entries.is_empty());
        assert!(loaded.skipped.is_empty());
    }

    #[test]
    fn corrupt_records_are_skipped_and_reported_never_fatal() {
        let path = scratch("corrupt");
        let entries = graded_entries();
        append(&path, &entries).unwrap();

        // Garble the file: flip a checksum, add a truncated line and plain
        // garbage; the remaining records must still load.
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("0000000000000001 0000000000000002 deadbeefdeadbeef correct\n");
        contents.push_str("not a record at all\n");
        contents.push_str("0123 0456\n");
        std::fs::write(&path, &contents).unwrap();

        let loaded = load(&path).unwrap();
        assert_eq!(loaded.entries.len(), entries.len());
        assert_eq!(loaded.skipped.len(), 3, "{:?}", loaded.skipped);
        assert!(loaded.skipped[0].reason.contains("checksum"));
        // Line numbers are 1-based and point at the corrupt lines.
        assert_eq!(loaded.skipped[0].line, entries.len() + 2);
    }

    #[test]
    fn a_foreign_header_is_a_version_error() {
        let path = scratch("header");
        std::fs::write(&path, "ratest-verdict-cache v999\n").unwrap();
        match load(&path) {
            Err(StoreError::Header { found }) => assert!(found.contains("v999")),
            other => panic!("expected header error, got {other:?}"),
        }
    }

    #[test]
    fn timeouts_and_rejections_are_refused() {
        let timeout = Verdict::Timeout {
            budget: std::time::Duration::from_secs(1),
        };
        assert!(matches!(
            encode_verdict(&timeout),
            Err(StoreError::Unpersistable("timeout"))
        ));
        let rejected = Verdict::Rejected {
            message: "m".into(),
            phase: "parse".into(),
            kind: "parse".into(),
            span: None,
        };
        assert!(matches!(
            encode_verdict(&rejected),
            Err(StoreError::Unpersistable("rejected"))
        ));
    }

    #[test]
    fn write_merged_dedups_by_key_first_wins() {
        let path = scratch("merged");
        let a = CacheEntry {
            context: 1,
            fingerprint: 2,
            verdict: Verdict::Correct,
        };
        let b = CacheEntry {
            context: 1,
            fingerprint: 2,
            verdict: Verdict::Error {
                message: "conflicting duplicate".into(),
            },
        };
        let c = CacheEntry {
            context: 1,
            fingerprint: 3,
            verdict: Verdict::Correct,
        };
        write_merged(&path, &[a, b, c]).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[0].verdict.tag(), "correct");
    }
}
