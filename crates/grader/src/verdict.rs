//! Per-submission grading verdicts.

use ratest_core::pipeline::{Algorithm, Timings};
use ratest_core::problem::Counterexample;
use ratest_ra::classify::QueryClass;
use ratest_repair::RepairSuggestion;
use std::time::Duration;

/// The outcome of grading one (distinct) submission.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The submission agrees with the reference on the hidden instance.
    Correct,
    /// The submission is wrong: a small counterexample distinguishes it from
    /// the reference.
    Wrong {
        /// The distinguishing sub-instance and both results on it.
        counterexample: Box<Counterexample>,
        /// The query class the pair was classified into.
        class: QueryClass,
        /// Which algorithm produced the counterexample.
        algorithm: Algorithm,
        /// Per-phase timing breakdown of the explanation run.
        timings: Timings,
        /// Ranked repair suggestions (empty unless repair was requested
        /// and confirmed at least one fix).
        suggestions: Vec<RepairSuggestion>,
    },
    /// The submission could not be graded (type error, unsupported shape,
    /// solver failure, ...). The message is surfaced to the student.
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Grading exceeded the per-job timeout; the submission needs manual
    /// attention (or a bigger budget).
    Timeout {
        /// The configured budget that was exceeded.
        budget: Duration,
    },
    /// The submission never reached the grader: the SQL/RA frontend rejected
    /// it with a diagnostic. Distinct from [`Verdict::Wrong`] (a rejected
    /// query has no semantics to compare) and from [`Verdict::Error`] (the
    /// diagnostic is a first-class, spanned frontend error, not a pipeline
    /// failure).
    Rejected {
        /// Human-readable diagnostic (includes "did you mean" hints).
        message: String,
        /// Frontend phase that rejected it: `lexer`, `parse` or `resolve`.
        phase: String,
        /// Machine-readable diagnostic kind (e.g. `unknown_column`).
        kind: String,
        /// Byte span `[start, end)` of the offending source text, when known.
        span: Option<(usize, usize)>,
    },
}

impl Verdict {
    /// Short machine-readable tag (used in reports and JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Correct => "correct",
            Verdict::Wrong { .. } => "wrong",
            Verdict::Error { .. } => "error",
            Verdict::Timeout { .. } => "timeout",
            Verdict::Rejected { .. } => "rejected",
        }
    }

    /// The counterexample, when the verdict is [`Verdict::Wrong`].
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Wrong { counterexample, .. } => Some(counterexample),
            _ => None,
        }
    }

    /// Repair suggestions, when the verdict is [`Verdict::Wrong`] and
    /// carries any.
    pub fn suggestions(&self) -> &[RepairSuggestion] {
        match self {
            Verdict::Wrong { suggestions, .. } => suggestions,
            _ => &[],
        }
    }

    /// A copy with any repair suggestions stripped: responses for callers
    /// that did not opt into repair stay byte-stable even when the cached
    /// verdict has been enriched.
    pub fn without_suggestions(&self) -> Verdict {
        match self {
            Verdict::Wrong {
                counterexample,
                class,
                algorithm,
                timings,
                ..
            } => Verdict::Wrong {
                counterexample: counterexample.clone(),
                class: *class,
                algorithm: *algorithm,
                timings: *timings,
                suggestions: Vec::new(),
            },
            other => other.clone(),
        }
    }
}

/// A submission joined with its verdict and grading provenance.
#[derive(Debug, Clone)]
pub struct GradedSubmission {
    /// The submission's identifier.
    pub submission_id: String,
    /// The submission's author.
    pub author: String,
    /// Canonical fingerprint of the submitted query.
    pub fingerprint: u64,
    /// The verdict (shared by every member of the fingerprint group).
    pub verdict: Verdict,
    /// Whether the verdict came from the cross-batch verdict cache rather
    /// than a pipeline run in this batch.
    pub from_cache: bool,
    /// Wall-clock time of the pipeline run that produced this verdict
    /// (zero for cache hits).
    pub grading_time: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable() {
        assert_eq!(Verdict::Correct.tag(), "correct");
        assert_eq!(
            Verdict::Error {
                message: "x".into()
            }
            .tag(),
            "error"
        );
        assert_eq!(
            Verdict::Timeout {
                budget: Duration::from_secs(1)
            }
            .tag(),
            "timeout"
        );
        assert_eq!(
            Verdict::Rejected {
                message: "unknown column `nme`".into(),
                phase: "resolve".into(),
                kind: "unknown_column".into(),
                span: Some((7, 10)),
            }
            .tag(),
            "rejected"
        );
    }

    #[test]
    fn verdicts_are_cloneable_and_thread_safe() {
        fn assert_shareable<T: Clone + Send + Sync>() {}
        assert_shareable::<Verdict>();
        assert_shareable::<GradedSubmission>();
    }
}
