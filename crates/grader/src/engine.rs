//! The batch grading engine, rebuilt on the session API: one warm
//! [`Session`] per grading context carries the prepared reference,
//! fingerprint dedup + the cross-batch verdict cache answer repeats, and a
//! bounded worker pool enforces per-job [`Budget`]s (deadline + cooperative
//! cancellation — a timed-out job is asked to stop, not just abandoned, and
//! the deadline reaches *into* evaluator row loops via the budget hook).

use crate::api::{ExplainRequest, ExplainResponse};
use crate::ingest::{IngestEntry, IngestedCohort};
use crate::report::{BatchReport, BatchStats};
use crate::submission::{group_by_fingerprint, Submission};
use crate::verdict::{GradedSubmission, Verdict};
use ratest_core::pipeline::RatestOptions;
use ratest_core::session::{Budget, ReferenceHandle, Session};
use ratest_core::RatestError;
use ratest_ra::ast::Query;
use ratest_repair::RepairOptions;
use ratest_storage::Database;
use ratest_telemetry::{MetricsHandle, MetricsRegistry, MetricsSnapshot};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poisoning. A panicking worker already
/// surfaces its own failure as a [`Verdict::Error`] (via `catch_unwind` in
/// `grade_one`); the cache/session maps it touched are plain inserts that
/// are either fully applied or not at all, so the data behind a poisoned
/// lock is still consistent. Propagating the poison instead would let one
/// failed request take down every subsequent one — fatal for a daemon.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of the grading engine.
#[derive(Debug, Clone)]
pub struct GraderConfig {
    /// Number of worker threads grading distinct submissions concurrently.
    /// `1` reproduces the sequential loop (the benchmark baseline).
    pub workers: usize,
    /// Wall-clock budget per distinct submission; [`Duration::ZERO`]
    /// disables the timeout (jobs then run inline on the worker).
    pub per_job_timeout: Duration,
    /// Pipeline options forwarded to every explanation run.
    pub options: RatestOptions,
    /// When set, every [`Verdict::Wrong`] is enriched with ranked repair
    /// suggestions (see [`ratest_repair`]). `None` keeps grading
    /// suggestion-free; per-request opt-in is available through
    /// [`Grader::respond_prepared_with`].
    pub repair: Option<RepairOptions>,
    /// Maximum number of warm per-context sessions held at once; `None` is
    /// unbounded (the batch default). When the cap is exceeded the
    /// least-recently-used session is evicted (`grader.session_evictions`
    /// counts them, `grader.warm_sessions` tracks the real current size).
    /// A [`GradeContext`] handle whose session was evicted answers
    /// [`GraderError::UnknownContext`] — re-prepare it to warm it again.
    pub warm_cap: Option<usize>,
}

impl Default for GraderConfig {
    fn default() -> Self {
        GraderConfig {
            workers: 4,
            per_job_timeout: Duration::from_secs(30),
            options: RatestOptions::default(),
            repair: None,
            warm_cap: None,
        }
    }
}

/// Fatal engine errors. Per-submission failures are *not* errors — they
/// surface as [`Verdict::Error`] so one bad submission cannot sink a batch.
#[derive(Debug)]
pub enum GraderError {
    /// The reference query itself failed to evaluate or annotate; nothing
    /// can be graded against it.
    Reference(RatestError),
    /// A [`GradeContext`] handle from a different engine (or a bug) was
    /// presented to [`Grader::respond_prepared`].
    UnknownContext,
}

impl std::fmt::Display for GraderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraderError::Reference(e) => write!(f, "reference query is not gradable: {e}"),
            GraderError::UnknownContext => {
                write!(f, "unknown grading context (prepare it first)")
            }
        }
    }
}

/// A handle to a warm grading context — the `(reference, hidden instance,
/// options)` identity hash. Computing it walks the whole database, so
/// request-per-call servers obtain it once via [`Grader::prepare_context`]
/// and answer every subsequent request through
/// [`Grader::respond_prepared`] without re-hashing the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GradeContext(u64);

impl GradeContext {
    /// The raw context key — the same value persisted in
    /// [`crate::store::CacheEntry::context`], so servers can filter a
    /// loaded store down to the entries that belong to this context.
    pub fn key(&self) -> u64 {
        self.0
    }
}

impl std::error::Error for GraderError {}

/// The batch grading engine. One instance carries a fingerprint → verdict
/// cache *and* a warm [`Session`] per grading context across batches, so
/// regrading a class after a deadline extension only pays for the new
/// distinct submissions — and never re-prepares a reference it has already
/// seen.
#[derive(Debug)]
pub struct Grader {
    config: GraderConfig,
    /// Keyed by `(grading context, submission fingerprint)` — the context
    /// covers the reference query, the hidden instance and the pipeline
    /// options, so one engine can serve multiple assignments without
    /// leaking verdicts between them.
    cache: Mutex<HashMap<(u64, u64), Verdict>>,
    /// Warm per-context sessions (context key → prepared session, with an
    /// access stamp for LRU eviction under `config.warm_cap`). This is what
    /// makes a served re-grade — and the second batch of a long-lived
    /// daemon — skip reference preparation entirely.
    sessions: Mutex<SessionLru>,
    /// Counterexample searches currently running, keyed like the cache.
    /// Concurrent requests for the same key single-flight: one leader runs
    /// the search, everyone else waits on the [`Flight`] and reuses the
    /// verdict — so a duplicate flood costs exactly one search and the
    /// cache-hit/miss counters stay deterministic under concurrency.
    inflight: Mutex<HashMap<(u64, u64), Arc<Flight>>>,
    /// One registry for the whole engine: grading-layer counters
    /// (`grader.searches`, `grader.cache_hits`, …) land next to the
    /// pipeline/solver/evaluator counters because the same registry is wired
    /// into every session via `config.options.metrics`.
    metrics: Arc<MetricsRegistry>,
}

/// The warm-session map with clock-stamped LRU bookkeeping. Eviction is an
/// O(n) min-stamp scan — n is bounded by `warm_cap`, which is small (it
/// exists precisely because sessions are big).
#[derive(Debug, Default)]
struct SessionLru {
    map: HashMap<u64, (Arc<GradingSession>, u64)>,
    clock: u64,
}

impl SessionLru {
    fn len(&self) -> usize {
        self.map.len()
    }

    /// Look up a context and mark it most-recently-used.
    fn touch(&mut self, key: u64) -> Option<Arc<GradingSession>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&key).map(|slot| {
            slot.1 = clock;
            slot.0.clone()
        })
    }

    /// Insert (first writer wins) and mark most-recently-used.
    fn insert(&mut self, key: u64, warm: Arc<GradingSession>) -> Arc<GradingSession> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self.map.entry(key).or_insert((warm, clock));
        slot.1 = clock;
        slot.0.clone()
    }

    /// Evict least-recently-used entries until at most `cap` remain;
    /// returns how many were evicted. The entry just touched carries the
    /// newest stamp, so it is never the victim.
    fn evict_over(&mut self, cap: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() > cap.max(1) {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&k, _)| k)
            else {
                break;
            };
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// One in-flight counterexample search: the leader publishes the verdict
/// into `done` and notifies; followers wait instead of duplicating the
/// search.
#[derive(Debug, Default)]
struct Flight {
    done: Mutex<Option<Verdict>>,
    cv: Condvar,
}

/// What [`Grader::claim_flight`] found for a cache-missed key.
enum Claim {
    /// A racing leader finished in the meantime: the verdict is cached now.
    Cached(Verdict),
    /// This request runs the search and publishes the result.
    Leader(Arc<Flight>),
    /// Another request is already searching this key; wait for it.
    Follower(Arc<Flight>),
}

impl Default for Grader {
    fn default() -> Self {
        Grader::new(GraderConfig::default())
    }
}

/// A prepared session for one grading context.
#[derive(Debug)]
struct GradingSession {
    session: Session,
    reference: ReferenceHandle,
}

/// One unit of work: a distinct fingerprint group to explain.
struct Job {
    fingerprint: u64,
    query: Arc<Query>,
}

impl Grader {
    /// Create an engine with the given configuration. If the configuration
    /// does not already carry a metrics registry, the engine creates one and
    /// wires it into the pipeline options, so evaluator, provenance and
    /// solver counters from every grading session accumulate alongside the
    /// engine's own cache/search counters.
    pub fn new(mut config: GraderConfig) -> Grader {
        let metrics = match config.options.metrics.registry() {
            Some(registry) => registry.clone(),
            None => {
                let registry = Arc::new(MetricsRegistry::new());
                config.options.metrics = MetricsHandle::new(registry.clone());
                registry
            }
        };
        Grader {
            config,
            cache: Mutex::new(HashMap::new()),
            sessions: Mutex::new(SessionLru::default()),
            inflight: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    /// The engine's metrics registry (shared with every grading session).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Snapshot the engine's registry — grading counters plus everything the
    /// underlying pipeline recorded.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The engine configuration.
    pub fn config(&self) -> &GraderConfig {
        &self.config
    }

    /// Number of fingerprints in the cross-batch verdict cache.
    pub fn cached_verdicts(&self) -> usize {
        lock(&self.cache).len()
    }

    /// Seed the in-memory verdict cache from a persistent store (see
    /// [`crate::store`]). Entries already present in memory win — the live
    /// engine is never downgraded by stale disk state. Returns the number of
    /// entries actually inserted.
    pub fn preload_cache(
        &self,
        entries: impl IntoIterator<Item = crate::store::CacheEntry>,
    ) -> usize {
        let mut cache = lock(&self.cache);
        let mut inserted = 0;
        for e in entries {
            // Timeouts are never cached in memory; refuse them from disk
            // too, whatever produced the file.
            if matches!(e.verdict, Verdict::Timeout { .. }) {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(slot) =
                cache.entry((e.context, e.fingerprint))
            {
                slot.insert(e.verdict);
                inserted += 1;
            }
        }
        inserted
    }

    /// Snapshot the cross-batch verdict cache as persistable entries, sorted
    /// by `(context, fingerprint)` so the snapshot is deterministic.
    pub fn cache_entries(&self) -> Vec<crate::store::CacheEntry> {
        let cache = lock(&self.cache);
        let mut out: Vec<crate::store::CacheEntry> = cache
            .iter()
            .map(
                |(&(context, fingerprint), verdict)| crate::store::CacheEntry {
                    context,
                    fingerprint,
                    verdict: verdict.clone(),
                },
            )
            .collect();
        out.sort_by_key(|e| (e.context, e.fingerprint));
        out
    }

    /// Hash of everything (besides the submission) a verdict depends on:
    /// the reference query's canonical form, the hidden instance's full
    /// content, and the pipeline options. Batches with different contexts
    /// never share cache entries.
    fn context_key(&self, reference: &Query, db: &Database) -> u64 {
        use ratest_ra::canonical::canonical_form;
        use std::fmt::Write as _;
        let mut desc = canonical_form(reference);
        let _ = write!(desc, "|db:{}", db.name());
        for rel in db.relations() {
            let _ = write!(desc, "|rel:{}:{}", rel.name(), rel.schema());
            for t in rel.iter() {
                let _ = write!(desc, "|{:?}:{:?}", t.id, t.values);
            }
        }
        let _ = write!(
            desc,
            "|opts:{:?}:{:?}:{}",
            self.config.options.algorithm,
            self.config.options.strategy,
            self.config.options.selection_pushdown
        );
        let mut params: Vec<_> = self.config.options.parameters.iter().collect();
        params.sort_by(|a, b| a.0.cmp(b.0));
        for (k, v) in params {
            let _ = write!(desc, "|param:{k}={v:?}");
        }
        // The same platform-stable hash as the submission fingerprints.
        ratest_ra::canonical::fnv1a(desc.as_bytes())
    }

    /// Grade a batch of submissions against one reference query on a hidden
    /// test instance.
    pub fn grade(
        &self,
        label: &str,
        reference: &Query,
        db: &Database,
        submissions: &[Submission],
    ) -> Result<BatchReport, GraderError> {
        let wall_start = Instant::now();

        // Evaluate + annotate the reference once per *context* (not per
        // batch): a warm engine reuses the prepared session.
        let (context, warm) = self.session_for(reference, db)?;

        // Dedup: each distinct canonical fingerprint is explained once.
        let groups = group_by_fingerprint(submissions);
        let mut verdicts: HashMap<u64, (Verdict, Duration, bool)> = HashMap::new();
        let mut jobs: VecDeque<Job> = VecDeque::new();
        {
            let cache = lock(&self.cache);
            for g in &groups {
                match cache.get(&(context, g.fingerprint)) {
                    Some(v) => {
                        verdicts.insert(g.fingerprint, (v.clone(), Duration::ZERO, true));
                    }
                    None => jobs.push_back(Job {
                        fingerprint: g.fingerprint,
                        query: g.query.clone(),
                    }),
                }
            }
        }
        let cache_hits = verdicts.len();
        let pipeline_runs = jobs.len();

        // Suggestions are a *monotone enrichment* of a Wrong verdict, not
        // part of the cache key: a suggestion-less hit is upgraded in place
        // when repair is requested, and an enriched hit is stripped from the
        // report (never from the cache) when it is not — so the cache always
        // keeps the richest form it has seen.
        match &self.config.repair {
            Some(repair) => {
                let events = warm.session.options().events.clone();
                let mut upgraded: Vec<(u64, Verdict)> = Vec::new();
                for g in &groups {
                    if let Some((v, _, true)) = verdicts.get_mut(&g.fingerprint) {
                        if enrich_with_repairs(&warm, &g.query, v, repair, &events) {
                            upgraded.push((g.fingerprint, v.clone()));
                        }
                    }
                }
                if !upgraded.is_empty() {
                    let mut cache = lock(&self.cache);
                    for (fp, v) in upgraded {
                        cache.insert((context, fp), v);
                    }
                }
            }
            None => {
                for (v, _, _) in verdicts.values_mut() {
                    if !v.suggestions().is_empty() {
                        *v = v.without_suggestions();
                    }
                }
            }
        }

        self.metrics
            .counter_add("grader.cache_hits", cache_hits as u64);
        self.metrics
            .counter_add("grader.cache_misses", pipeline_runs as u64);
        self.metrics.counter_add(
            "grader.dedup_hits",
            (submissions.len() - groups.len()) as u64,
        );
        // A real occupancy gauge, not a high-water mark: it is set to the
        // queue length here and decremented as workers pop jobs, so a
        // drained batch reads 0 (pinned by the conformance suite).
        self.metrics
            .gauge_set("grader.queue_depth", pipeline_runs as i64);

        // Grade the distinct jobs on a bounded worker pool.
        self.metrics
            .counter_add("grader.searches", pipeline_runs as u64);
        let fresh = run_jobs(jobs, warm.clone(), &self.config, &self.metrics);
        {
            let mut cache = lock(&self.cache);
            for (fp, (v, _)) in &fresh {
                // Timeout verdicts are load-dependent: caching them would
                // make a transient stall permanent and defeat regrading with
                // a larger budget. Correct/Wrong/Error are deterministic.
                if !matches!(v, Verdict::Timeout { .. }) {
                    cache.insert((context, *fp), v.clone());
                }
            }
        }
        for (fp, (v, d)) in fresh {
            verdicts.insert(fp, (v, d, false));
        }

        // Join verdicts back onto every submission, in submission order.
        let mut graded: Vec<GradedSubmission> = Vec::with_capacity(submissions.len());
        let mut by_index: Vec<Option<GradedSubmission>> = vec![None; submissions.len()];
        for g in &groups {
            let (verdict, duration, from_cache) =
                verdicts.get(&g.fingerprint).cloned().unwrap_or((
                    Verdict::Error {
                        message: "internal: no verdict recorded for fingerprint group".into(),
                    },
                    Duration::ZERO,
                    false,
                ));
            for &i in &g.members {
                by_index[i] = Some(GradedSubmission {
                    submission_id: submissions[i].id.clone(),
                    author: submissions[i].author.clone(),
                    fingerprint: g.fingerprint,
                    verdict: verdict.clone(),
                    from_cache,
                    grading_time: duration,
                });
            }
        }
        for slot in by_index {
            graded.push(slot.expect("every submission belongs to a group"));
        }

        let stats = BatchStats::collect(
            &graded,
            groups.len(),
            cache_hits,
            pipeline_runs,
            self.config.workers,
            wall_start.elapsed(),
        );
        Ok(BatchReport {
            label: label.to_owned(),
            // The ROADMAP `aggprov` gap, surfaced instead of silent: for
            // aggregate references the prepared annotation is `None` and
            // every pair falls back to the unshared pipeline.
            shared_annotation: warm.shared_annotation(),
            graded,
            stats,
        })
    }

    /// Get-or-create the warm session for a `(reference, db, options)`
    /// context.
    fn session_for(
        &self,
        reference: &Query,
        db: &Database,
    ) -> Result<(u64, Arc<GradingSession>), GraderError> {
        let context = self.context_key(reference, db);
        if let Some(warm) = lock(&self.sessions).touch(context) {
            return Ok((context, warm));
        }
        // Built outside the lock: preparation evaluates + annotates the
        // reference, which can be slow, and a second thread racing to the
        // same context would only do duplicate work, not wrong work.
        let session = Session::builder(db.clone())
            .options(self.config.options.clone())
            .build();
        let handle = session.prepare(reference).map_err(GraderError::Reference)?;
        let warm = Arc::new(GradingSession {
            session,
            reference: handle,
        });
        let warm = {
            let mut sessions = lock(&self.sessions);
            let warm = sessions.insert(context, warm);
            if let Some(cap) = self.config.warm_cap {
                let evicted = sessions.evict_over(cap);
                if evicted > 0 {
                    self.metrics
                        .counter_add("grader.session_evictions", evicted);
                }
            }
            // Set on insert *and* after eviction: the gauge is the real
            // current occupancy, not a high-water mark.
            self.metrics
                .gauge_set("grader.warm_sessions", sessions.len() as i64);
            warm
        };
        Ok((context, warm))
    }

    /// Whether the reference's provenance annotation is shared across the
    /// context's workers (`false` for aggregate references — the `aggprov`
    /// gap). Prepares the context's warm session if needed.
    pub fn shared_annotation(&self, reference: &Query, db: &Database) -> Result<bool, GraderError> {
        let (_, warm) = self.session_for(reference, db)?;
        Ok(warm.shared_annotation())
    }

    /// [`Grader::shared_annotation`] for an already-prepared context — no
    /// instance re-hash.
    pub fn shared_annotation_for(&self, context: GradeContext) -> Result<bool, GraderError> {
        lock(&self.sessions)
            .touch(context.0)
            .map(|warm| warm.shared_annotation())
            .ok_or(GraderError::UnknownContext)
    }

    /// Number of warm per-context sessions currently held.
    pub fn warm_sessions(&self) -> usize {
        lock(&self.sessions).len()
    }

    /// Counterexample searches this engine has run (cache hits excluded) —
    /// a registry read of the `grader.searches` counter.
    pub fn searches_total(&self) -> u64 {
        self.metrics.counter("grader.searches")
    }

    /// Warm up (or look up) the grading context for a `(reference, db)`
    /// pair and return its handle. The expensive part — hashing the full
    /// instance and preparing the reference — happens at most once per
    /// context; servers call this at prepare time and then use
    /// [`Grader::respond_prepared`] per request.
    pub fn prepare_context(
        &self,
        reference: &Query,
        db: &Database,
    ) -> Result<GradeContext, GraderError> {
        let (context, _) = self.session_for(reference, db)?;
        Ok(GradeContext(context))
    }

    /// Answer one [`ExplainRequest`] against a reference — the `grade
    /// serve` request path. Warm state short-circuits twice: the context's
    /// session skips reference preparation, and the verdict cache answers
    /// repeated fingerprints with zero counterexample searches.
    pub fn respond(
        &self,
        reference: &Query,
        db: &Database,
        request: &ExplainRequest,
    ) -> Result<ExplainResponse, GraderError> {
        let (context, warm) = self.session_for(reference, db)?;
        self.respond_impl(
            context,
            &warm,
            request,
            warm.session.options().events.clone(),
            self.config.repair.as_ref(),
        )
    }

    /// Answer one request against an already-prepared [`GradeContext`],
    /// streaming progress into a per-request event sink. This is the
    /// daemon's hot path: no instance re-hashing, no reference
    /// re-preparation — and because the sink belongs to *this* request, a
    /// stale thread from an earlier timed-out job keeps emitting into its
    /// own retired sink instead of polluting this request's stream.
    pub fn respond_prepared(
        &self,
        context: GradeContext,
        request: &ExplainRequest,
        events: ratest_core::session::EventHandle,
    ) -> Result<ExplainResponse, GraderError> {
        self.respond_prepared_with(context, request, events, self.config.repair.as_ref())
    }

    /// [`Grader::respond_prepared`] with a per-request repair override —
    /// the daemon's `repair` opt-in. `Some` enriches a Wrong verdict with
    /// ranked suggestions (upgrading a suggestion-less cache hit in place);
    /// `None` answers suggestion-free even when the cached verdict has been
    /// enriched by an earlier opted-in request.
    pub fn respond_prepared_with(
        &self,
        context: GradeContext,
        request: &ExplainRequest,
        events: ratest_core::session::EventHandle,
        repair: Option<&RepairOptions>,
    ) -> Result<ExplainResponse, GraderError> {
        let warm = lock(&self.sessions)
            .touch(context.0)
            .ok_or(GraderError::UnknownContext)?;
        self.respond_impl(context.0, &warm, request, events, repair)
    }

    fn respond_impl(
        &self,
        context: u64,
        warm: &Arc<GradingSession>,
        request: &ExplainRequest,
        events: ratest_core::session::EventHandle,
        repair: Option<&RepairOptions>,
    ) -> Result<ExplainResponse, GraderError> {
        let fingerprint = request.fingerprint();
        let key = (context, fingerprint);
        // Bind the lookup before branching: an `if let` on the guard itself
        // would keep the cache locked across `respond_cached`, which re-locks
        // it to upgrade a repair-enriched verdict.
        let cached = lock(&self.cache).get(&key).cloned();
        if let Some(verdict) = cached {
            self.metrics.counter_inc("grader.cache_hits");
            return Ok(self.respond_cached(key, warm, request, verdict, events, repair));
        }
        match self.claim_flight(key) {
            Claim::Cached(verdict) => {
                self.metrics.counter_inc("grader.cache_hits");
                Ok(self.respond_cached(key, warm, request, verdict, events, repair))
            }
            Claim::Leader(flight) => {
                self.metrics.counter_inc("grader.cache_misses");
                self.metrics.counter_inc("grader.searches");
                // The leader must publish even if grading panics — a
                // propagated panic here would leave followers blocked on a
                // flight that never completes (and poison the locks).
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    grade_one_with_timeout(
                        warm.clone(),
                        request.query.clone(),
                        self.config.per_job_timeout,
                        events,
                        repair.cloned(),
                    )
                }));
                let verdict = outcome.unwrap_or_else(|panic| Verdict::Error {
                    message: format!("grading panicked: {}", panic_message(&panic)),
                });
                self.finish_flight(key, &flight, verdict.clone());
                Ok(ExplainResponse {
                    id: request.id.clone(),
                    author: request.author.clone(),
                    fingerprint,
                    verdict,
                    from_cache: false,
                })
            }
            Claim::Follower(flight) => {
                // A duplicate fingerprint already being graded: wait for the
                // leader's verdict instead of searching again. Counted as a
                // cache hit — by the time this request is answered, the
                // verdict *is* cached state.
                self.metrics.counter_inc("grader.cache_hits");
                let verdict = self.await_flight(&flight);
                Ok(self.respond_cached(key, warm, request, verdict, events, repair))
            }
        }
    }

    /// Build the response for a verdict that came out of warm state (the
    /// cache or a completed in-flight search), applying the per-request
    /// repair opt-in: `Some` enriches a Wrong verdict in place (and
    /// upgrades the cached copy), `None` strips suggestions added by an
    /// earlier opted-in request.
    fn respond_cached(
        &self,
        key: (u64, u64),
        warm: &Arc<GradingSession>,
        request: &ExplainRequest,
        mut verdict: Verdict,
        events: ratest_core::session::EventHandle,
        repair: Option<&RepairOptions>,
    ) -> ExplainResponse {
        match repair {
            Some(opts) => {
                if enrich_with_repairs(warm, &request.query, &mut verdict, opts, &events) {
                    lock(&self.cache).insert(key, verdict.clone());
                }
            }
            None => {
                if !verdict.suggestions().is_empty() {
                    verdict = verdict.without_suggestions();
                }
            }
        }
        ExplainResponse {
            id: request.id.clone(),
            author: request.author.clone(),
            fingerprint: key.1,
            verdict,
            from_cache: true,
        }
    }

    /// Claim the in-flight slot for a cache key. Lock order here and in
    /// [`Grader::finish_flight`] is inflight → cache, so a leader
    /// publishing while a follower claims cannot deadlock; re-checking the
    /// cache under the inflight lock closes the race where the leader
    /// finished between our fast-path miss and this claim.
    fn claim_flight(&self, key: (u64, u64)) -> Claim {
        let mut inflight = lock(&self.inflight);
        if let Some(verdict) = lock(&self.cache).get(&key).cloned() {
            return Claim::Cached(verdict);
        }
        if let Some(flight) = inflight.get(&key) {
            return Claim::Follower(flight.clone());
        }
        let flight = Arc::new(Flight::default());
        inflight.insert(key, flight.clone());
        Claim::Leader(flight)
    }

    /// Publish the leader's verdict: cache it (timeouts stay uncached so a
    /// retry can search again), retire the flight so new requests go back
    /// through the cache, then wake every follower.
    fn finish_flight(&self, key: (u64, u64), flight: &Flight, verdict: Verdict) {
        {
            let mut inflight = lock(&self.inflight);
            if !matches!(verdict, Verdict::Timeout { .. }) {
                lock(&self.cache).insert(key, verdict.clone());
            }
            inflight.remove(&key);
        }
        *lock(&flight.done) = Some(verdict);
        flight.cv.notify_all();
    }

    /// Block until the flight's leader publishes. Bounded: a leader that
    /// dies without publishing (it can't under normal operation — see
    /// `catch_unwind` in `respond_impl`) is treated as a timeout rather
    /// than hanging this request forever.
    fn await_flight(&self, flight: &Flight) -> Verdict {
        let wait_cap = if self.config.per_job_timeout.is_zero() {
            Duration::from_secs(600)
        } else {
            self.config.per_job_timeout * 2 + Duration::from_secs(1)
        };
        let deadline = Instant::now() + wait_cap;
        let mut done = lock(&flight.done);
        loop {
            if let Some(v) = done.clone() {
                return v;
            }
            let now = Instant::now();
            if now >= deadline {
                return Verdict::Timeout {
                    budget: self.config.per_job_timeout,
                };
            }
            done = flight
                .cv
                .wait_timeout(done, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Answer a batch of requests in order (dedup/cache apply per request).
    pub fn respond_all(
        &self,
        reference: &Query,
        db: &Database,
        requests: &[ExplainRequest],
    ) -> Result<Vec<ExplainResponse>, GraderError> {
        requests
            .iter()
            .map(|r| self.respond(reference, db, r))
            .collect()
    }

    /// Grade an ingested directory cohort: the parsed submissions run
    /// through the engine (dedup, cache, worker pool), the frontend-rejected
    /// ones are merged back into the report as [`Verdict::Rejected`] rows,
    /// in directory order.
    pub fn grade_cohort(
        &self,
        label: &str,
        reference: &Query,
        db: &Database,
        cohort: &IngestedCohort,
    ) -> Result<BatchReport, GraderError> {
        let wall_start = Instant::now();
        let submissions = cohort.submissions();
        let inner = self.grade(label, reference, db, &submissions)?;
        let mut by_id: HashMap<&str, &GradedSubmission> = HashMap::new();
        for g in &inner.graded {
            by_id.insert(g.submission_id.as_str(), g);
        }
        let graded: Vec<GradedSubmission> = cohort
            .entries
            .iter()
            .map(|entry| match entry {
                IngestEntry::Parsed(s) => by_id
                    .get(s.id.as_str())
                    .copied()
                    .cloned()
                    .expect("every parsed submission was graded"),
                IngestEntry::Rejected(r) => GradedSubmission {
                    submission_id: r.id.clone(),
                    author: r.author.clone(),
                    fingerprint: 0,
                    verdict: r.verdict.clone(),
                    from_cache: false,
                    grading_time: Duration::ZERO,
                },
            })
            .collect();
        let stats = BatchStats::collect(
            &graded,
            inner.stats.distinct_groups,
            inner.stats.cache_hits,
            inner.stats.pipeline_runs,
            self.config.workers,
            wall_start.elapsed(),
        );
        Ok(BatchReport {
            label: label.to_owned(),
            shared_annotation: inner.shared_annotation,
            graded,
            stats,
        })
    }
}

impl GradingSession {
    /// Whether the reference's provenance annotation is shared (absent for
    /// aggregate references — the `aggprov` gap).
    fn shared_annotation(&self) -> bool {
        self.session
            .prepared(self.reference)
            .map(|p| p.annotation().is_some())
            .unwrap_or(false)
    }
}

/// Drain the job queue with `config.workers` threads; returns
/// fingerprint → (verdict, grading time).
fn run_jobs(
    jobs: VecDeque<Job>,
    warm: Arc<GradingSession>,
    config: &GraderConfig,
    metrics: &Arc<MetricsRegistry>,
) -> HashMap<u64, (Verdict, Duration)> {
    let results: Arc<Mutex<HashMap<u64, (Verdict, Duration)>>> =
        Arc::new(Mutex::new(HashMap::new()));
    if jobs.is_empty() {
        return Arc::try_unwrap(results)
            .map(|m| m.into_inner().unwrap_or_default())
            .unwrap_or_default();
    }
    let worker_count = config.workers.max(1).min(jobs.len());
    let queue = Arc::new(Mutex::new(jobs));

    let mut handles = Vec::with_capacity(worker_count);
    for _ in 0..worker_count {
        let queue = queue.clone();
        let results = results.clone();
        let warm = warm.clone();
        let timeout = config.per_job_timeout;
        let repair = config.repair.clone();
        let metrics = metrics.clone();
        handles.push(std::thread::spawn(move || loop {
            let job = match queue.lock() {
                Ok(mut q) => {
                    let job = q.pop_front();
                    if job.is_some() {
                        // Decrement under the queue lock so the gauge is the
                        // real remaining depth: a drained batch reads 0
                        // (pinned by the conformance suite).
                        metrics.gauge_set("grader.queue_depth", q.len() as i64);
                    }
                    job
                }
                Err(_) => None,
            };
            let Some(job) = job else {
                break;
            };
            let start = Instant::now();
            let verdict = grade_one_with_timeout(
                warm.clone(),
                job.query.clone(),
                timeout,
                warm.session.options().events.clone(),
                repair.clone(),
            );
            let elapsed = start.elapsed();
            if let Ok(mut r) = results.lock() {
                r.insert(job.fingerprint, (verdict, elapsed));
            }
        }));
    }
    for h in handles {
        // A panicking worker has already converted its job's panic into a
        // `Verdict::Error` inside `grade_one`; a panic here would mean the
        // pool plumbing itself failed, which we surface by ignoring the
        // worker (its remaining queue share is drained by the others).
        let _ = h.join();
    }

    Arc::try_unwrap(results)
        .map(|m| m.into_inner().unwrap_or_default())
        .unwrap_or_default()
}

/// Grade one submission, enforcing the per-job wall-clock budget.
///
/// Belt and braces: the job runs under a per-job [`Budget`] whose deadline
/// the pipeline polls at loop boundaries *and* inside evaluator row loops,
/// so a flooding evaluation self-terminates; *and* the worker watches from
/// outside via a channel, so even a job stuck somewhere unpolled is
/// recorded as [`Verdict::Timeout`] on time (its budget is cancelled so the
/// stray thread stops consuming CPU shortly after). With `timeout == 0` the
/// job runs inline on the worker under the session budget.
fn grade_one_with_timeout(
    warm: Arc<GradingSession>,
    query: Arc<Query>,
    timeout: Duration,
    events: ratest_core::session::EventHandle,
    repair: Option<RepairOptions>,
) -> Verdict {
    if timeout.is_zero() {
        return grade_one(
            &warm,
            &query,
            warm.session.budget(),
            events,
            repair.as_ref(),
        );
    }
    // Each job gets its own budget: cancelling this job must not cancel the
    // batch's other jobs.
    let budget = Budget::unlimited().with_deadline(timeout);
    let job_budget = budget.clone();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(grade_one(
            &warm,
            &query,
            &job_budget,
            events,
            repair.as_ref(),
        ));
    });
    match rx.recv_timeout(timeout + Duration::from_millis(50)) {
        // A budget-exhausted run is a timeout whichever layer noticed
        // first; the verdict always names the *configured* budget (the job
        // itself cannot know it).
        Ok(Verdict::Timeout { .. }) => Verdict::Timeout { budget: timeout },
        Ok(Verdict::Error { .. }) if budget.poll().is_some() => {
            Verdict::Timeout { budget: timeout }
        }
        Ok(verdict) => verdict,
        Err(_) => {
            budget.cancel();
            Verdict::Timeout { budget: timeout }
        }
    }
}

/// Enrich a [`Verdict::Wrong`] with ranked repair suggestions computed
/// against the context's warm session. Returns `true` when the verdict
/// gained suggestions it did not already have (the caller then upgrades
/// the cache in place); a verdict that is not `Wrong`, already carries
/// suggestions, or yields no confirmed repair is left untouched.
fn enrich_with_repairs(
    warm: &GradingSession,
    query: &Query,
    verdict: &mut Verdict,
    options: &RepairOptions,
    events: &ratest_core::session::EventHandle,
) -> bool {
    let Verdict::Wrong {
        counterexample,
        suggestions,
        ..
    } = verdict
    else {
        return false;
    };
    if !suggestions.is_empty() {
        return false;
    }
    let Some(prepared) = warm.session.prepared(warm.reference) else {
        return false;
    };
    let metrics = warm.session.options().metrics.clone();
    let computed = ratest_repair::suggest_repairs(
        query,
        prepared.query(),
        counterexample,
        &warm.session,
        warm.reference,
        options,
        events,
        &metrics,
    );
    if computed.is_empty() {
        return false;
    }
    *suggestions = computed;
    true
}

/// Run the shared-reference session pipeline for one submission, converting
/// every failure mode (typed errors *and* panics) into a verdict.
fn grade_one(
    warm: &GradingSession,
    query: &Query,
    budget: &Budget,
    events: ratest_core::session::EventHandle,
    repair: Option<&RepairOptions>,
) -> Verdict {
    // Each job gets its own warm-solver handle instead of the session's
    // shared cross-request pool: engine jobs run on concurrent workers (and
    // concurrent serve requests), and a pool shared across threads would make
    // clause retention — hence solver counters and event streams — depend on
    // scheduling order. Cross-request pool reuse is for sequential session
    // callers.
    let reuse = ratest_core::SolverReuse::fresh();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        warm.session
            .explain_with_reuse(warm.reference, query, budget, events.clone(), Some(reuse))
    }));
    match outcome {
        Ok(Ok(outcome)) => match outcome.counterexample {
            None => Verdict::Correct,
            Some(cex) => {
                let mut verdict = Verdict::Wrong {
                    counterexample: Box::new(cex),
                    class: outcome.class,
                    algorithm: outcome.algorithm_used,
                    timings: outcome.timings,
                    suggestions: Vec::new(),
                };
                if let Some(opts) = repair {
                    enrich_with_repairs(warm, query, &mut verdict, opts, &events);
                }
                verdict
            }
        },
        // The job's own budget ran out mid-pipeline: that is a timeout, not
        // an ungradable submission.
        Ok(Err(e)) if e.is_budget_exhausted() => Verdict::Timeout {
            budget: Duration::ZERO,
        },
        Ok(Err(e)) => Verdict::Error {
            message: e.to_string(),
        },
        Err(panic) => Verdict::Error {
            message: format!("explanation panicked: {}", panic_message(&panic)),
        },
    }
}

/// Best-effort human-readable payload of a caught panic.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(|s| s.as_str()))
        .unwrap_or("<non-string panic payload>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::builder::{col, lit, rel};
    use ratest_ra::testdata;

    fn toy_batch() -> (Query, Database, Vec<Submission>) {
        let db = testdata::figure1_db();
        let reference = testdata::example1_q1();
        let wrong = testdata::example1_q2();
        let subs = vec![
            Submission::new("s0", "Ada", reference.clone()),
            Submission::new("s1", "Ben", wrong.clone()),
            Submission::new("s2", "Cyd", wrong.clone()),
            Submission::new("s3", "Dee", wrong),
        ];
        (reference, db, subs)
    }

    #[test]
    fn duplicates_are_graded_once_and_verdicts_shared() {
        let (reference, db, subs) = toy_batch();
        let grader = Grader::new(GraderConfig {
            workers: 2,
            ..Default::default()
        });
        let report = grader.grade("toy", &reference, &db, &subs).unwrap();
        assert_eq!(report.stats.submissions, 4);
        assert_eq!(report.stats.distinct_groups, 2);
        assert_eq!(report.stats.pipeline_runs, 2);
        assert_eq!(report.stats.dedup_hits, 2);
        assert_eq!(report.graded[0].verdict.tag(), "correct");
        for g in &report.graded[1..] {
            assert_eq!(g.verdict.tag(), "wrong");
            assert_eq!(
                g.verdict.counterexample().unwrap().size(),
                3,
                "Example 2's optimum"
            );
        }
    }

    #[test]
    fn the_verdict_cache_carries_across_batches() {
        let (reference, db, subs) = toy_batch();
        let grader = Grader::new(GraderConfig::default());
        let first = grader.grade("b1", &reference, &db, &subs).unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(grader.cached_verdicts(), 2);
        let second = grader.grade("b2", &reference, &db, &subs).unwrap();
        assert_eq!(second.stats.cache_hits, 2);
        assert_eq!(second.stats.pipeline_runs, 0);
        assert!(second.graded.iter().all(|g| g.from_cache));
    }

    #[test]
    fn the_cache_is_scoped_to_the_reference_and_instance() {
        let (reference, db, subs) = toy_batch();
        let grader = Grader::new(GraderConfig::default());
        let first = grader
            .grade("q-exactly-one", &reference, &db, &subs)
            .unwrap();
        assert_eq!(first.graded[1].verdict.tag(), "wrong");

        // Grading the same submissions against a different reference must
        // not reuse the first assignment's verdicts: s1's query IS the new
        // reference, so it flips from wrong to correct.
        let other_reference = testdata::example1_q2();
        let second = grader
            .grade("q-at-least-one", &other_reference, &db, &subs)
            .unwrap();
        assert_eq!(second.stats.cache_hits, 0, "different context, no reuse");
        assert_eq!(second.graded[1].verdict.tag(), "correct");
    }

    #[test]
    fn timeout_verdicts_are_not_cached() {
        let (reference, db, subs) = toy_batch();
        let strict = Grader::new(GraderConfig {
            workers: 1,
            per_job_timeout: Duration::from_nanos(1),
            ..Default::default()
        });
        let first = strict.grade("b1", &reference, &db, &subs).unwrap();
        assert_eq!(
            first.stats.timeouts, first.stats.submissions,
            "a 1 ns budget times everything out: {:?}",
            first.stats
        );
        // Timeouts must not persist: the regrade re-attempts every group
        // instead of replaying the stale Timeout from the cache.
        let second = strict.grade("b2", &reference, &db, &subs).unwrap();
        assert_eq!(second.stats.cache_hits, 0, "{:?}", second.stats);
        assert_eq!(second.stats.pipeline_runs, second.stats.distinct_groups);
    }

    #[test]
    fn ungradable_submissions_become_error_verdicts_not_failures() {
        let (reference, db, mut subs) = toy_batch();
        // Wrong arity: not union compatible with the reference.
        subs.push(Submission::new(
            "s4",
            "Eve",
            rel("Student").project(&["name"]).build(),
        ));
        // References a relation that does not exist.
        subs.push(Submission::new(
            "s5",
            "Fay",
            rel("NoSuchTable").select(col("x").eq(lit(1i64))).build(),
        ));
        let grader = Grader::new(GraderConfig::default());
        let report = grader.grade("toy", &reference, &db, &subs).unwrap();
        assert_eq!(report.graded[4].verdict.tag(), "error");
        assert_eq!(report.graded[5].verdict.tag(), "error");
        // The rest of the batch still graded normally.
        assert_eq!(report.graded[0].verdict.tag(), "correct");
        assert_eq!(report.stats.errors, 2);
    }

    #[test]
    fn a_broken_reference_is_a_batch_level_error() {
        let db = testdata::figure1_db();
        let reference = rel("Nope").build();
        let grader = Grader::new(GraderConfig::default());
        let err = grader
            .grade("toy", &reference, &db, &[])
            .expect_err("reference does not evaluate");
        assert!(err.to_string().contains("not gradable"));
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (reference, db, subs) = toy_batch();
        let sequential = Grader::new(GraderConfig {
            workers: 1,
            ..Default::default()
        });
        let parallel = Grader::new(GraderConfig {
            workers: 4,
            ..Default::default()
        });
        let a = sequential.grade("seq", &reference, &db, &subs).unwrap();
        let b = parallel.grade("par", &reference, &db, &subs).unwrap();
        let tags = |r: &BatchReport| {
            r.graded
                .iter()
                .map(|g| g.verdict.tag().to_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(tags(&a), tags(&b));
    }

    #[test]
    fn poisoned_locks_recover_instead_of_killing_the_engine() {
        let (reference, db, subs) = toy_batch();
        let grader = Arc::new(Grader::new(GraderConfig::default()));
        // Poison both engine locks: a worker panicking mid-critical-section
        // must cost one request, not every subsequent one.
        let g = grader.clone();
        let _ = std::thread::spawn(move || {
            let _guard = g.cache.lock().unwrap();
            panic!("poison the cache lock");
        })
        .join();
        let g = grader.clone();
        let _ = std::thread::spawn(move || {
            let _guard = g.sessions.lock().unwrap();
            panic!("poison the session lock");
        })
        .join();
        let report = grader
            .grade("poisoned", &reference, &db, &subs)
            .expect("the engine still grades after a poisoning panic");
        assert_eq!(report.graded.len(), subs.len());
        assert_eq!(grader.cached_verdicts(), 2);
    }

    #[test]
    fn warm_cap_evicts_lru_sessions_and_tracks_real_occupancy() {
        let db = testdata::figure1_db();
        let q1 = testdata::example1_q1();
        let q2 = testdata::example1_q2();
        let grader = Grader::new(GraderConfig {
            warm_cap: Some(1),
            ..Default::default()
        });
        let c1 = grader.prepare_context(&q1, &db).unwrap();
        assert_eq!(grader.warm_sessions(), 1);
        let c2 = grader.prepare_context(&q2, &db).unwrap();
        assert_eq!(
            grader.warm_sessions(),
            1,
            "cap of 1 evicts the older context"
        );
        assert_eq!(grader.metrics().gauge("grader.warm_sessions"), Some(1));
        assert_eq!(grader.metrics().counter("grader.session_evictions"), 1);
        assert!(matches!(
            grader.shared_annotation_for(c1),
            Err(GraderError::UnknownContext)
        ));
        assert!(grader.shared_annotation_for(c2).is_ok());
    }

    #[test]
    fn queue_depth_gauge_reads_zero_after_the_batch_drains() {
        let (reference, db, subs) = toy_batch();
        let grader = Grader::new(GraderConfig {
            workers: 2,
            ..Default::default()
        });
        grader.grade("batch", &reference, &db, &subs).unwrap();
        assert_eq!(grader.metrics().gauge("grader.queue_depth"), Some(0));
    }

    #[test]
    fn concurrent_duplicate_requests_share_one_search() {
        let db = testdata::figure1_db();
        let reference = testdata::example1_q1();
        let wrong = testdata::example1_q2();
        let grader = Arc::new(Grader::new(GraderConfig {
            per_job_timeout: Duration::ZERO,
            ..Default::default()
        }));
        let context = grader.prepare_context(&reference, &db).unwrap();
        let mut handles = Vec::new();
        for i in 0..6 {
            let grader = grader.clone();
            let wrong = wrong.clone();
            handles.push(std::thread::spawn(move || {
                grader
                    .respond_prepared(
                        context,
                        &ExplainRequest::new(format!("s{i}"), format!("s{i}"), wrong),
                        ratest_core::session::EventHandle::none(),
                    )
                    .expect("respond")
            }));
        }
        let responses: Vec<crate::api::ExplainResponse> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Six identical fingerprints in flight at once → one leader searched,
        // five followers joined it (counted as cache hits: by the time they
        // were answered, the verdict was cached state).
        assert_eq!(grader.searches_total(), 1);
        assert_eq!(grader.metrics().counter("grader.cache_misses"), 1);
        assert_eq!(grader.metrics().counter("grader.cache_hits"), 5);
        let tags: std::collections::HashSet<&str> =
            responses.iter().map(|r| r.verdict.tag()).collect();
        assert_eq!(tags.len(), 1, "every duplicate got the same verdict");
    }
}
