//! Conformance for the incremental SAT layer on the course workload: the
//! incremental and from-scratch legs must reach **byte-identical** outcomes
//! (verdicts and full counterexamples), and the incremental leg must spend
//! strictly fewer solver conflicts — the committed perf claim behind the
//! `solver_incremental` section of `ratest-bench`.

use ratest_bench::course_workload;
use ratest_core::session::Session;
use ratest_core::RatestOptions;
use ratest_datagen::{university_database, UniversityConfig};
use ratest_telemetry::MetricsRegistry;
use std::collections::BTreeMap;
use std::sync::Arc;

fn run_leg(incremental: bool) -> (Vec<String>, BTreeMap<String, i64>) {
    let db = university_database(&UniversityConfig {
        total_tuples: 60,
        seed: 2019,
        ..Default::default()
    });
    let registry = Arc::new(MetricsRegistry::new());
    let mut outcomes = Vec::new();
    for pair in course_workload(2, 7) {
        let session = Session::builder(db.clone())
            .options(RatestOptions {
                incremental_solver: incremental,
                ..Default::default()
            })
            .metrics(registry.clone())
            .build();
        outcomes.push(match session.explain_pair(&pair.reference, &pair.wrong) {
            // Compare the exact tuples chosen and both query results, not
            // just the verdict or its size. (The containing `Database` is
            // deliberately left out: its name→index map has no canonical
            // iteration order, and the selection already pins the tuples.)
            Ok(outcome) => match outcome.counterexample {
                Some(cex) => format!(
                    "cex:{:?}|q1:{:?}|q2:{:?}|witness:{:?}",
                    cex.subinstance.selection,
                    cex.q1_result.rows(),
                    cex.q2_result.rows(),
                    cex.witness
                ),
                None => "indistinguishable".into(),
            },
            Err(e) => format!("error:{e:?}"),
        });
    }
    let mut counters = BTreeMap::new();
    for (name, v) in &registry.snapshot().counters {
        counters.insert(name.clone(), *v as i64);
    }
    (outcomes, counters)
}

#[test]
fn incremental_solving_is_outcome_identical_and_strictly_cheaper() {
    let (warm_outcomes, warm) = run_leg(true);
    let (cold_outcomes, cold) = run_leg(false);
    assert_eq!(
        warm_outcomes, cold_outcomes,
        "incremental solving changed a verdict or counterexample"
    );
    let get = |m: &BTreeMap<String, i64>, k: &str| m.get(k).copied().unwrap_or(0);
    let warm_conflicts = get(&warm, "solver.conflicts");
    let cold_conflicts = get(&cold, "solver.conflicts");
    assert!(
        warm_conflicts < cold_conflicts,
        "incremental solving must spend strictly fewer conflicts on the \
         course workload: incremental={warm_conflicts} scratch={cold_conflicts}"
    );
}
