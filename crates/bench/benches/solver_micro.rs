//! Micro-benchmarks of the solver substrate: CDCL solving and min-ones
//! optimization on synthetic vertex-cover-style formulas (the hardness source
//! behind Theorems 3, 4 and 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratest_solver::formula::Formula;
use ratest_solver::minones::{minimize_ones, MinOnesOptions};

/// Vertex-cover formula of a cycle graph with `n` vertices.
fn cycle_cover(n: u32) -> Formula {
    Formula::and(
        (1..=n)
            .map(|i| {
                let j = if i == n { 1 } else { i + 1 };
                Formula::or(vec![Formula::var(i), Formula::var(j)])
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_minones_cycle_cover");
    group.sample_size(10);
    for &n in &[20u32, 60, 120] {
        let f = cycle_cover(n);
        let objective: Vec<u32> = (1..=n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| minimize_ones(&f, &objective, &MinOnesOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
