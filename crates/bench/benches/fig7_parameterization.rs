//! Bench for Figure 7: Agg-Basic vs Agg-Param on parameterized Q18.

use criterion::{criterion_group, criterion_main, Criterion};
use ratest_bench::fig7;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_parameterization");
    group.sample_size(10);
    group.bench_function("q18_basic_vs_param", |b| {
        b.iter(|| fig7(0.0006, 2019));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
