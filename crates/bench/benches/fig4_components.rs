//! Bench for Figure 4: per-component cost (raw evaluation, provenance with
//! and without selection push-down, solver strategies) as the instance grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratest_bench::university;
use ratest_bench::workload::{course_workload, distinguished_pairs};
use ratest_core::optsigma::{provenance_for_tuple, OptSigmaOptions};
use ratest_core::problem::{check_distinguishes, differing_tuples};
use ratest_ra::eval::Params;

fn bench(c: &mut Criterion) {
    let workload = course_workload(2, 2019);
    let mut group = c.benchmark_group("fig4_components");
    group.sample_size(10);
    for &tuples in &[200usize, 800] {
        let db = university(tuples);
        let pairs: Vec<_> = distinguished_pairs(&workload, &db)
            .into_iter()
            .cloned()
            .collect();
        let pair = pairs
            .first()
            .expect("at least one distinguishable pair")
            .clone();
        let (r1, r2) =
            check_distinguishes(&pair.reference, &pair.wrong, &db, &Params::new()).unwrap();
        let (tuple, from_q1) = differing_tuples(&r1, &r2)[0].clone();

        group.bench_with_input(BenchmarkId::new("raw_eval", tuples), &tuples, |b, _| {
            b.iter(|| {
                check_distinguishes(&pair.reference, &pair.wrong, &db, &Params::new()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("prov_sp", tuples), &tuples, |b, _| {
            b.iter(|| {
                provenance_for_tuple(
                    &pair.reference,
                    &pair.wrong,
                    &db,
                    &Params::new(),
                    &tuple,
                    from_q1,
                    &OptSigmaOptions::default(),
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("prov_all", tuples), &tuples, |b, _| {
            b.iter(|| {
                provenance_for_tuple(
                    &pair.reference,
                    &pair.wrong,
                    &db,
                    &Params::new(),
                    &tuple,
                    from_q1,
                    &OptSigmaOptions {
                        selection_pushdown: false,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
