//! Bench for Table 4: SCP (`Basic`) vs SWP (`Optσ`) runtime on the course
//! workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ratest_bench::university;
use ratest_bench::workload::{course_workload, distinguished_pairs};
use ratest_core::basic::{smallest_counterexample_basic, BasicOptions};
use ratest_core::optsigma::{smallest_witness_optsigma, OptSigmaOptions};
use ratest_ra::eval::Params;

fn bench(c: &mut Criterion) {
    let db = university(500);
    let workload = course_workload(2, 2019);
    let pairs: Vec<_> = distinguished_pairs(&workload, &db)
        .into_iter()
        .cloned()
        .collect();
    assert!(!pairs.is_empty());

    let mut group = c.benchmark_group("table4_scp_vs_swp");
    group.sample_size(10);
    group.bench_function("basic_scp", |b| {
        b.iter(|| {
            for p in &pairs {
                let _ = smallest_counterexample_basic(
                    &p.reference,
                    &p.wrong,
                    &db,
                    &Params::new(),
                    &BasicOptions::default(),
                );
            }
        })
    });
    group.bench_function("optsigma_swp", |b| {
        b.iter(|| {
            for p in &pairs {
                let _ = smallest_witness_optsigma(
                    &p.reference,
                    &p.wrong,
                    &db,
                    &Params::new(),
                    &OptSigmaOptions::default(),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
