//! Batch grading: the naive per-pair loop vs the grading engine.
//!
//! Grades the same generated 50-submission cohort three ways:
//!
//! * `naive_sequential_loop` — the pre-engine baseline: one
//!   [`ratest_core::pipeline::explain`] call per submission, re-evaluating
//!   and re-annotating the reference query every time, no dedup;
//! * `engine_1worker` — the batch engine's dedup + shared reference
//!   annotation, single worker;
//! * `engine_4workers` — the same plus the worker pool (wall-clock wins
//!   scale with available cores; on a single-core host it tracks
//!   `engine_1worker` minus pool overhead).
//!
//! The engine variants run strictly fewer pipeline runs than submissions
//! (dedup), each cheaper than the naive loop's (shared reference work).

use criterion::{criterion_group, criterion_main, Criterion};

use ratest_grader::{generate_cohort, CohortConfig, Grader, GraderConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cohort = generate_cohort(&CohortConfig::default());

    let mut group = c.benchmark_group("batch_grading_50_submissions");
    group.sample_size(10);

    group.bench_function("naive_sequential_loop", |b| {
        b.iter(|| {
            // The baseline is deliberately the deprecated one-shot pipeline:
            // it re-prepares everything per pair and takes the unshared
            // dispatch, which is exactly the cost profile the engine's
            // sharing is measured against.
            #[allow(deprecated)]
            let explain_one = |q2: &ratest_ra::ast::Query| {
                ratest_core::pipeline::explain(
                    &cohort.reference,
                    q2,
                    &cohort.db,
                    &ratest_core::pipeline::RatestOptions::default(),
                )
            };
            let mut wrong = 0usize;
            for sub in &cohort.submissions {
                if matches!(explain_one(&sub.query), Ok(o) if o.counterexample.is_some()) {
                    wrong += 1;
                }
            }
            wrong
        })
    });

    group.bench_function("engine_1worker", |b| {
        b.iter(|| {
            // A fresh engine per iteration so the cross-batch cache does not
            // turn later iterations into pure cache reads.
            let grader = Grader::new(GraderConfig {
                workers: 1,
                per_job_timeout: Duration::from_secs(30),
                ..Default::default()
            });
            grader
                .grade("bench", &cohort.reference, &cohort.db, &cohort.submissions)
                .expect("cohort grades")
                .stats
                .wrong
        })
    });

    group.bench_function("engine_4workers", |b| {
        b.iter(|| {
            let grader = Grader::new(GraderConfig {
                workers: 4,
                per_job_timeout: Duration::from_secs(30),
                ..Default::default()
            });
            grader
                .grade("bench", &cohort.reference, &cohort.db, &cohort.submissions)
                .expect("cohort grades")
                .stats
                .wrong
        })
    });

    group.bench_function("engine_4workers_warm_cache", |b| {
        let grader = Grader::new(GraderConfig {
            workers: 4,
            per_job_timeout: Duration::from_secs(30),
            ..Default::default()
        });
        // Prime the cross-batch verdict cache once.
        let _ = grader.grade("warmup", &cohort.reference, &cohort.db, &cohort.submissions);
        b.iter(|| {
            grader
                .grade("bench", &cohort.reference, &cohort.db, &cohort.submissions)
                .expect("cohort grades")
                .stats
                .wrong
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
