//! Bench for Table 3: how many mutated wrong queries a test instance of a
//! given size discovers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratest_bench::table3;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_discovery");
    group.sample_size(10);
    for &tuples in &[200usize, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(tuples), &tuples, |b, &n| {
            b.iter(|| table3(&[n], 2, 2019));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
