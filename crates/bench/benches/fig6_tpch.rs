//! Bench for Figure 6: Agg-Basic vs Agg-Opt on the TPC-H workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ratest_core::aggregates::agg_basic::{smallest_counterexample_agg_basic, AggBasicOptions};
use ratest_core::aggregates::agg_opt::{smallest_counterexample_agg_opt, AggOptOptions};
use ratest_datagen::{tpch_database, TpchConfig};
use ratest_queries::tpch_queries::tpch_experiments;
use ratest_ra::eval::Params;

fn bench(c: &mut Criterion) {
    let db = tpch_database(&TpchConfig::with_scale(0.0006));
    let q18 = tpch_experiments()
        .into_iter()
        .find(|e| e.name == "Q18")
        .unwrap();
    let wrong = q18.wrong[0].clone();

    let mut group = c.benchmark_group("fig6_tpch_q18");
    group.sample_size(10);
    group.bench_function("agg_basic", |b| {
        b.iter(|| {
            let _ = smallest_counterexample_agg_basic(
                &q18.reference,
                &wrong,
                &db,
                &Params::new(),
                &AggBasicOptions::default(),
            );
        })
    });
    group.bench_function("agg_opt", |b| {
        b.iter(|| {
            let _ = smallest_counterexample_agg_opt(
                &q18.reference,
                &wrong,
                &db,
                &Params::new(),
                &AggOptOptions::default(),
            );
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
