//! Bench for Figure 5: the optimizing min-ones strategy vs bounded model
//! enumeration (`Naive-k`), on the provenance formula of one course pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratest_bench::university;
use ratest_bench::workload::{course_workload, distinguished_pairs};
use ratest_core::optsigma::{smallest_witness_optsigma, OptSigmaOptions};
use ratest_core::pipeline::SolverStrategy;
use ratest_ra::eval::Params;

fn bench(c: &mut Criterion) {
    let db = university(500);
    let workload = course_workload(2, 2019);
    let pairs: Vec<_> = distinguished_pairs(&workload, &db)
        .into_iter()
        .cloned()
        .collect();
    let pair = pairs.first().expect("pair exists").clone();

    let mut group = c.benchmark_group("fig5_solver_strategies");
    group.sample_size(10);
    for k in [1usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, &k| {
            b.iter(|| {
                smallest_witness_optsigma(
                    &pair.reference,
                    &pair.wrong,
                    &db,
                    &Params::new(),
                    &OptSigmaOptions {
                        strategy: SolverStrategy::Enumerate { max_models: k },
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.bench_function("opt", |b| {
        b.iter(|| {
            smallest_witness_optsigma(
                &pair.reference,
                &pair.wrong,
                &db,
                &Params::new(),
                &OptSigmaOptions::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
