//! Text rendering of experiment results into paper-style tables.

use crate::experiments::*;
use std::time::Duration;

fn ms(d: Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

/// Render Table 3.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::from(
        "Table 3: |D| vs. number of wrong queries discovered\n# tuples  # wrong queries  # discovered\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>8}  {:>15}  {:>12}\n",
            r.tuples, r.total_wrong_queries, r.discovered
        ));
    }
    s
}

/// Render Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut s = String::from(
        "Table 4: SCP (Basic) vs SWP (Optσ)\nalgorithm     mean runtime    mean counterexample size   pairs\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12}  {:>12}  {:>25.2}  {:>6}\n",
            r.algorithm,
            ms(r.mean_runtime),
            r.mean_size,
            r.pairs
        ));
    }
    s
}

/// Render Figure 3.
pub fn render_fig3(rows: &[Fig3Row]) -> String {
    let mut s = String::from(
        "Figure 3: query complexity vs Optσ component time\nQ#  ops  diffs  height       raw   prov-sp    solver     total\n",
    );
    let mut sorted = rows.to_vec();
    sorted.sort_by_key(|r| (r.operators, r.differences, r.height));
    for r in sorted {
        s.push_str(&format!(
            "{:>2}  {:>3}  {:>5}  {:>6}  {:>9} {:>9} {:>9} {:>9}\n",
            r.question,
            r.operators,
            r.differences,
            r.height,
            ms(r.raw),
            ms(r.prov_sp),
            ms(r.solver),
            ms(r.total)
        ));
    }
    s
}

/// Render Figure 4.
pub fn render_fig4(rows: &[Fig4Row]) -> String {
    let mut s = String::from(
        "Figure 4: mean running time of each component vs |D|\n# tuples        raw   prov-all    prov-sp  naive-128 solver-opt    opt-all\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
            r.tuples,
            ms(r.raw),
            ms(r.prov_all),
            ms(r.prov_sp),
            ms(r.solver_naive_128),
            ms(r.solver_opt),
            ms(r.solver_opt_all)
        ));
    }
    s
}

/// Render Figure 5.
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut s = String::from(
        "Figure 5: witness size vs solver strategy\nstrategy    mean size   mean solver time\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<10}  {:>9.2}  {:>16}\n",
            r.strategy,
            r.mean_size,
            ms(r.mean_solver_time)
        ));
    }
    s
}

/// Render Figure 6.
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut s = String::from(
        "Figure 6: TPC-H computation time (per wrong variant)\nquery  var  algorithm        raw       prov     solver   |C|\n",
    );
    for r in rows {
        for (name, data) in [("Agg-Basic", &r.agg_basic), ("Agg-Opt", &r.agg_opt)] {
            match data {
                Some((raw, prov, solver, size)) => s.push_str(&format!(
                    "{:<5}  {:>3}  {:<9}  {:>9}  {:>9}  {:>9}  {:>4}\n",
                    r.query,
                    r.variant,
                    name,
                    ms(*raw),
                    ms(*prov),
                    ms(*solver),
                    size
                )),
                None => s.push_str(&format!(
                    "{:<5}  {:>3}  {:<9}  {:>9}  {:>9}  {:>9}  {:>4}\n",
                    r.query, r.variant, name, "timeout", "-", "-", "-"
                )),
            }
        }
    }
    s
}

/// Render Figure 7.
pub fn render_fig7(r: &Fig7Result) -> String {
    format!(
        "Figure 7: effectiveness of parameterization on Q18 ({} pairs)\n\
         algorithm   solver runtime   counterexample size\n\
         Agg-Basic   {:>14}   {:>19.2}\n\
         Agg-Param   {:>14}   {:>19.2}\n",
        r.pairs,
        ms(r.basic_solver_time),
        r.basic_size,
        ms(r.param_solver_time),
        r.param_size,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings_are_nonempty_and_well_formed() {
        let t3 = render_table3(&[Table3Row {
            tuples: 100,
            total_wrong_queries: 10,
            discovered: 7,
        }]);
        assert!(t3.contains("100"));
        let t4 = render_table4(&[Table4Row {
            algorithm: "SWP — Optσ".into(),
            mean_runtime: Duration::from_millis(3),
            mean_size: 3.5,
            pairs: 4,
        }]);
        assert!(t4.contains("Optσ"));
        let f7 = render_fig7(&Fig7Result {
            basic_solver_time: Duration::from_millis(1),
            basic_size: 25.3,
            param_solver_time: Duration::from_millis(2),
            param_size: 7.5,
            pairs: 1,
        });
        assert!(f7.contains("Agg-Param"));
    }
}
