//! The experiments of Sections 7 and 8, one function per table/figure.
//!
//! Every function takes an explicit scale so that the Criterion benches can
//! run tiny configurations while the `reproduce` binary defaults to larger
//! ones. Results are plain data structures; `render` turns them into the
//! text tables printed by the binary and recorded in EXPERIMENTS.md.

use crate::workload::{course_workload, distinguished_pairs, CoursePair};
use ratest_core::aggregates::agg_basic::{smallest_counterexample_agg_basic, AggBasicOptions};
use ratest_core::aggregates::agg_opt::{smallest_counterexample_agg_opt, AggOptOptions};
use ratest_core::aggregates::agg_param::{smallest_counterexample_agg_param, AggParamOptions};
use ratest_core::basic::{smallest_counterexample_basic, BasicOptions};
use ratest_core::optsigma::{smallest_witness_optsigma, OptSigmaOptions};
use ratest_core::pipeline::SolverStrategy;
use ratest_datagen::{tpch_database, university_database, TpchConfig, UniversityConfig};
use ratest_queries::tpch_queries::{q18_parameterized, q18_parameterized_wrong, tpch_experiments};
use ratest_ra::eval::Params;
use ratest_ra::metrics::QueryMetrics;
use ratest_storage::{Database, Value};
use serde::Serialize;
use std::time::Duration;

/// Default per-question mutation count used by the harness.
pub const DEFAULT_MUTATIONS_PER_QUESTION: usize = 6;

// ---------------------------------------------------------------- Table 3

/// One row of Table 3: instance size vs number of wrong queries discovered.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Total number of tuples in the instance.
    pub tuples: usize,
    /// Wrong queries in the workload.
    pub total_wrong_queries: usize,
    /// Wrong queries the instance distinguishes.
    pub discovered: usize,
}

/// Run the Table 3 experiment over the given instance sizes.
pub fn table3(sizes: &[usize], mutations_per_question: usize, seed: u64) -> Vec<Table3Row> {
    let workload = course_workload(mutations_per_question, seed);
    sizes
        .iter()
        .map(|&tuples| {
            let db = university_database(&UniversityConfig::with_total(tuples));
            Table3Row {
                tuples,
                total_wrong_queries: workload.len(),
                discovered: distinguished_pairs(&workload, &db).len(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table 4

/// One row of Table 4: SCP (`Basic`) vs SWP (`Optσ`).
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Mean wall-clock runtime per pair.
    pub mean_runtime: Duration,
    /// Mean counterexample size.
    pub mean_size: f64,
    /// Number of pairs solved.
    pub pairs: usize,
}

/// Run the Table 4 experiment at the given instance size.
pub fn table4(tuples: usize, mutations_per_question: usize, seed: u64) -> Vec<Table4Row> {
    let db = university_database(&UniversityConfig::with_total(tuples));
    let workload = course_workload(mutations_per_question, seed);
    let pairs: Vec<&CoursePair> = distinguished_pairs(&workload, &db);

    type Runner<'a> = Box<dyn Fn(&CoursePair) -> Option<(usize, Duration)> + 'a>;
    let runners: Vec<(&str, Runner)> = vec![
        (
            "SCP — Basic",
            Box::new(|p: &CoursePair| {
                smallest_counterexample_basic(
                    &p.reference,
                    &p.wrong,
                    &db,
                    &Params::new(),
                    &BasicOptions::default(),
                )
                .ok()
                .map(|(c, t)| (c.size(), t.total))
            }) as Runner,
        ),
        (
            "SWP — Optσ",
            Box::new(|p: &CoursePair| {
                smallest_witness_optsigma(
                    &p.reference,
                    &p.wrong,
                    &db,
                    &Params::new(),
                    &OptSigmaOptions::default(),
                )
                .ok()
                .map(|(c, t)| (c.size(), t.total))
            }) as Runner,
        ),
    ];
    let mut rows = Vec::new();
    for (name, run) in runners {
        let mut total_time = Duration::ZERO;
        let mut total_size = 0usize;
        let mut solved = 0usize;
        for p in &pairs {
            if let Some((size, time)) = run(p) {
                total_time += time;
                total_size += size;
                solved += 1;
            }
        }
        rows.push(Table4Row {
            algorithm: name.to_owned(),
            mean_runtime: if solved > 0 {
                total_time / solved as u32
            } else {
                Duration::ZERO
            },
            mean_size: if solved > 0 {
                total_size as f64 / solved as f64
            } else {
                0.0
            },
            pairs: solved,
        });
    }
    rows
}

// ---------------------------------------------------------------- Figure 3

/// One row of Figure 3: Optσ component times vs query complexity.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Question number.
    pub question: usize,
    /// Number of operators in the wrong query.
    pub operators: usize,
    /// Number of difference operators.
    pub differences: usize,
    /// Height of the query tree.
    pub height: usize,
    /// Raw evaluation time.
    pub raw: Duration,
    /// Provenance (selection-pushed) time.
    pub prov_sp: Duration,
    /// Solver time.
    pub solver: Duration,
    /// Total Optσ time.
    pub total: Duration,
}

/// Run the Figure 3 experiment.
pub fn fig3(tuples: usize, mutations_per_question: usize, seed: u64) -> Vec<Fig3Row> {
    let db = university_database(&UniversityConfig::with_total(tuples));
    let workload = course_workload(mutations_per_question, seed);
    let mut rows = Vec::new();
    for p in distinguished_pairs(&workload, &db) {
        if let Ok((_, t)) = smallest_witness_optsigma(
            &p.reference,
            &p.wrong,
            &db,
            &Params::new(),
            &OptSigmaOptions::default(),
        ) {
            let m = QueryMetrics::of(&p.wrong);
            rows.push(Fig3Row {
                question: p.question,
                operators: m.operators,
                differences: m.differences,
                height: m.height,
                raw: t.raw_eval,
                prov_sp: t.provenance,
                solver: t.solver,
                total: t.total,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Figure 4

/// One row of Figure 4: mean per-component time at one instance size.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Instance size in tuples.
    pub tuples: usize,
    /// Mean raw `Q1 − Q2` evaluation time.
    pub raw: Duration,
    /// Mean provenance time without selection push-down (all output tuples).
    pub prov_all: Duration,
    /// Mean provenance time with the pushed-down single-tuple selection.
    pub prov_sp: Duration,
    /// Mean solver time for `Naive-128` enumeration.
    pub solver_naive_128: Duration,
    /// Mean solver time for the optimizing strategy on one tuple.
    pub solver_opt: Duration,
    /// Mean solver time for the optimizing strategy over all differing tuples.
    pub solver_opt_all: Duration,
}

/// Run the Figure 4 experiment over the given instance sizes.
pub fn fig4(sizes: &[usize], mutations_per_question: usize, seed: u64) -> Vec<Fig4Row> {
    let workload = course_workload(mutations_per_question, seed);
    let mut rows = Vec::new();
    for &tuples in sizes {
        let db = university_database(&UniversityConfig::with_total(tuples));
        let pairs = distinguished_pairs(&workload, &db);
        let mut acc = [Duration::ZERO; 6];
        let mut n = 0u32;
        for p in &pairs {
            // prov-sp + solver-opt via Optσ with push-down.
            let Ok((_, t_sp)) = smallest_witness_optsigma(
                &p.reference,
                &p.wrong,
                &db,
                &Params::new(),
                &OptSigmaOptions::default(),
            ) else {
                continue;
            };
            // prov-all + raw via Basic (annotates both difference directions),
            // solver-naive-128 via the enumeration strategy on one tuple, and
            // solver-opt-all via Basic's solver phase.
            let Ok((_, t_all)) = smallest_counterexample_basic(
                &p.reference,
                &p.wrong,
                &db,
                &Params::new(),
                &BasicOptions::default(),
            ) else {
                continue;
            };
            let Ok((_, t_naive)) = smallest_witness_optsigma(
                &p.reference,
                &p.wrong,
                &db,
                &Params::new(),
                &OptSigmaOptions {
                    strategy: SolverStrategy::Enumerate { max_models: 128 },
                    ..Default::default()
                },
            ) else {
                continue;
            };
            acc[0] += t_all.raw_eval;
            acc[1] += t_all.provenance;
            acc[2] += t_sp.provenance;
            acc[3] += t_naive.solver;
            acc[4] += t_sp.solver;
            acc[5] += t_all.solver;
            n += 1;
        }
        if n == 0 {
            continue;
        }
        rows.push(Fig4Row {
            tuples,
            raw: acc[0] / n,
            prov_all: acc[1] / n,
            prov_sp: acc[2] / n,
            solver_naive_128: acc[3] / n,
            solver_opt: acc[4] / n,
            solver_opt_all: acc[5] / n,
        });
    }
    rows
}

// ---------------------------------------------------------------- Figure 5

/// One row of Figure 5: witness size and solver time per solver strategy.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Strategy label ("Naive-1", ..., "Naive-128", "Opt").
    pub strategy: String,
    /// Mean witness size.
    pub mean_size: f64,
    /// Mean solver time.
    pub mean_solver_time: Duration,
}

/// Run the Figure 5 experiment (solver strategy ablation).
pub fn fig5(tuples: usize, mutations_per_question: usize, seed: u64) -> Vec<Fig5Row> {
    let db = university_database(&UniversityConfig::with_total(tuples));
    let workload = course_workload(mutations_per_question, seed);
    let pairs = distinguished_pairs(&workload, &db);
    let mut strategies: Vec<(String, SolverStrategy)> = [1usize, 2, 8, 32, 128]
        .iter()
        .map(|&k| {
            (
                format!("Naive-{k}"),
                SolverStrategy::Enumerate { max_models: k },
            )
        })
        .collect();
    strategies.push(("Opt".to_owned(), SolverStrategy::Optimize));

    let mut rows = Vec::new();
    for (label, strategy) in strategies {
        let mut sizes = 0usize;
        let mut time = Duration::ZERO;
        let mut n = 0u32;
        for p in &pairs {
            if let Ok((cex, t)) = smallest_witness_optsigma(
                &p.reference,
                &p.wrong,
                &db,
                &Params::new(),
                &OptSigmaOptions {
                    strategy,
                    ..Default::default()
                },
            ) {
                sizes += cex.size();
                time += t.solver;
                n += 1;
            }
        }
        if n > 0 {
            rows.push(Fig5Row {
                strategy: label,
                mean_size: sizes as f64 / n as f64,
                mean_solver_time: time / n,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Figure 6

/// One row of Figure 6: per-query TPC-H component times for both aggregate
/// algorithms.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Query name.
    pub query: String,
    /// Which wrong variant (0 or 1).
    pub variant: usize,
    /// Agg-Basic component times (raw, provenance, solver), `None` on timeout.
    pub agg_basic: Option<(Duration, Duration, Duration, usize)>,
    /// Agg-Opt component times (raw, provenance, solver) and size.
    pub agg_opt: Option<(Duration, Duration, Duration, usize)>,
}

/// Run the Figure 6 experiment at the given TPC-H scale factor.
pub fn fig6(scale_factor: f64, seed: u64) -> Vec<Fig6Row> {
    let db = tpch_database(&TpchConfig { scale_factor, seed });
    let mut rows = Vec::new();
    for exp in tpch_experiments() {
        for (variant, wrong) in exp.wrong.iter().enumerate() {
            let basic = smallest_counterexample_agg_basic(
                &exp.reference,
                wrong,
                &db,
                &Params::new(),
                &AggBasicOptions::default(),
            )
            .ok()
            .map(|(c, t)| (t.raw_eval, t.provenance, t.solver, c.size()));
            let opt = smallest_counterexample_agg_opt(
                &exp.reference,
                wrong,
                &db,
                &Params::new(),
                &AggOptOptions::default(),
            )
            .ok()
            .map(|(c, t)| (t.raw_eval, t.provenance, t.solver, c.size()));
            rows.push(Fig6Row {
                query: exp.name.to_owned(),
                variant,
                agg_basic: basic,
                agg_opt: opt,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Figure 7

/// The Figure 7 result: Agg-Basic vs Agg-Param on Q18.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// Mean solver runtime without parameterization.
    pub basic_solver_time: Duration,
    /// Mean counterexample size without parameterization.
    pub basic_size: f64,
    /// Mean solver runtime with parameterization.
    pub param_solver_time: Duration,
    /// Mean counterexample size with parameterization.
    pub param_size: f64,
    /// Number of (reference, wrong) pairs measured.
    pub pairs: usize,
}

/// Run the Figure 7 experiment (parameterization effectiveness on Q18).
pub fn fig7(scale_factor: f64, seed: u64) -> Fig7Result {
    let db = tpch_database(&TpchConfig { scale_factor, seed });
    let q18 = tpch_experiments()
        .into_iter()
        .find(|e| e.name == "Q18")
        .expect("Q18 exists");
    let mut original = Params::new();
    original.insert("qty".into(), Value::Int(120));

    let mut basic_time = Duration::ZERO;
    let mut basic_size = 0usize;
    let mut param_time = Duration::ZERO;
    let mut param_size = 0usize;
    let mut n = 0usize;
    for (wrong_fixed, wrong_param) in q18.wrong.iter().zip(q18_parameterized_wrong().iter()) {
        let basic = smallest_counterexample_agg_basic(
            &q18.reference,
            wrong_fixed,
            &db,
            &Params::new(),
            &AggBasicOptions::default(),
        );
        let param = smallest_counterexample_agg_param(
            &q18_parameterized(),
            wrong_param,
            &db,
            &original,
            &AggParamOptions::default(),
        );
        if let (Ok((cb, tb)), Ok((cp, tp))) = (basic, param) {
            basic_time += tb.solver;
            basic_size += cb.size();
            param_time += tp.solver;
            param_size += cp.size();
            n += 1;
        }
    }
    Fig7Result {
        basic_solver_time: if n > 0 {
            basic_time / n as u32
        } else {
            Duration::ZERO
        },
        basic_size: if n > 0 {
            basic_size as f64 / n as f64
        } else {
            0.0
        },
        param_solver_time: if n > 0 {
            param_time / n as u32
        } else {
            Duration::ZERO
        },
        param_size: if n > 0 {
            param_size as f64 / n as f64
        } else {
            0.0
        },
        pairs: n,
    }
}

/// Convenience: the university database used in several benches.
pub fn university(tuples: usize) -> Database {
    university_database(&UniversityConfig::with_total(tuples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_discovery_grows_with_instance_size() {
        let rows = table3(&[60, 400], 4, 11);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].discovered >= rows[0].discovered);
        assert!(rows[1].discovered <= rows[1].total_wrong_queries);
    }

    #[test]
    fn table4_optsigma_is_faster_with_equal_size() {
        let rows = table4(300, 2, 5);
        assert_eq!(rows.len(), 2);
        let basic = &rows[0];
        let opt = &rows[1];
        assert!(basic.pairs > 0 && opt.pairs > 0);
        // Same (or nearly the same) counterexample quality…
        assert!((basic.mean_size - opt.mean_size).abs() < 1.0 + f64::EPSILON);
        // …and Optσ is not slower (usually much faster).
        assert!(opt.mean_runtime <= basic.mean_runtime * 2);
    }

    #[test]
    fn fig5_opt_dominates_naive_on_size() {
        let rows = fig5(300, 2, 5);
        let opt = rows.iter().find(|r| r.strategy == "Opt").unwrap();
        let naive1 = rows.iter().find(|r| r.strategy == "Naive-1").unwrap();
        let naive128 = rows.iter().find(|r| r.strategy == "Naive-128").unwrap();
        assert!(opt.mean_size <= naive1.mean_size);
        assert!(opt.mean_size <= naive128.mean_size);
        assert!(naive128.mean_size <= naive1.mean_size);
    }

    #[test]
    fn fig6_and_fig7_run_at_tiny_scale() {
        let rows = fig6(0.0006, 3);
        assert!(!rows.is_empty());
        assert!(rows.iter().any(|r| r.agg_opt.is_some()));
        let f7 = fig7(0.0008, 3);
        if f7.pairs > 0 {
            assert!(f7.param_size <= f7.basic_size);
        }
    }
}
