//! # ratest-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Sections 7 and 8). The [`workload`] module builds the
//! query workloads (reference + mutated wrong queries), [`experiments`] runs
//! each experiment at a configurable scale and returns structured results,
//! and the `reproduce` binary prints them as text tables.
//!
//! Scales default to laptop-friendly sizes; pass larger sizes to the binary
//! to push towards the paper's 100 k-tuple / scale-1 settings (runtimes grow
//! accordingly). EXPERIMENTS.md records the shapes observed at the default
//! scales against the paper's reported numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod render;
pub mod workload;

pub use experiments::*;
pub use workload::{course_workload, CoursePair};
