//! `reproduce` — regenerate the tables and figures of the paper's evaluation.
//!
//! ```text
//! reproduce [experiment] [--scale small|medium|paper]
//!
//! experiment: table3 | table4 | fig3 | fig4 | fig5 | fig6 | fig7
//!           | table5 | fig8 | fig9 | fig10 | all   (default: all)
//! ```
//!
//! The `small` scale (default) finishes in well under a minute; `medium`
//! takes a few minutes; `paper` approaches the paper's sizes (100k-tuple
//! course instances) and can take much longer.

use ratest_bench::render::*;
use ratest_bench::*;
use ratest_userstudy::{
    render_figure10, render_figure8, render_figure9, render_table5, simulate, StudyConfig,
};

struct Scale {
    table3_sizes: Vec<usize>,
    table4_tuples: usize,
    fig_sizes: Vec<usize>,
    mutations: usize,
    tpch_sf: f64,
}

fn scale(name: &str) -> Scale {
    match name {
        "paper" => Scale {
            table3_sizes: vec![1_000, 4_000, 10_000, 40_000, 100_000],
            table4_tuples: 100_000,
            fig_sizes: vec![1_000, 4_000, 10_000, 40_000, 100_000],
            mutations: DEFAULT_MUTATIONS_PER_QUESTION,
            tpch_sf: 0.01,
        },
        "medium" => Scale {
            table3_sizes: vec![1_000, 4_000, 10_000],
            table4_tuples: 10_000,
            fig_sizes: vec![1_000, 4_000, 10_000],
            mutations: 4,
            tpch_sf: 0.003,
        },
        _ => Scale {
            table3_sizes: vec![200, 500, 1_000],
            table4_tuples: 500,
            fig_sizes: vec![200, 500, 1_000],
            mutations: 3,
            tpch_sf: 0.001,
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_owned();
    let mut scale_name = "small".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                if let Some(s) = it.next() {
                    scale_name = s.clone();
                }
            }
            other => experiment = other.to_owned(),
        }
    }
    let s = scale(&scale_name);
    let seed = 2019;
    let run_all = experiment == "all";
    println!("# RATest-rs experiment reproduction (scale: {scale_name})\n");

    if run_all || experiment == "table3" {
        println!(
            "{}",
            render_table3(&table3(&s.table3_sizes, s.mutations, seed))
        );
    }
    if run_all || experiment == "table4" {
        println!(
            "{}",
            render_table4(&table4(s.table4_tuples, s.mutations.min(3), seed))
        );
    }
    if run_all || experiment == "fig3" {
        println!(
            "{}",
            render_fig3(&fig3(s.table4_tuples, s.mutations.min(3), seed))
        );
    }
    if run_all || experiment == "fig4" {
        println!(
            "{}",
            render_fig4(&fig4(&s.fig_sizes, s.mutations.min(2), seed))
        );
    }
    if run_all || experiment == "fig5" {
        println!(
            "{}",
            render_fig5(&fig5(s.table4_tuples, s.mutations.min(3), seed))
        );
    }
    if run_all || experiment == "fig6" {
        println!("{}", render_fig6(&fig6(s.tpch_sf, seed)));
    }
    if run_all || experiment == "fig7" {
        println!("{}", render_fig7(&fig7(s.tpch_sf, seed)));
    }
    let study = simulate(&StudyConfig::default());
    if run_all || experiment == "fig8" {
        println!("{}", render_figure8(&study));
    }
    if run_all || experiment == "table5" {
        println!("{}", render_table5(&study));
    }
    if run_all || experiment == "fig9" {
        println!("{}", render_figure9(&study));
    }
    if run_all || experiment == "fig10" {
        println!("{}", render_figure10(&study));
    }
}
