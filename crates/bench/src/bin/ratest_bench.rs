//! `ratest-bench` — the committed perf trajectory.
//!
//! Measures seven end-to-end shapes and emits one schema-versioned JSON
//! document (`ratest-bench/5`):
//!
//! * `search_latency` — counterexample-search latency over the course
//!   workload, bucketed by the algorithm the pipeline dispatched to,
//! * `grade_throughput` — cold-vs-warm batch grading of a synthetic cohort
//!   (the warm pass must be answered entirely from the verdict cache),
//! * `serve_roundtrip` — a scripted `grade serve` conversation driven
//!   in-process,
//! * `serve_load` — a synthetic semester replayed through the v3 daemon:
//!   all 8 course questions, generated cohorts, a resubmission flood, a
//!   warm-state cap and a persistent verdict store. Two fresh runs must be
//!   byte-identical, warm state must stay under the cap throughout, and a
//!   restarted daemon reusing the store must re-grade with zero searches,
//! * `repair_latency` — provenance-directed repair over every wrong course
//!   pair that yields a counterexample (enumerate → rank → validate),
//! * `solver_incremental` — the same course workload solved twice, once on
//!   the persistent incremental SAT layer (the pipeline default) and once
//!   forcing from-scratch solves; outcomes must match and the incremental
//!   leg must do strictly less search work,
//! * `delta_eval` — the same course workload explained twice, once with the
//!   delta engine answering candidate sub-instances (the pipeline default)
//!   and once forcing scratch re-evaluation of every candidate; verdicts
//!   must be byte-identical and the delta leg must scan strictly fewer
//!   evaluator rows.
//!
//! Every section separates **deterministic counters** (registry counters,
//! gauges, flattened histogram totals — byte-identical across identical
//! runs) from **volatile** wall-clock timings. The committed
//! `BENCH_baseline.json` holds only the deterministic part (`--bless`), and
//! `--check` re-validates a fresh run against it, so CI catches silent
//! changes in work done (rows scanned, solver conflicts, cache behaviour)
//! without ever comparing timings. See `BENCH_SCHEMA.md`.
//!
//! ```text
//! ratest-bench [--quick] [--out PATH]        run, write the full document
//! ratest-bench [--quick] --bless PATH        run, write the counters-only baseline
//! ratest-bench --check OUT --baseline BASE   validate + diff two documents
//! ```

use ratest_bench::course_workload;
use ratest_core::session::Session;
use ratest_core::RatestOptions;
use ratest_datagen::{university_database, UniversityConfig};
use ratest_grader::json::Json;
use ratest_grader::{generate_cohort, CohortConfig, Grader, GraderConfig};
use ratest_telemetry::{MetricsHandle, MetricsRegistry, MetricsSnapshot};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Schema identifier; bump on any shape change (`BENCH_SCHEMA.md` documents
/// the format).
const SCHEMA: &str = "ratest-bench/5";
/// The section names, in document order; `--check` requires all of them.
const SECTIONS: [&str; 7] = [
    "search_latency",
    "grade_throughput",
    "serve_roundtrip",
    "serve_load",
    "repair_latency",
    "solver_incremental",
    "delta_eval",
];

const USAGE: &str = "usage: ratest-bench [--quick] [--out PATH]\n\
       ratest-bench [--quick] --bless PATH\n\
       ratest-bench --check OUT --baseline BASE";

struct Args {
    quick: bool,
    out: Option<String>,
    bless: Option<String>,
    check: Option<String>,
    baseline: Option<String>,
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: None,
        bless: None,
        check: None,
        baseline: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = Some(value("--out")?),
            "--bless" => args.bless = Some(value("--bless")?),
            "--check" => args.check = Some(value("--check")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.check.is_some() != args.baseline.is_some() {
        return Err("--check and --baseline go together".into());
    }
    if args.check.is_some() && (args.out.is_some() || args.bless.is_some()) {
        return Err("--check does not run the benchmark; drop --out/--bless".into());
    }
    Ok(args)
}

/// One measured section: deterministic counters + volatile timings.
struct Section {
    counters: BTreeMap<String, i64>,
    volatile: Vec<(&'static str, Json)>,
}

impl Section {
    fn to_json(&self, include_volatile: bool) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v)))
                .collect(),
        );
        let mut pairs = vec![("counters", counters)];
        if include_volatile {
            pairs.push((
                "volatile",
                Json::Obj(
                    self.volatile
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }
}

/// Flatten a registry snapshot into one deterministic name → integer map:
/// counters as-is, gauges alongside them, histograms as `<name>.count` /
/// `<name>.sum`. Volatile durations are deliberately dropped.
fn flatten(snapshot: &MetricsSnapshot) -> BTreeMap<String, i64> {
    let mut out = BTreeMap::new();
    for (name, v) in &snapshot.counters {
        out.insert(name.clone(), *v as i64);
    }
    for (name, v) in &snapshot.gauges {
        out.insert(name.clone(), *v);
    }
    for (name, h) in &snapshot.histograms {
        out.insert(format!("{name}.count"), h.count as i64);
        out.insert(format!("{name}.sum"), h.sum as i64);
    }
    out
}

fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e3 * 1000.0).round() / 1000.0
}

/// Counterexample-search latency over the course workload, per dispatched
/// algorithm. One session per pair (cold prepares included in the per-run
/// wall time); one shared registry accumulates the whole section.
fn search_latency(quick: bool) -> Section {
    let (mutations, tuples) = if quick { (1, 40) } else { (2, 60) };
    let db = university_database(&UniversityConfig {
        total_tuples: tuples,
        seed: 2019,
        ..Default::default()
    });
    let registry = Arc::new(MetricsRegistry::new());
    let mut per_algorithm: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for pair in course_workload(mutations, 7) {
        let session = Session::builder(db.clone())
            .metrics(registry.clone())
            .build();
        let start = Instant::now();
        match session.explain_pair(&pair.reference, &pair.wrong) {
            Ok(outcome) => {
                let slot = per_algorithm
                    .entry(format!("{:?}", outcome.algorithm_used))
                    .or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += start.elapsed().as_secs_f64() * 1e3;
            }
            // Pairs the pipeline cannot explain (unsupported shapes) are a
            // deterministic property of the workload; count them.
            Err(_) => registry.counter_inc("search.unsupported_pairs"),
        }
    }
    for (algorithm, (runs, _)) in &per_algorithm {
        registry.counter_add(&format!("search.runs.{algorithm}"), *runs);
    }
    let volatile = vec![(
        "per_algorithm_ms",
        Json::Obj(
            per_algorithm
                .iter()
                .map(|(algorithm, (runs, total))| {
                    (
                        algorithm.clone(),
                        Json::obj(vec![
                            ("runs", Json::Int(*runs as i64)),
                            ("total_ms", Json::Float((total * 1000.0).round() / 1000.0)),
                        ]),
                    )
                })
                .collect(),
        ),
    )];
    Section {
        counters: flatten(&registry.snapshot()),
        volatile,
    }
}

/// Cold-vs-warm batch grading throughput on a synthetic cohort. Workers are
/// pinned to 1 and the per-job timeout disabled so the counters are
/// scheduling-independent; the warm pass must run zero searches.
fn grade_throughput(quick: bool) -> Section {
    let cohort = generate_cohort(&CohortConfig {
        question: 3,
        class_size: if quick { 12 } else { 48 },
        db_tuples: if quick { 24 } else { 60 },
        seed: 7,
        ..Default::default()
    });
    let grader = Grader::new(GraderConfig {
        workers: 1,
        per_job_timeout: Duration::ZERO,
        options: Default::default(),
        repair: None,
        warm_cap: None,
    });
    let cold_start = Instant::now();
    let cold = grader
        .grade("cold", &cohort.reference, &cohort.db, &cohort.submissions)
        .expect("cold batch grades");
    let cold_wall = cold_start.elapsed();
    let warm_start = Instant::now();
    let warm = grader
        .grade("warm", &cohort.reference, &cohort.db, &cohort.submissions)
        .expect("warm batch grades");
    let warm_wall = warm_start.elapsed();
    assert_eq!(
        warm.stats.pipeline_runs, 0,
        "warm re-grade must be answered from the verdict cache"
    );

    let mut counters = flatten(&grader.metrics_snapshot());
    counters.insert("bench.cohort_size".into(), cohort.submissions.len() as i64);
    counters.insert(
        "bench.cold_pipeline_runs".into(),
        cold.stats.pipeline_runs as i64,
    );
    counters.insert("bench.warm_cache_hits".into(), warm.stats.cache_hits as i64);
    let throughput = |n: usize, wall: Duration| {
        let s = wall.as_secs_f64();
        if s > 0.0 {
            ((n as f64 / s) * 1000.0).round() / 1000.0
        } else {
            0.0
        }
    };
    Section {
        counters,
        volatile: vec![
            ("cold_ms", Json::Float(ms(cold_wall))),
            ("warm_ms", Json::Float(ms(warm_wall))),
            (
                "cold_submissions_per_s",
                Json::Float(throughput(cohort.submissions.len(), cold_wall)),
            ),
            (
                "warm_submissions_per_s",
                Json::Float(throughput(cohort.submissions.len(), warm_wall)),
            ),
        ],
    }
}

/// Provenance-directed repair latency: for every wrong course pair the
/// instance distinguishes, run the full repair pipeline (enumerate → rank →
/// validate) against the counterexample. One shared registry accumulates the
/// `repair.*` counters for the whole section.
fn repair_latency(quick: bool) -> Section {
    let (mutations, tuples) = if quick { (1, 40) } else { (2, 60) };
    let db = university_database(&UniversityConfig {
        total_tuples: tuples,
        seed: 2019,
        ..Default::default()
    });
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = MetricsHandle::new(registry.clone());
    let options = ratest_repair::RepairOptions::default();
    let mut runs = 0u64;
    let mut recovered = 0u64;
    let mut wall = Duration::ZERO;
    for pair in course_workload(mutations, 7) {
        let session = Session::builder(db.clone()).build();
        let Ok(outcome) = session.explain_pair(&pair.reference, &pair.wrong) else {
            continue;
        };
        let Some(cex) = outcome.counterexample else {
            // The instance does not distinguish this pair, so there is no
            // Wrong verdict to repair; Table 3 accounts for these.
            continue;
        };
        let start = Instant::now();
        let suggestions = ratest_repair::suggest_repairs_on(
            &pair.wrong,
            &pair.reference,
            &cex,
            &db,
            &options,
            &metrics,
        );
        wall += start.elapsed();
        runs += 1;
        if !suggestions.is_empty() {
            recovered += 1;
        }
    }
    let mut counters = flatten(&registry.snapshot());
    counters.insert("bench.repair_runs".into(), runs as i64);
    counters.insert("bench.repairs_with_suggestion".into(), recovered as i64);
    let mean = if runs > 0 {
        ((ms(wall) / runs as f64) * 1000.0).round() / 1000.0
    } else {
        0.0
    };
    Section {
        counters,
        volatile: vec![
            ("total_ms", Json::Float(ms(wall))),
            ("mean_repair_ms", Json::Float(mean)),
        ],
    }
}

/// Incremental-vs-scratch solver work on the course workload. Runs the same
/// explains twice — once on the persistent incremental SAT layer (the
/// pipeline default) and once forcing from-scratch solves — and records both
/// `solver.*` counter sets plus the per-counter savings. The two legs must
/// produce identical outcomes (the incremental layer's determinism
/// contract), and the incremental leg must do strictly less search work.
///
/// Always runs at the full workload scale, `--quick` included: the quick
/// scale's instances are so small that the bound probes decide by unit
/// propagation alone, leaving no decisions for the incremental layer to
/// save, and the committed baseline must pin the non-degenerate comparison.
fn solver_incremental() -> Section {
    let db = university_database(&UniversityConfig {
        total_tuples: 60,
        seed: 2019,
        ..Default::default()
    });
    let mut counters = BTreeMap::new();
    let mut outcomes: Vec<Vec<String>> = Vec::new();
    let mut walls = Vec::new();
    for (leg, incremental) in [("incremental", true), ("scratch", false)] {
        let registry = Arc::new(MetricsRegistry::new());
        let mut verdicts = Vec::new();
        let start = Instant::now();
        for pair in course_workload(2, 7) {
            let session = Session::builder(db.clone())
                .options(RatestOptions {
                    incremental_solver: incremental,
                    ..Default::default()
                })
                .metrics(registry.clone())
                .build();
            verdicts.push(match session.explain_pair(&pair.reference, &pair.wrong) {
                // Pin the exact tuples and both query results, not just the
                // verdict; `Database` itself has no canonical debug order.
                Ok(outcome) => match outcome.counterexample {
                    Some(cex) => format!(
                        "cex:{:?}|q1:{:?}|q2:{:?}",
                        cex.subinstance.selection,
                        cex.q1_result.rows(),
                        cex.q2_result.rows()
                    ),
                    None => "indistinguishable".into(),
                },
                Err(_) => "unsupported".into(),
            });
        }
        walls.push(start.elapsed());
        for (name, value) in flatten(&registry.snapshot()) {
            if name.starts_with("solver.") {
                counters.insert(format!("{leg}.{name}"), value);
            }
        }
        outcomes.push(verdicts);
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "incremental and scratch solves must reach identical outcomes"
    );
    for key in [
        "solver.decisions",
        "solver.conflicts",
        "solver.propagations",
    ] {
        let warm = counters
            .get(&format!("incremental.{key}"))
            .copied()
            .unwrap_or(0);
        let cold = counters
            .get(&format!("scratch.{key}"))
            .copied()
            .unwrap_or(0);
        assert!(
            warm < cold,
            "incremental solving must save work on the course workload: \
             {key} incremental={warm} scratch={cold}"
        );
        counters.insert(format!("saved.{key}"), cold - warm);
    }
    counters.insert("bench.pairs".into(), outcomes[0].len() as i64);
    Section {
        counters,
        volatile: vec![
            ("incremental_ms", Json::Float(ms(walls[0]))),
            ("scratch_ms", Json::Float(ms(walls[1]))),
        ],
    }
}

/// Delta-vs-scratch candidate evaluation on the course workload. Runs the
/// same explains twice — once with the delta engine answering candidate
/// sub-instances (the pipeline default) and once forcing scratch
/// re-evaluation of every candidate — and records both legs' evaluator and
/// `delta.*` counters plus the rows-scanned savings. The two legs must
/// produce identical outcomes (delta replay is byte-identical by contract),
/// and the delta leg must scan strictly fewer evaluator rows.
fn delta_eval() -> Section {
    let db = university_database(&UniversityConfig {
        total_tuples: 60,
        seed: 2019,
        ..Default::default()
    });
    let mut counters = BTreeMap::new();
    let mut outcomes: Vec<Vec<String>> = Vec::new();
    let mut walls = Vec::new();
    for (leg, delta) in [("delta", true), ("scratch", false)] {
        let registry = Arc::new(MetricsRegistry::new());
        let mut verdicts = Vec::new();
        let start = Instant::now();
        for pair in course_workload(2, 7) {
            let session = Session::builder(db.clone())
                .options(RatestOptions {
                    delta_eval: delta,
                    ..Default::default()
                })
                .metrics(registry.clone())
                .build();
            verdicts.push(match session.explain_pair(&pair.reference, &pair.wrong) {
                Ok(outcome) => match outcome.counterexample {
                    Some(cex) => format!(
                        "cex:{:?}|q1:{:?}|q2:{:?}",
                        cex.subinstance.selection,
                        cex.q1_result.rows(),
                        cex.q2_result.rows()
                    ),
                    None => "indistinguishable".into(),
                },
                Err(_) => "unsupported".into(),
            });
        }
        walls.push(start.elapsed());
        for (name, value) in flatten(&registry.snapshot()) {
            if name.starts_with("ra.eval.") || name.starts_with("delta.") {
                counters.insert(format!("{leg}.{name}"), value);
            }
        }
        outcomes.push(verdicts);
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "delta and scratch candidate evaluation must reach identical outcomes"
    );
    let on = counters
        .get("delta.ra.eval.rows_scanned")
        .copied()
        .unwrap_or(0);
    let off = counters
        .get("scratch.ra.eval.rows_scanned")
        .copied()
        .unwrap_or(0);
    assert!(
        on < off,
        "delta evaluation must scan strictly fewer rows on the course \
         workload: delta={on} scratch={off}"
    );
    counters.insert("saved.ra.eval.rows_scanned".into(), off - on);
    counters.insert("bench.pairs".into(), outcomes[0].len() as i64);
    Section {
        counters,
        volatile: vec![
            ("delta_ms", Json::Float(ms(walls[0]))),
            ("scratch_ms", Json::Float(ms(walls[1]))),
        ],
    }
}

/// A cloneable writer so the in-process daemon's output can be read back.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Round-trip a scripted `grade serve` conversation in-process: prepare a
/// reference, grade two distinct submissions plus a warm repeat, read the
/// daemon's own stats back as this section's counters.
fn serve_roundtrip() -> Section {
    let script = r#"{"cmd":"prepare","ref":"q3","question":3,"db_tuples":24,"seed":7}
{"cmd":"grade","ref":"q3","id":"s1.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))"}
{"cmd":"grade","ref":"q3","id":"s2.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name](rename[s](Student), rename[r](Registration)))"}
{"cmd":"grade","ref":"q3","id":"s1-again.ra","lang":"ra","source":"project[s.name, s.major](join[s.name = r.name and r.dept = 'CS'](rename[s](Student), rename[r](Registration)))"}
{"cmd":"stats","ref":"q3"}
{"cmd":"shutdown"}
"#;
    let out = SharedBuf::default();
    let start = Instant::now();
    ratest_grader::serve::serve(script.as_bytes(), out.clone()).expect("in-process serve");
    let wall = start.elapsed();
    let output = String::from_utf8(out.0.lock().unwrap().clone()).expect("serve output is UTF-8");

    let docs: Vec<Json> = output
        .lines()
        .map(|l| Json::parse(l).expect("daemon emits JSON lines"))
        .collect();
    let requests = script.lines().count() as i64;
    let stats = docs
        .iter()
        .find(|d| d.get("cmd").and_then(Json::as_str) == Some("stats"))
        .expect("conversation includes a stats reply");
    let mut counters = BTreeMap::new();
    counters.insert("serve.requests".into(), requests);
    counters.insert("serve.responses".into(), docs.len() as i64 - 1);
    for field in ["graded", "searches", "cache_hits", "cache_misses"] {
        counters.insert(
            format!("serve.stats.{field}"),
            stats.get(field).and_then(Json::as_i64).unwrap_or(-1),
        );
    }
    Section {
        counters,
        volatile: vec![
            ("total_ms", Json::Float(ms(wall))),
            (
                "mean_request_ms",
                Json::Float(((ms(wall) / requests as f64) * 1000.0).round() / 1000.0),
            ),
        ],
    }
}

/// Build the synthetic-semester NDJSON transcript: per course question a
/// `prepare`, the generated cohort's grades (rendered back to RA surface
/// syntax), and a per-reference `stats` probe taken *before* the next
/// prepare can evict the reference; question 3 additionally gets an
/// adversarial flood of one duplicated wrong answer. Ends with daemon-scope
/// `stats`, `sync` and `shutdown`.
fn semester_script(class_size: usize, db_tuples: usize) -> (String, i64) {
    let mut script = String::from("{\"cmd\":\"hello\"}\n");
    let mut grades = 0i64;
    for q in 1..=8usize {
        let cohort = generate_cohort(&CohortConfig {
            question: q,
            class_size,
            db_tuples,
            seed: 7,
            ..Default::default()
        });
        script.push_str(
            &Json::obj(vec![
                ("cmd", Json::str("prepare")),
                ("ref", Json::str(format!("q{q}"))),
                ("question", Json::Int(q as i64)),
                ("db_tuples", Json::Int(db_tuples as i64)),
                ("seed", Json::Int(7)),
            ])
            .render(),
        );
        script.push('\n');
        let grade_line = |id: String, author: &str, query: &ratest_ra::ast::Query| {
            Json::obj(vec![
                ("cmd", Json::str("grade")),
                ("ref", Json::str(format!("q{q}"))),
                ("id", Json::str(id)),
                ("author", Json::str(author)),
                ("lang", Json::str("ra")),
                (
                    "source",
                    Json::str(ratest_ra::display::to_surface_string(query)),
                ),
            ])
            .render()
        };
        for s in &cohort.submissions {
            script.push_str(&grade_line(format!("q{q}-{}", s.id), &s.author, &s.query));
            script.push('\n');
            grades += 1;
        }
        if q == 3 {
            // The flood: one wrong answer resubmitted over and over — the
            // daemon must answer every copy (dedup, not drop).
            let wrong = cohort
                .submissions
                .iter()
                .find(|s| s.query != cohort.reference)
                .expect("a generated cohort contains wrong answers");
            for i in 0..10 {
                script.push_str(&grade_line(
                    format!("q3-flood-{i:02}"),
                    "flood",
                    &wrong.query,
                ));
                script.push('\n');
                grades += 1;
            }
        }
        script.push_str(&format!("{{\"cmd\":\"stats\",\"ref\":\"q{q}\"}}\n"));
    }
    script.push_str("{\"cmd\":\"stats\"}\n{\"cmd\":\"sync\"}\n{\"cmd\":\"shutdown\"}\n");
    (script, grades)
}

/// Semester-scale serving under load (the ISSUE 9 harness): replay the
/// synthetic semester through `serve_with` with a warm-state cap of 4 refs
/// and an on-disk verdict store. Pins three contracts as hard asserts:
/// byte-identical output across two fresh runs, warm state bounded by the
/// cap at every point in the conversation, and a restarted daemon reusing
/// the first run's store re-grading the whole semester with zero
/// counterexample searches.
fn serve_load(quick: bool) -> Section {
    use ratest_grader::serve::{serve_with, ServeConfig};

    let (class_size, db_tuples) = if quick { (6, 24) } else { (16, 40) };
    let warm_cap = 4usize;
    let (script, grades) = semester_script(class_size, db_tuples);
    let dir = std::env::temp_dir().join(format!("ratest-bench-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir for the serve_load store");

    let run_leg = |cache: std::path::PathBuf| {
        let out = SharedBuf::default();
        let start = Instant::now();
        serve_with(
            script.as_bytes(),
            out.clone(),
            ServeConfig {
                threads: 1,
                warm_cap: Some(warm_cap),
                cache: Some(cache),
                admit_timeout_ms: 30_000,
            },
        )
        .expect("serve_load leg");
        let wall = start.elapsed();
        let text = String::from_utf8(out.0.lock().unwrap().clone()).expect("UTF-8 output");
        (text, wall)
    };

    let (cold, cold_wall) = run_leg(dir.join("semester.rvc"));
    let (cold2, _) = run_leg(dir.join("semester2.rvc"));
    assert_eq!(
        cold, cold2,
        "two fresh semester replays must be byte-identical"
    );
    // The restart: a brand-new daemon on the *first* run's store file.
    let (restart, restart_wall) = run_leg(dir.join("semester.rvc"));

    let parse_leg = |text: &str| {
        let docs: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("daemon emits JSON lines"))
            .collect();
        let field = |d: &Json, name: &str| d.get(name).and_then(Json::as_i64).unwrap_or(0);
        let searches: i64 = docs
            .iter()
            .filter(|d| {
                d.get("cmd").and_then(Json::as_str) == Some("stats") && d.get("ref").is_some()
            })
            .map(|d| field(d, "searches"))
            .sum();
        let cold_grades = docs
            .iter()
            .filter(|d| {
                d.get("cmd").and_then(Json::as_str) == Some("grade")
                    && d.get("from_cache").and_then(Json::as_bool) == Some(false)
            })
            .count() as i64;
        let max_warm_refs = docs
            .iter()
            .map(|d| field(d, "warm_refs"))
            .max()
            .unwrap_or(0);
        let daemon = docs
            .iter()
            .find(|d| d.get("scope").and_then(Json::as_str) == Some("daemon"))
            .expect("daemon-scope stats reply");
        (
            docs.len() as i64,
            searches,
            cold_grades,
            max_warm_refs,
            field(daemon, "evictions"),
            field(daemon, "warm_refs"),
            field(daemon, "persisted"),
        )
    };
    let (responses, cold_searches, _, max_warm_refs, evictions, warm_refs, persisted) =
        parse_leg(&cold);
    let (_, restart_searches, restart_cold_grades, ..) = parse_leg(&restart);

    assert!(
        max_warm_refs as usize <= warm_cap,
        "warm state exceeded the cap: {max_warm_refs} refs vs --warm-cap {warm_cap}"
    );
    assert_eq!(
        restart_searches, 0,
        "a restarted daemon on a populated store must re-grade search-free"
    );
    assert_eq!(
        restart_cold_grades, 0,
        "every restarted-daemon verdict must come from warm state"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let mut counters = BTreeMap::new();
    counters.insert("serve_load.questions".into(), 8);
    counters.insert("serve_load.requests".into(), script.lines().count() as i64);
    counters.insert("serve_load.responses".into(), responses);
    counters.insert("serve_load.grades".into(), grades);
    counters.insert("serve_load.cold_searches".into(), cold_searches);
    counters.insert("serve_load.restart_searches".into(), restart_searches);
    counters.insert("serve_load.warm_cap".into(), warm_cap as i64);
    counters.insert("serve_load.max_warm_refs".into(), max_warm_refs);
    counters.insert("serve_load.final_warm_refs".into(), warm_refs);
    counters.insert("serve_load.evictions".into(), evictions);
    counters.insert("serve_load.persisted".into(), persisted);
    Section {
        counters,
        volatile: vec![
            ("cold_ms", Json::Float(ms(cold_wall))),
            ("restart_ms", Json::Float(ms(restart_wall))),
        ],
    }
}

/// Run every section and assemble the document.
fn run(quick: bool, include_volatile: bool) -> Json {
    let sections = vec![
        ("search_latency".to_string(), search_latency(quick)),
        ("grade_throughput".to_string(), grade_throughput(quick)),
        ("serve_roundtrip".to_string(), serve_roundtrip()),
        ("serve_load".to_string(), serve_load(quick)),
        ("repair_latency".to_string(), repair_latency(quick)),
        ("solver_incremental".to_string(), solver_incremental()),
        ("delta_eval".to_string(), delta_eval()),
    ];
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("mode", Json::str(if quick { "quick" } else { "full" })),
        (
            "sections",
            Json::Obj(
                sections
                    .into_iter()
                    .map(|(name, s)| (name, s.to_json(include_volatile)))
                    .collect(),
            ),
        ),
    ])
}

/// Validate a document's shape; returns the per-section counter maps.
fn validate(doc: &Json, label: &str) -> Result<BTreeMap<String, BTreeMap<String, i64>>, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("{label}: schema is `{s}`, expected `{SCHEMA}`")),
        None => return Err(format!("{label}: missing `schema` field")),
    }
    if doc.get("mode").and_then(Json::as_str).is_none() {
        return Err(format!("{label}: missing `mode` field"));
    }
    let mut out = BTreeMap::new();
    for name in SECTIONS {
        let section = doc
            .get("sections")
            .and_then(|s| s.get(name))
            .ok_or_else(|| format!("{label}: missing section `{name}`"))?;
        let Some(Json::Obj(pairs)) = section.get("counters") else {
            return Err(format!("{label}: section `{name}` has no counters object"));
        };
        let mut counters = BTreeMap::new();
        for (k, v) in pairs {
            let v = v
                .as_i64()
                .ok_or_else(|| format!("{label}: {name}.counters.{k} is not an integer"))?;
            counters.insert(k.clone(), v);
        }
        out.insert(name.to_string(), counters);
    }
    Ok(out)
}

/// `--check`: validate both documents and diff every deterministic counter.
fn run_check(out_path: &str, baseline_path: &str) -> ExitCode {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path} is not JSON: {e}"))
    };
    let (current, baseline) = match (load(out_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ratest-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (current, baseline) = match (
        validate(&current, out_path),
        validate(&baseline, baseline_path),
    ) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ratest-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut diffs = 0usize;
    let mut checked = 0usize;
    for name in SECTIONS {
        let now = &current[name];
        let base = &baseline[name];
        let keys: std::collections::BTreeSet<&String> = now.keys().chain(base.keys()).collect();
        for key in keys {
            checked += 1;
            match (now.get(key), base.get(key)) {
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => {
                    eprintln!("{name}: {key} changed: baseline {b}, now {a}");
                    diffs += 1;
                }
                (Some(a), None) => {
                    eprintln!("{name}: {key} is new (= {a}, absent from baseline)");
                    diffs += 1;
                }
                (None, Some(b)) => {
                    eprintln!("{name}: {key} disappeared (baseline {b})");
                    diffs += 1;
                }
                (None, None) => unreachable!(),
            }
        }
    }
    if diffs > 0 {
        eprintln!(
            "ratest-bench: {diffs} counter(s) differ from {baseline_path} — \
             if intentional, re-bless with `ratest-bench --quick --bless {baseline_path}`"
        );
        return ExitCode::FAILURE;
    }
    println!("ratest-bench: {checked} deterministic counter(s) match {baseline_path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ratest-bench: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let (Some(out), Some(base)) = (&args.check, &args.baseline) {
        return run_check(out, base);
    }
    if let Some(path) = &args.bless {
        let doc = run(args.quick, false);
        if let Err(e) = std::fs::write(path, doc.render() + "\n") {
            eprintln!("ratest-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("blessed counters-only baseline to {path}");
        return ExitCode::SUCCESS;
    }
    let doc = run(args.quick, true);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, doc.render() + "\n") {
                eprintln!("ratest-bench: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote benchmark document to {path}");
        }
        None => println!("{}", doc.render()),
    }
    ExitCode::SUCCESS
}
