//! Workload construction: pairs of (reference query, wrong query) standing in
//! for the student submissions of Section 7.1.

use ratest_queries::course::course_questions;
use ratest_queries::mutations::{sample_mutations, Mutation};
use ratest_ra::ast::Query;
use ratest_ra::eval::evaluate;
use ratest_storage::Database;

/// One (reference, wrong) pair of the course workload.
#[derive(Debug, Clone)]
pub struct CoursePair {
    /// Question number the pair belongs to.
    pub question: usize,
    /// The reference query.
    pub reference: Query,
    /// The wrong (mutated) query.
    pub wrong: Query,
    /// Description of the injected error.
    pub error: String,
}

/// Build the course workload: for each of the eight questions, sample
/// `mutations_per_question` mutations. Pairs are returned regardless of
/// whether the instance distinguishes them — Table 3 is precisely about how
/// many of them a given instance catches.
pub fn course_workload(mutations_per_question: usize, seed: u64) -> Vec<CoursePair> {
    let mut out = Vec::new();
    for q in course_questions() {
        for (i, m) in sample_mutations(&q.reference, mutations_per_question, seed + q.number as u64)
            .into_iter()
            .enumerate()
        {
            let Mutation {
                description, query, ..
            } = m;
            out.push(CoursePair {
                question: q.number,
                reference: q.reference.clone(),
                wrong: query,
                error: format!("{description} (variant {i})"),
            });
        }
    }
    out
}

/// Restrict a workload to the pairs that the given instance actually
/// distinguishes (the "wrong queries discovered" of Table 3).
pub fn distinguished_pairs<'a>(pairs: &'a [CoursePair], db: &Database) -> Vec<&'a CoursePair> {
    pairs
        .iter()
        .filter(|p| {
            let r1 = evaluate(&p.reference, db);
            let r2 = evaluate(&p.wrong, db);
            match (r1, r2) {
                (Ok(a), Ok(b)) => !a.set_eq(&b),
                _ => false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_datagen::{university_database, UniversityConfig};

    #[test]
    fn workload_covers_all_questions() {
        let w = course_workload(3, 1);
        assert_eq!(w.len(), 24);
        let questions: std::collections::HashSet<usize> = w.iter().map(|p| p.question).collect();
        assert_eq!(questions.len(), 8);
    }

    #[test]
    fn larger_instances_distinguish_at_least_as_many_pairs() {
        let w = course_workload(3, 7);
        let small = university_database(&UniversityConfig::with_total(60));
        let large = university_database(&UniversityConfig::with_total(400));
        let d_small = distinguished_pairs(&w, &small).len();
        let d_large = distinguished_pairs(&w, &large).len();
        assert!(d_large >= d_small, "{d_large} >= {d_small}");
        assert!(d_large > 0);
    }
}
