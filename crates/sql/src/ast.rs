//! The SQL abstract syntax tree.
//!
//! Every node keeps the byte [`Span`] of the source text it was parsed from,
//! so the lowering pass can attach precise locations to name-resolution
//! diagnostics. Operator enums are shared with `ratest_ra` — the SQL scalar
//! language is deliberately the same language the RA predicates use.

use crate::error::Span;
use ratest_ra::ast::AggFunc;
use ratest_ra::expr::{BinaryOp, UnaryOp};
use ratest_storage::Value;

/// An identifier as written, with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct Ident {
    /// The name (case preserved).
    pub name: String,
    /// Where it was written.
    pub span: Span,
}

/// A full query: one `SELECT` body or a set-operation tree over bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlQuery {
    /// A single `SELECT ... FROM ... [WHERE] [GROUP BY] [HAVING]` block.
    Select(Box<SelectStmt>),
    /// `left UNION|EXCEPT|INTERSECT right` (left-associative).
    SetOp {
        /// Which set operation.
        op: SetOp,
        /// Left input.
        left: Box<SqlQuery>,
        /// Right input.
        right: Box<SqlQuery>,
        /// Span of the operator keyword.
        span: Span,
    },
}

impl SqlQuery {
    /// Span covering the whole query.
    pub fn span(&self) -> Span {
        match self {
            SqlQuery::Select(s) => s.span,
            SqlQuery::SetOp { left, right, .. } => left.span().to(right.span()),
        }
    }
}

/// Set operations between `SELECT` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Set union.
    Union,
    /// Set difference.
    Except,
    /// Set intersection (desugared to a double difference).
    Intersect,
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Whether `DISTINCT` was written (a no-op under set semantics, accepted
    /// for familiarity).
    pub distinct: bool,
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` units in source order: the first carries no join predicate;
    /// later units joined with `JOIN ... ON` carry one, comma-joined units
    /// do not.
    pub from: Vec<FromUnit>,
    /// The `WHERE` predicate.
    pub selection: Option<SqlExpr>,
    /// `GROUP BY` column references.
    pub group_by: Vec<SqlExpr>,
    /// The `HAVING` predicate.
    pub having: Option<SqlExpr>,
    /// Span of the whole block.
    pub span: Span,
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — keep every column of the `FROM` plan.
    Star {
        /// Where the `*` was written.
        span: Span,
    },
    /// An expression, optionally `AS`-aliased.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// The alias, when written.
        alias: Option<Ident>,
    },
}

/// One unit of the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct FromUnit {
    /// The table or derived-table source.
    pub source: TableSource,
    /// Optional alias (`Student s` / `... AS s`).
    pub alias: Option<Ident>,
    /// `ON` predicate when this unit was attached with `JOIN ... ON`;
    /// `None` for the first unit and comma-joined units (cross product).
    pub on: Option<SqlExpr>,
}

/// A `FROM` source.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A base relation by name.
    Relation(Ident),
    /// A parenthesized derived table.
    Subquery {
        /// The subquery.
        query: Box<SqlQuery>,
        /// Span of the parenthesized text.
        span: Span,
    },
}

impl TableSource {
    /// Span of the source text.
    pub fn span(&self) -> Span {
        match self {
            TableSource::Relation(i) => i.span,
            TableSource::Subquery { span, .. } => *span,
        }
    }
}

/// A scalar (or quantified) SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// A possibly-qualified column reference.
    Column {
        /// Optional qualifier (`s` in `s.name`).
        qualifier: Option<Ident>,
        /// The column name.
        name: Ident,
        /// Span of the full reference.
        span: Span,
    },
    /// A literal value.
    Literal {
        /// The value.
        value: Value,
        /// Where it was written.
        span: Span,
    },
    /// A query parameter `@name`.
    Param {
        /// The parameter name (without `@`).
        name: String,
        /// Where it was written.
        span: Span,
    },
    /// Unary operation (`NOT`, unary minus).
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<SqlExpr>,
        /// Span of the whole expression.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
        /// Span of the whole expression.
        span: Span,
    },
    /// An aggregate call: `COUNT(*)`, `SUM(expr)`, ...
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// The argument; `None` for `COUNT(*)`.
        arg: Option<Box<SqlExpr>>,
        /// Span of the call.
        span: Span,
    },
    /// `expr [NOT] IN (SELECT ...)` — uncorrelated subqueries only.
    InSubquery {
        /// The probe expression.
        expr: Box<SqlExpr>,
        /// The subquery (must produce one column).
        subquery: Box<SqlQuery>,
        /// Whether `NOT IN`.
        negated: bool,
        /// Span of the whole predicate.
        span: Span,
    },
    /// `[NOT] EXISTS (SELECT ...)` — uncorrelated subqueries only.
    Exists {
        /// The subquery.
        subquery: Box<SqlQuery>,
        /// Whether `NOT EXISTS`.
        negated: bool,
        /// Span of the whole predicate.
        span: Span,
    },
}

impl SqlExpr {
    /// Span of the expression.
    pub fn span(&self) -> Span {
        match self {
            SqlExpr::Column { span, .. }
            | SqlExpr::Literal { span, .. }
            | SqlExpr::Param { span, .. }
            | SqlExpr::Unary { span, .. }
            | SqlExpr::Binary { span, .. }
            | SqlExpr::Agg { span, .. }
            | SqlExpr::InSubquery { span, .. }
            | SqlExpr::Exists { span, .. } => *span,
        }
    }

    /// Whether the expression contains an aggregate call anywhere.
    pub fn has_aggregate(&self) -> bool {
        match self {
            SqlExpr::Agg { .. } => true,
            SqlExpr::Column { .. } | SqlExpr::Literal { .. } | SqlExpr::Param { .. } => false,
            SqlExpr::Unary { expr, .. } => expr.has_aggregate(),
            SqlExpr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            // Subquery bodies have their own aggregate scope.
            SqlExpr::InSubquery { expr, .. } => expr.has_aggregate(),
            SqlExpr::Exists { .. } => false,
        }
    }

    /// The column reference rendered as written (`s.name` or `name`).
    pub fn column_text(qualifier: &Option<Ident>, name: &Ident) -> String {
        match qualifier {
            Some(q) => format!("{}.{}", q.name, name.name),
            None => name.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_propagate_through_nesting() {
        let col = SqlExpr::Column {
            qualifier: None,
            name: Ident {
                name: "x".into(),
                span: Span::new(4, 5),
            },
            span: Span::new(4, 5),
        };
        let lit = SqlExpr::Literal {
            value: Value::Int(1),
            span: Span::new(8, 9),
        };
        let bin = SqlExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(col),
            right: Box::new(lit),
            span: Span::new(4, 9),
        };
        assert_eq!(bin.span(), Span::new(4, 9));
        assert!(!bin.has_aggregate());
    }

    #[test]
    fn aggregate_detection_nests() {
        let agg = SqlExpr::Agg {
            func: AggFunc::Count,
            arg: None,
            span: Span::default(),
        };
        let sum = SqlExpr::Binary {
            op: BinaryOp::Ge,
            left: Box::new(agg),
            right: Box::new(SqlExpr::Literal {
                value: Value::Int(2),
                span: Span::default(),
            }),
            span: Span::default(),
        };
        assert!(sum.has_aggregate());
    }
}
