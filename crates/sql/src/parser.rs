//! Recursive-descent parser for the supported SQL dialect.
//!
//! ## Grammar (informal)
//!
//! ```text
//! query      := select ( ('union' | 'except' | 'intersect') select )*
//! select     := 'select' ['distinct'] items 'from' from_list
//!               ['where' expr] ['group' 'by' columns] ['having' expr]
//! items      := '*' | item (',' item)*
//! item       := expr ['as'] ident | agg
//! from_list  := unit ( ',' unit | 'join' unit 'on' expr )*
//! unit       := ident [['as'] ident] | '(' query ')' [['as'] ident]
//! agg        := ('count'|'sum'|'avg'|'min'|'max') '(' ('*' | expr) ')'
//! expr       := or-expression over and/or/not, comparisons, [not] in
//!               (subquery), [not] exists (subquery), arithmetic + - * /,
//!               literals (ints, decimals, 'strings', date 'YYYY-MM-DD',
//!               true/false), column refs and @parameters
//! ```
//!
//! Keywords are matched case-insensitively and are not reserved: a table may
//! be called `Course` even though `count` is an aggregate. Bare aliases are
//! accepted everywhere `AS` is.

use crate::ast::{FromUnit, Ident, SelectItem, SelectStmt, SetOp, SqlExpr, SqlQuery, TableSource};
use crate::error::{Span, SqlError};
use crate::lexer::{tokenize, Token, TokenKind};
use ratest_ra::ast::AggFunc;
use ratest_ra::expr::{BinaryOp, UnaryOp};
use ratest_storage::Value;

/// Parse one SQL query (a `SELECT` or a set-operation tree).
pub fn parse_sql(input: &str) -> Result<SqlQuery, SqlError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    let q = p.parse_query()?;
    match p.peek().kind {
        TokenKind::Eof => Ok(q),
        ref other => Err(p.error(format!("trailing input: {}", other.describe()))),
    }
}

/// Keywords that terminate an expression or clause; a bare alias may not
/// collide with them.
const CLAUSE_KEYWORDS: &[&str] = &[
    "from",
    "where",
    "group",
    "having",
    "union",
    "except",
    "intersect",
    "join",
    "on",
    "as",
    "select",
    "and",
    "or",
    "not",
    "in",
    "exists",
    "distinct",
    "by",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            message: message.into(),
            span: self.peek().span,
        }
    }

    /// Whether the next token is the given keyword (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span, SqlError> {
        if self.at_keyword(kw) {
            Ok(self.advance().span)
        } else {
            Err(self.error(format!(
                "expected `{}`, found {}",
                kw.to_ascii_uppercase(),
                self.peek().kind.describe()
            )))
        }
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(p) if *p == c)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<Span, SqlError> {
        if self.at_punct(c) {
            Ok(self.advance().span)
        } else {
            Err(self.error(format!(
                "expected `{c}`, found {}",
                self.peek().kind.describe()
            )))
        }
    }

    fn at_op(&self, op: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Op(o) if *o == op)
    }

    fn parse_ident(&mut self, what: &str) -> Result<Ident, SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let span = self.advance().span;
                Ok(Ident { name, span })
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    // ----- queries -----

    /// `UNION` / `EXCEPT` level (left-associative). `INTERSECT` binds
    /// tighter, as in standard SQL: `a UNION b INTERSECT c` is
    /// `a UNION (b INTERSECT c)`.
    fn parse_query(&mut self) -> Result<SqlQuery, SqlError> {
        let mut left = self.parse_intersect()?;
        loop {
            let op = if self.at_keyword("union") {
                SetOp::Union
            } else if self.at_keyword("except") {
                SetOp::Except
            } else {
                break;
            };
            let span = self.advance().span;
            let right = self.parse_intersect()?;
            left = SqlQuery::SetOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    /// `INTERSECT` level (left-associative).
    fn parse_intersect(&mut self) -> Result<SqlQuery, SqlError> {
        let mut left = self.parse_select_or_parens()?;
        while self.at_keyword("intersect") {
            let span = self.advance().span;
            let right = self.parse_select_or_parens()?;
            left = SqlQuery::SetOp {
                op: SetOp::Intersect,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    /// One operand of a set operation: a `SELECT` block or a parenthesized
    /// query.
    fn parse_select_or_parens(&mut self) -> Result<SqlQuery, SqlError> {
        if self.at_punct('(') {
            self.advance();
            let q = self.parse_query()?;
            self.expect_punct(')')?;
            return Ok(q);
        }
        self.parse_select().map(|s| SqlQuery::Select(Box::new(s)))
    }

    fn parse_select(&mut self) -> Result<SelectStmt, SqlError> {
        let start = self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");

        let mut items = vec![self.parse_select_item()?];
        while self.eat_punct(',') {
            items.push(self.parse_select_item()?);
        }

        self.expect_keyword("from")?;
        let mut from = vec![self.parse_from_unit(None)?];
        loop {
            if self.eat_punct(',') {
                from.push(self.parse_from_unit(None)?);
            } else if self.at_keyword("join") {
                self.advance();
                let mut unit = self.parse_from_unit(None)?;
                self.expect_keyword("on")?;
                unit.on = Some(self.parse_expr()?);
                from.push(unit);
            } else {
                break;
            }
        }

        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.at_keyword("group") {
            self.advance();
            self.expect_keyword("by")?;
            group_by.push(self.parse_column_ref()?);
            while self.eat_punct(',') {
                group_by.push(self.parse_column_ref()?);
            }
        }

        let having = if self.eat_keyword("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let end = self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span;
        Ok(SelectStmt {
            distinct,
            items,
            from,
            selection,
            group_by,
            having,
            span: start.to(end),
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.at_op("*") {
            let span = self.advance().span;
            return Ok(SelectItem::Star { span });
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("as") {
            Some(self.parse_ident("alias after AS")?)
        } else if let TokenKind::Ident(name) = &self.peek().kind {
            // Bare alias, as long as it is not a clause keyword.
            if CLAUSE_KEYWORDS.iter().any(|k| name.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.parse_ident("alias")?)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_unit(&mut self, on: Option<SqlExpr>) -> Result<FromUnit, SqlError> {
        let source = if self.at_punct('(') {
            let start = self.advance().span;
            let query = self.parse_query()?;
            let end = self.expect_punct(')')?;
            TableSource::Subquery {
                query: Box::new(query),
                span: start.to(end),
            }
        } else {
            TableSource::Relation(self.parse_ident("a table name")?)
        };
        let alias = if self.eat_keyword("as") {
            Some(self.parse_ident("alias after AS")?)
        } else if let TokenKind::Ident(name) = &self.peek().kind {
            if CLAUSE_KEYWORDS.iter().any(|k| name.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.parse_ident("alias")?)
            }
        } else {
            None
        };
        Ok(FromUnit { source, alias, on })
    }

    /// A (possibly qualified) column reference, used by `GROUP BY`.
    fn parse_column_ref(&mut self) -> Result<SqlExpr, SqlError> {
        if let TokenKind::Ident(name) = &self.peek().kind {
            if CLAUSE_KEYWORDS.iter().any(|k| name.eq_ignore_ascii_case(k)) {
                return Err(self.error(format!(
                    "expected an expression, found keyword `{}`",
                    name.to_ascii_uppercase()
                )));
            }
        }
        let first = self.parse_ident("a column name")?;
        if self.eat_punct('.') {
            let name = self.parse_ident("a column name after `.`")?;
            let span = first.span.to(name.span);
            Ok(SqlExpr::Column {
                qualifier: Some(first),
                name,
                span,
            })
        } else {
            let span = first.span;
            Ok(SqlExpr::Column {
                qualifier: None,
                name: first,
                span,
            })
        }
    }

    // ----- expressions (precedence climbing) -----

    pub(crate) fn parse_expr(&mut self) -> Result<SqlExpr, SqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            let span = left.span().to(right.span());
            left = SqlExpr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            let span = left.span().to(right.span());
            left = SqlExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<SqlExpr, SqlError> {
        if self.at_keyword("not") {
            let start = self.advance().span;
            let inner = self.parse_not()?;
            let span = start.to(inner.span());
            // `NOT IN` / `NOT EXISTS` fold into the quantified node itself so
            // the lowering can pattern-match them directly.
            return Ok(match inner {
                SqlExpr::InSubquery {
                    expr,
                    subquery,
                    negated,
                    ..
                } => SqlExpr::InSubquery {
                    expr,
                    subquery,
                    negated: !negated,
                    span,
                },
                SqlExpr::Exists {
                    subquery, negated, ..
                } => SqlExpr::Exists {
                    subquery,
                    negated: !negated,
                    span,
                },
                other => SqlExpr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(other),
                    span,
                },
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<SqlExpr, SqlError> {
        let left = self.parse_additive()?;

        // `[NOT] IN (subquery)`
        let negated = if self.at_keyword("not") {
            // Only treat `NOT` as part of `NOT IN` here; a bare trailing NOT
            // is a syntax error anyway.
            let save = self.pos;
            self.advance();
            if self.at_keyword("in") {
                true
            } else {
                self.pos = save;
                false
            }
        } else {
            false
        };
        if self.at_keyword("in") {
            let kw = self.advance().span;
            self.expect_punct('(')?;
            if !self.at_keyword("select") && !self.at_punct('(') {
                return Err(SqlError::Parse {
                    message: "IN expects a subquery: `IN (SELECT ...)`".into(),
                    span: self.peek().span,
                });
            }
            let subquery = self.parse_query()?;
            let end = self.expect_punct(')')?;
            let span = left.span().to(kw).to(end);
            return Ok(SqlExpr::InSubquery {
                expr: Box::new(left),
                subquery: Box::new(subquery),
                negated,
                span,
            });
        }

        let op = match &self.peek().kind {
            TokenKind::Op("=") => Some(BinaryOp::Eq),
            TokenKind::Op("<>") | TokenKind::Op("!=") => Some(BinaryOp::Ne),
            TokenKind::Op("<") => Some(BinaryOp::Lt),
            TokenKind::Op("<=") => Some(BinaryOp::Le),
            TokenKind::Op(">") => Some(BinaryOp::Gt),
            TokenKind::Op(">=") => Some(BinaryOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.advance();
                let right = self.parse_additive()?;
                let span = left.span().to(right.span());
                Ok(SqlExpr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                    span,
                })
            }
            None => Ok(left),
        }
    }

    fn parse_additive(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.at_op("+") {
                BinaryOp::Add
            } else if self.at_op("-") {
                BinaryOp::Sub
            } else {
                break;
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            let span = left.span().to(right.span());
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.at_op("*") {
                BinaryOp::Mul
            } else if self.at_op("/") {
                BinaryOp::Div
            } else {
                break;
            };
            self.advance();
            let right = self.parse_unary()?;
            let span = left.span().to(right.span());
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<SqlExpr, SqlError> {
        if self.at_op("-") {
            let start = self.advance().span;
            let inner = self.parse_unary()?;
            let span = start.to(inner.span());
            return Ok(SqlExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
                span,
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<SqlExpr, SqlError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Int(i) => {
                self.advance();
                Ok(SqlExpr::Literal {
                    value: Value::Int(i),
                    span: tok.span,
                })
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(SqlExpr::Literal {
                    value: Value::double(x),
                    span: tok.span,
                })
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(SqlExpr::Literal {
                    value: Value::Text(s),
                    span: tok.span,
                })
            }
            TokenKind::Param(p) => {
                self.advance();
                Ok(SqlExpr::Param {
                    name: p,
                    span: tok.span,
                })
            }
            TokenKind::Punct('(') => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                // EXISTS (subquery)
                if name.eq_ignore_ascii_case("exists") {
                    let kw = self.advance().span;
                    self.expect_punct('(')?;
                    let subquery = self.parse_query()?;
                    let end = self.expect_punct(')')?;
                    return Ok(SqlExpr::Exists {
                        subquery: Box::new(subquery),
                        negated: false,
                        span: kw.to(end),
                    });
                }
                // TRUE / FALSE
                if name.eq_ignore_ascii_case("true") || name.eq_ignore_ascii_case("false") {
                    self.advance();
                    return Ok(SqlExpr::Literal {
                        value: Value::Bool(name.eq_ignore_ascii_case("true")),
                        span: tok.span,
                    });
                }
                // DATE 'YYYY-MM-DD'
                if name.eq_ignore_ascii_case("date") {
                    if let TokenKind::Str(_) =
                        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
                    {
                        let kw = self.advance().span;
                        let (text, str_span) = match self.advance() {
                            Token {
                                kind: TokenKind::Str(s),
                                span,
                            } => (s, span),
                            _ => unreachable!("peeked a string"),
                        };
                        let value = parse_date(&text).ok_or(SqlError::Parse {
                            message: format!("bad date literal '{text}' (expected YYYY-MM-DD)"),
                            span: str_span,
                        })?;
                        return Ok(SqlExpr::Literal {
                            value,
                            span: kw.to(str_span),
                        });
                    }
                }
                // Aggregate call?
                if let Some(func) = agg_func(&name) {
                    if self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
                        == TokenKind::Punct('(')
                    {
                        let kw = self.advance().span;
                        self.expect_punct('(')?;
                        let arg = if self.at_op("*") {
                            self.advance();
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        let end = self.expect_punct(')')?;
                        if func != AggFunc::Count && arg.is_none() {
                            return Err(SqlError::Parse {
                                message: format!("{}(*) is only valid for COUNT", func.name()),
                                span: kw.to(end),
                            });
                        }
                        return Ok(SqlExpr::Agg {
                            func,
                            arg,
                            span: kw.to(end),
                        });
                    }
                }
                // Plain or qualified column reference.
                self.parse_column_ref()
            }
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name.to_ascii_lowercase().as_str() {
        "count" => Some(AggFunc::Count),
        "sum" => Some(AggFunc::Sum),
        "avg" => Some(AggFunc::Avg),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        _ => None,
    }
}

/// Parse `YYYY-MM-DD` into a [`Value::Date`].
fn parse_date(text: &str) -> Option<Value> {
    let mut parts = text.split('-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(Value::date(year, month, day))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> SqlQuery {
        parse_sql(sql).unwrap()
    }

    #[test]
    fn parses_a_basic_select() {
        let q = parse("SELECT s.name, s.major FROM Student s WHERE s.major = 'CS'");
        let SqlQuery::Select(s) = q else {
            panic!("expected select")
        };
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.selection.is_some());
        assert!(!s.distinct);
    }

    #[test]
    fn parses_joins_comma_and_on() {
        let q = parse(
            "SELECT * FROM Student s, Registration r JOIN Registration r2 ON r.name = r2.name",
        );
        let SqlQuery::Select(s) = q else {
            panic!("expected select")
        };
        assert_eq!(s.from.len(), 3);
        assert!(s.from[0].on.is_none());
        assert!(s.from[1].on.is_none());
        assert!(s.from[2].on.is_some());
        assert_eq!(s.from[2].alias.as_ref().unwrap().name, "r2");
    }

    #[test]
    fn parses_group_by_having_and_aggregates() {
        let q = parse(
            "SELECT dept, COUNT(*) AS n, AVG(grade) a FROM Registration \
             GROUP BY dept HAVING n >= 2 AND AVG(grade) > 80",
        );
        let SqlQuery::Select(s) = q else {
            panic!("expected select")
        };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.as_ref().unwrap().has_aggregate());
        match &s.items[1] {
            SelectItem::Expr { expr, alias } => {
                assert!(matches!(
                    expr,
                    SqlExpr::Agg {
                        func: AggFunc::Count,
                        arg: None,
                        ..
                    }
                ));
                assert_eq!(alias.as_ref().unwrap().name, "n");
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_set_operations_left_associatively() {
        let q = parse(
            "SELECT name FROM Student EXCEPT SELECT name FROM Dropout UNION SELECT name FROM Alum",
        );
        let SqlQuery::SetOp { op, left, .. } = q else {
            panic!("expected set op")
        };
        assert_eq!(op, SetOp::Union);
        assert!(matches!(
            *left,
            SqlQuery::SetOp {
                op: SetOp::Except,
                ..
            }
        ));
    }

    #[test]
    fn intersect_binds_tighter_than_union_and_except() {
        // Standard SQL: a UNION b INTERSECT c  ≡  a UNION (b INTERSECT c).
        let q = parse(
            "SELECT name FROM Student UNION SELECT name FROM Alum \
             INTERSECT SELECT name FROM Dropout",
        );
        let SqlQuery::SetOp { op, right, .. } = q else {
            panic!("expected set op")
        };
        assert_eq!(op, SetOp::Union);
        assert!(matches!(
            *right,
            SqlQuery::SetOp {
                op: SetOp::Intersect,
                ..
            }
        ));
    }

    #[test]
    fn parses_subqueries_in_where_and_from() {
        let q = parse(
            "SELECT name FROM (SELECT name, major FROM Student) WHERE name IN \
             (SELECT name FROM Registration WHERE dept = 'CS') AND NOT EXISTS \
             (SELECT course FROM Registration WHERE dept = 'ART')",
        );
        let SqlQuery::Select(s) = q else {
            panic!("expected select")
        };
        assert!(matches!(s.from[0].source, TableSource::Subquery { .. }));
        let wher = s.selection.unwrap();
        let SqlExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
            ..
        } = wher
        else {
            panic!("expected AND")
        };
        assert!(matches!(*left, SqlExpr::InSubquery { negated: false, .. }));
        assert!(matches!(*right, SqlExpr::Exists { negated: true, .. }));
    }

    #[test]
    fn parses_not_in() {
        let q = parse("SELECT name FROM Student WHERE name NOT IN (SELECT name FROM Dropout)");
        let SqlQuery::Select(s) = q else {
            panic!("expected select")
        };
        assert!(matches!(
            s.selection.unwrap(),
            SqlExpr::InSubquery { negated: true, .. }
        ));
    }

    #[test]
    fn parses_date_literals_params_and_precedence() {
        let q = parse(
            "SELECT o_orderkey FROM orders WHERE o_orderdate >= DATE '1994-01-01' \
             AND o_totalprice + 1 * 2 > @cutoff",
        );
        let SqlQuery::Select(s) = q else {
            panic!("expected select")
        };
        let sel = s.selection.unwrap();
        let SqlExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
            ..
        } = sel
        else {
            panic!("expected AND")
        };
        match *left {
            SqlExpr::Binary {
                op: BinaryOp::Ge,
                right: date,
                ..
            } => {
                assert!(matches!(
                    *date,
                    SqlExpr::Literal {
                        value: Value::Date(_),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        // 1 * 2 binds tighter than +, which binds tighter than >.
        match *right {
            SqlExpr::Binary {
                op: BinaryOp::Gt,
                left: sum,
                right: param,
                ..
            } => {
                assert!(matches!(*param, SqlExpr::Param { .. }));
                assert!(matches!(
                    *sum,
                    SqlExpr::Binary {
                        op: BinaryOp::Add,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_spans() {
        let err = parse_sql("SELECT FROM Student").unwrap_err();
        assert_eq!(err.kind(), "parse");
        assert_eq!(err.span().start, 7);

        let err = parse_sql("SELECT name Student").unwrap_err();
        assert!(err.to_string().contains("FROM"), "{err}");

        let err = parse_sql("SELECT name FROM Student WHERE x IN (1, 2)").unwrap_err();
        assert!(err.to_string().contains("subquery"), "{err}");

        let err = parse_sql("SELECT name FROM Student extra tokens").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn distinct_and_star() {
        let q = parse("SELECT DISTINCT * FROM Student");
        let SqlQuery::Select(s) = q else {
            panic!("expected select")
        };
        assert!(s.distinct);
        assert!(matches!(s.items[0], SelectItem::Star { .. }));
    }
}
