//! First-class SQL diagnostics: every error carries the byte span of the
//! offending source text, and name-resolution errors carry "did you mean"
//! hints computed against the catalog, so a grading report can show a student
//! exactly where their submission went wrong *before* it is ever graded.

use std::fmt;

/// A half-open byte range `[start, end)` into the SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte of the offending text.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The frontend phase that rejected the submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lexer,
    /// Syntax analysis.
    Parse,
    /// Name resolution / lowering against the catalog.
    Resolve,
}

impl Phase {
    /// Lowercase name, matching the `errors/<phase>_*.sql` fixture prefix.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Lexer => "lexer",
            Phase::Parse => "parse",
            Phase::Resolve => "resolve",
        }
    }
}

/// A diagnostic produced while parsing or lowering a SQL submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The tokenizer hit a malformed token.
    Lex {
        /// What went wrong.
        message: String,
        /// Where.
        span: Span,
    },
    /// The parser hit an unexpected token.
    Parse {
        /// What was expected / found.
        message: String,
        /// Where.
        span: Span,
    },
    /// A `FROM` item names a relation the catalog does not have.
    UnknownRelation {
        /// The name as written.
        name: String,
        /// Where it was written.
        span: Span,
        /// Closest catalog relation, when one is plausibly intended.
        hint: Option<String>,
    },
    /// A column reference does not resolve in its scope.
    UnknownColumn {
        /// The reference as written (possibly qualified).
        name: String,
        /// Where it was written.
        span: Span,
        /// The columns that were in scope.
        available: Vec<String>,
        /// Closest in-scope column, when one is plausibly intended.
        hint: Option<String>,
    },
    /// A column reference matches several in-scope columns.
    AmbiguousColumn {
        /// The reference as written.
        name: String,
        /// Where it was written.
        span: Span,
        /// The columns it matched.
        candidates: Vec<String>,
    },
    /// The statement uses a shape the SPJUDA lowering does not support
    /// (correlated subquery, multi-column `IN` list, ...).
    Unsupported {
        /// What is unsupported and why.
        message: String,
        /// Where.
        span: Span,
    },
}

impl SqlError {
    /// The span of the offending source text.
    pub fn span(&self) -> Span {
        match self {
            SqlError::Lex { span, .. }
            | SqlError::Parse { span, .. }
            | SqlError::UnknownRelation { span, .. }
            | SqlError::UnknownColumn { span, .. }
            | SqlError::AmbiguousColumn { span, .. }
            | SqlError::Unsupported { span, .. } => *span,
        }
    }

    /// Which frontend phase produced the diagnostic.
    pub fn phase(&self) -> Phase {
        match self {
            SqlError::Lex { .. } => Phase::Lexer,
            SqlError::Parse { .. } => Phase::Parse,
            _ => Phase::Resolve,
        }
    }

    /// Stable machine-readable kind, used by the error-fixture tests and the
    /// JSON report.
    pub fn kind(&self) -> &'static str {
        match self {
            SqlError::Lex { .. } => "lex",
            SqlError::Parse { .. } => "parse",
            SqlError::UnknownRelation { .. } => "unknown_relation",
            SqlError::UnknownColumn { .. } => "unknown_column",
            SqlError::AmbiguousColumn { .. } => "ambiguous_column",
            SqlError::Unsupported { .. } => "unsupported",
        }
    }

    /// Render the diagnostic against its source: message plus a caret line
    /// pointing at the offending text.
    pub fn render(&self, source: &str) -> String {
        let span = self.span();
        let start = span.start.min(source.len());
        let line_start = source[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = source[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(source.len());
        let line_no = source[..start].matches('\n').count() + 1;
        let col = start - line_start + 1;
        let line = &source[line_start..line_end];
        let width = span.end.min(line_end).saturating_sub(start).max(1);
        format!(
            "error[{}]: {self}\n  --> line {line_no}, column {col}\n   | {line}\n   | {}{}",
            self.kind(),
            " ".repeat(col - 1),
            "^".repeat(width),
        )
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { message, span } => write!(f, "{message} (at {span})"),
            SqlError::Parse { message, span } => write!(f, "{message} (at {span})"),
            SqlError::UnknownRelation { name, span, hint } => {
                write!(f, "unknown relation `{name}` (at {span})")?;
                if let Some(h) = hint {
                    write!(f, "; did you mean `{h}`?")?;
                }
                Ok(())
            }
            SqlError::UnknownColumn {
                name,
                span,
                available,
                hint,
            } => {
                write!(f, "unknown column `{name}` (at {span})")?;
                if let Some(h) = hint {
                    write!(f, "; did you mean `{h}`?")?;
                } else if !available.is_empty() {
                    write!(f, "; in scope: {}", available.join(", "))?;
                }
                Ok(())
            }
            SqlError::AmbiguousColumn {
                name,
                span,
                candidates,
            } => write!(
                f,
                "ambiguous column `{name}` (at {span}); candidates: {}",
                candidates.join(", ")
            ),
            SqlError::Unsupported { message, span } => write!(f, "{message} (at {span})"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Levenshtein edit distance, used for "did you mean" hints.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest candidate within a name-length-proportional edit budget —
/// case-insensitive, so `student` suggests `Student`.
pub(crate) fn did_you_mean<'a, I>(name: &str, candidates: I) -> Option<String>
where
    I: IntoIterator<Item = &'a str>,
{
    let budget = (name.chars().count() / 3).max(1) + 1;
    let lower = name.to_ascii_lowercase();
    candidates
        .into_iter()
        .map(|c| (edit_distance(&lower, &c.to_ascii_lowercase()), c))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_join_and_display() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(a.to(b), b.to(a));
        assert_eq!(a.to_string(), "3..7");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }

    #[test]
    fn did_you_mean_suggests_close_names_only() {
        let cands = ["Student", "Registration"];
        assert_eq!(
            did_you_mean("Studnet", cands.iter().copied()),
            Some("Student".into())
        );
        assert_eq!(
            did_you_mean("student", cands.iter().copied()),
            Some("Student".into())
        );
        assert_eq!(did_you_mean("Professor", cands.iter().copied()), None);
    }

    #[test]
    fn render_points_at_the_offending_text() {
        let src = "SELECT name\nFROM Studnet";
        let err = SqlError::UnknownRelation {
            name: "Studnet".into(),
            span: Span::new(17, 24),
            hint: Some("Student".into()),
        };
        let out = err.render(src);
        assert!(out.contains("line 2, column 6"), "{out}");
        assert!(out.contains("^^^^^^^"), "{out}");
        assert!(out.contains("did you mean `Student`?"), "{out}");
    }

    #[test]
    fn kinds_and_phases_are_stable() {
        let e = SqlError::Lex {
            message: String::new(),
            span: Span::default(),
        };
        assert_eq!(e.kind(), "lex");
        assert_eq!(e.phase().name(), "lexer");
        let e = SqlError::Unsupported {
            message: String::new(),
            span: Span::default(),
        };
        assert_eq!(e.kind(), "unsupported");
        assert_eq!(e.phase().name(), "resolve");
    }
}
