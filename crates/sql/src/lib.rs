//! # ratest-sql
//!
//! The SQL frontend: parse the SQL students actually write and lower it to
//! the SPJUDA relational algebra the explanation pipeline works on. This is
//! the missing first mile of the paper's deployment story — the course tool
//! graded *SQL* submissions, while the core algorithms consume RA trees.
//!
//! The frontend is three small passes:
//!
//! 1. a hand-rolled [`lexer`] producing byte-span tokens,
//! 2. a recursive-descent [`parser`] building a spanned SQL AST ([`ast`]),
//! 3. a name-resolving [`lower`] pass that desugars the AST into
//!    `ratest_ra` operators, resolving every relation and column against a
//!    `ratest_storage::Database` catalog.
//!
//! Errors are first-class: every failure is a [`SqlError`] with the byte
//! [`Span`] of the offending text and, for name-resolution failures, a
//! "did you mean" hint — so a grading report can distinguish a submission
//! that is *wrong* from one that never parsed, and point the student at the
//! exact token to fix.
//!
//! ## Supported dialect
//!
//! `SELECT [DISTINCT]` lists (columns, expressions `AS` alias, aggregates,
//! `*`), `FROM` with comma joins, `JOIN ... ON`, table aliases and derived
//! tables, `WHERE` with the full scalar language (including `@param`
//! query parameters and `DATE 'YYYY-MM-DD'` literals), uncorrelated
//! `[NOT] IN (SELECT ...)` / `[NOT] EXISTS (SELECT ...)` desugared to
//! semijoin-style join/difference plans, `GROUP BY` / `HAVING` with the
//! `COUNT/SUM/AVG/MIN/MAX` aggregates, and `UNION` / `EXCEPT` /
//! `INTERSECT`.
//!
//! ## Example
//!
//! ```
//! use ratest_sql::compile_sql;
//! use ratest_ra::eval::evaluate;
//! use ratest_ra::testdata::figure1_db;
//!
//! let db = figure1_db();
//! let q = compile_sql(
//!     "SELECT s.name, s.major
//!      FROM Student s JOIN Registration r ON s.name = r.name
//!      WHERE r.dept = 'CS'",
//!     &db,
//! )
//! .unwrap();
//! assert_eq!(evaluate(&q, &db).unwrap().len(), 3);
//!
//! // Typos are caught before grading, with a span and a hint.
//! let err = compile_sql("SELECT nme FROM Student", &db).unwrap_err();
//! assert_eq!(err.kind(), "unknown_column");
//! assert_eq!(err.span().start, 7);
//! assert!(err.to_string().contains("did you mean `name`?"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use error::{Phase, Span, SqlError};
pub use lower::lower;
pub use parser::parse_sql;

use ratest_ra::ast::Query;
use ratest_storage::Database;

/// Parse SQL text and lower it to a relational-algebra query against the
/// relations of `db`.
pub fn compile_sql(text: &str, db: &Database) -> Result<Query, SqlError> {
    lower(&parse_sql(text)?, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::canonical::fingerprint;
    use ratest_ra::eval::evaluate;
    use ratest_ra::testdata::figure1_db;

    fn eval_len(sql: &str) -> usize {
        let db = figure1_db();
        let q = compile_sql(sql, &db).unwrap();
        evaluate(&q, &db).unwrap().len()
    }

    #[test]
    fn comma_join_and_join_on_agree() {
        let db = figure1_db();
        let a = compile_sql(
            "SELECT s.name, s.major FROM Student s, Registration r \
             WHERE s.name = r.name AND r.dept = 'CS'",
            &db,
        )
        .unwrap();
        let b = compile_sql(
            "SELECT s.name, s.major FROM Student s JOIN Registration r \
             ON s.name = r.name WHERE r.dept = 'CS'",
            &db,
        )
        .unwrap();
        assert_eq!(evaluate(&a, &db).unwrap().len(), 3);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "σ-over-cross and JOIN..ON canonicalize together"
        );
    }

    #[test]
    fn in_subquery_is_a_semijoin() {
        // Students with at least one CS registration — via IN.
        assert_eq!(
            eval_len(
                "SELECT name, major FROM Student WHERE name IN \
                 (SELECT name FROM Registration WHERE dept = 'CS')"
            ),
            3
        );
        // NOT IN: nobody is CS-free in Figure 1.
        assert_eq!(
            eval_len(
                "SELECT name, major FROM Student WHERE name NOT IN \
                 (SELECT name FROM Registration WHERE dept = 'CS')"
            ),
            0
        );
    }

    #[test]
    fn exists_keeps_or_empties_the_plan() {
        assert_eq!(
            eval_len(
                "SELECT name FROM Student WHERE EXISTS \
                 (SELECT course FROM Registration WHERE dept = 'CS')"
            ),
            3
        );
        assert_eq!(
            eval_len(
                "SELECT name FROM Student WHERE EXISTS \
                 (SELECT course FROM Registration WHERE dept = 'ART')"
            ),
            0
        );
        assert_eq!(
            eval_len(
                "SELECT name FROM Student WHERE NOT EXISTS \
                 (SELECT course FROM Registration WHERE dept = 'ART')"
            ),
            3
        );
    }

    #[test]
    fn group_by_having_with_hidden_aggregate() {
        // Students with ≥ 2 CS registrations: Mary and Jesse.
        assert_eq!(
            eval_len(
                "SELECT name FROM Registration WHERE dept = 'CS' \
                 GROUP BY name HAVING COUNT(*) >= 2"
            ),
            2
        );
        // The same with a visible alias.
        assert_eq!(
            eval_len(
                "SELECT name, COUNT(*) AS n FROM Registration WHERE dept = 'CS' \
                 GROUP BY name HAVING n >= 2"
            ),
            2
        );
    }

    #[test]
    fn set_operations() {
        assert_eq!(
            eval_len(
                "SELECT name FROM Student EXCEPT SELECT name FROM Registration \
                 WHERE dept = 'ECON'"
            ),
            1
        );
        assert_eq!(
            eval_len(
                "SELECT name FROM Registration WHERE dept = 'CS' INTERSECT \
                 SELECT name FROM Registration WHERE dept = 'ECON'"
            ),
            2
        );
        assert_eq!(
            eval_len(
                "SELECT name FROM Registration WHERE dept = 'CS' UNION \
                 SELECT name FROM Registration WHERE dept = 'ECON'"
            ),
            3
        );
    }

    #[test]
    fn derived_tables_lower_to_plain_subplans() {
        let db = figure1_db();
        let q = compile_sql(
            "SELECT name FROM (SELECT name, major FROM Student) WHERE major = 'CS'",
            &db,
        )
        .unwrap();
        assert_eq!(evaluate(&q, &db).unwrap().len(), 2);
        // Aliased derived table: columns become alias-qualified.
        let q = compile_sql("SELECT t.name FROM (SELECT name FROM Student) t", &db).unwrap();
        assert_eq!(evaluate(&q, &db).unwrap().len(), 3);
    }

    #[test]
    fn parameters_flow_through() {
        let db = figure1_db();
        let q = compile_sql(
            "SELECT name FROM Registration GROUP BY name HAVING COUNT(*) >= @numCS",
            &db,
        )
        .unwrap();
        assert_eq!(q.params().into_iter().collect::<Vec<_>>(), vec!["numCS"]);
    }

    #[test]
    fn unknown_relation_gets_a_hint() {
        let db = figure1_db();
        let err = compile_sql("SELECT name FROM Studnet", &db).unwrap_err();
        assert_eq!(err.kind(), "unknown_relation");
        assert!(err.to_string().contains("did you mean `Student`?"), "{err}");
        assert_eq!(err.span().start, 17);
    }

    #[test]
    fn ambiguous_columns_are_reported() {
        let db = figure1_db();
        let err = compile_sql("SELECT name FROM Student s, Registration r", &db).unwrap_err();
        assert_eq!(err.kind(), "ambiguous_column");
        assert!(err.to_string().contains("s.name"), "{err}");
    }

    #[test]
    fn correlated_subqueries_are_named_not_mislabeled() {
        let db = figure1_db();
        let err = compile_sql(
            "SELECT s.name FROM Student s WHERE EXISTS \
             (SELECT course FROM Registration r WHERE r.name = s.name)",
            &db,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "unsupported");
        assert!(err.to_string().contains("correlated"), "{err}");
    }

    #[test]
    fn select_star_keeps_every_column() {
        let db = figure1_db();
        let q = compile_sql("SELECT * FROM Registration WHERE dept = 'CS'", &db).unwrap();
        let rs = evaluate(&q, &db).unwrap();
        assert_eq!(rs.schema().arity(), 4);
        assert_eq!(rs.len(), 6);
    }

    #[test]
    fn grouping_violations_are_rejected() {
        let db = figure1_db();
        let err =
            compile_sql("SELECT name, grade FROM Registration GROUP BY name", &db).unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }
}
