//! Name-resolving lowering from the SQL AST to the SPJUDA relational
//! algebra of `ratest_ra`.
//!
//! The lowering is schema-directed: every scalar expression is resolved
//! against the schema of the plan built so far (computed with the same
//! `ratest_ra::typecheck` rules the evaluator uses), and every column
//! reference is rewritten to the schema's canonical column name. Resolution
//! failures become spanned [`SqlError`] diagnostics with "did you mean"
//! hints, so a malformed submission is rejected *before* grading with a
//! message that points at the offending source text.
//!
//! ## Desugarings
//!
//! * `FROM a, b` → cross join; `JOIN b ON p` → θ-join.
//! * Table aliases (and derived tables with aliases) become ρ (rename)
//!   operators, exactly like the course RA's `rename[s](Student)`.
//! * `WHERE` splits into top-level conjuncts: plain conjuncts form one σ;
//!   each uncorrelated `IN` / `EXISTS` conjunct becomes a semijoin-style
//!   join-project plan, and the `NOT` forms subtract that plan with a
//!   difference — SPJUD only, no new operators.
//! * `GROUP BY` / aggregate select items / `HAVING` become one γ operator;
//!   aggregates appearing only in `HAVING` are added as hidden aggregate
//!   columns and projected away afterwards.
//! * `UNION` / `EXCEPT` map to ∪ / −; `INTERSECT a b` desugars to
//!   `a − (a − b)`.

use crate::ast::{FromUnit, Ident, SelectItem, SelectStmt, SetOp, SqlExpr, SqlQuery, TableSource};
use crate::error::{did_you_mean, Span, SqlError};
use ratest_ra::ast::{AggCall, AggFunc, ProjectItem, Query};
use ratest_ra::expr::Expr;
use ratest_ra::typecheck::output_schema;
use ratest_ra::QueryError;
use ratest_storage::{Database, Schema};
use std::sync::Arc;

/// Lower a parsed SQL query to a relational-algebra query, resolving names
/// against the relations of `db`.
pub fn lower(query: &SqlQuery, db: &Database) -> Result<Query, SqlError> {
    let mut ctx = Lowerer { db, fresh: 0 };
    let (plan, _) = ctx.lower_query(query)?;
    Ok(plan)
}

struct Lowerer<'a> {
    db: &'a Database,
    /// Counter for generated rename prefixes (`__sq0`, `__sq1`, ...).
    fresh: usize,
}

impl Lowerer<'_> {
    fn schema_of(&self, plan: &Query, span: Span) -> Result<Schema, SqlError> {
        output_schema(plan, self.db).map_err(|e| SqlError::Unsupported {
            message: format!("cannot type the lowered plan: {e}"),
            span,
        })
    }

    fn lower_query(&mut self, q: &SqlQuery) -> Result<(Query, Schema), SqlError> {
        match q {
            SqlQuery::Select(s) => self.lower_select(s),
            SqlQuery::SetOp {
                op,
                left,
                right,
                span,
            } => {
                let (lq, ls) = self.lower_query(left)?;
                let (rq, rs) = self.lower_query(right)?;
                if !ls.union_compatible(&rs) {
                    let name = match op {
                        SetOp::Union => "UNION",
                        SetOp::Except => "EXCEPT",
                        SetOp::Intersect => "INTERSECT",
                    };
                    return Err(SqlError::Unsupported {
                        message: format!("{name} operands have incompatible schemas: {ls} vs {rs}"),
                        span: *span,
                    });
                }
                let plan = match op {
                    SetOp::Union => Query::Union {
                        left: Arc::new(lq),
                        right: Arc::new(rq),
                    },
                    SetOp::Except => Query::Difference {
                        left: Arc::new(lq),
                        right: Arc::new(rq),
                    },
                    // a ∩ b  ≡  a − (a − b)
                    SetOp::Intersect => {
                        let l = Arc::new(lq);
                        Query::Difference {
                            left: l.clone(),
                            right: Arc::new(Query::Difference {
                                left: l,
                                right: Arc::new(rq),
                            }),
                        }
                    }
                };
                Ok((plan, ls))
            }
        }
    }

    fn lower_select(&mut self, s: &SelectStmt) -> Result<(Query, Schema), SqlError> {
        // ---- FROM ----
        // Pass 1: resolve every unit's source and schema, then decide which
        // unaliased base relations need an automatic table-name qualifier: a
        // unit is prefixed only when one of its column names collides with
        // another unit's (so `FROM Student, Registration` qualifies both —
        // their `name` columns collide — while `FROM orders, lineitem` stays
        // bare, matching hand-written RA over disjoint schemas).
        let mut resolved = Vec::with_capacity(s.from.len());
        for unit in &s.from {
            resolved.push(self.resolve_from_unit(unit)?);
        }
        let preliminary: Vec<Vec<String>> = resolved
            .iter()
            .map(|(_, schema, alias, _)| match alias {
                Some(a) => schema.qualified(a).names().map(str::to_owned).collect(),
                None => schema.names().map(str::to_owned).collect(),
            })
            .collect();
        let units: Vec<(Query, Schema)> = resolved
            .into_iter()
            .enumerate()
            .map(|(i, (base, schema, alias, auto_prefix))| {
                let prefix = alias.or_else(|| {
                    let auto = auto_prefix?;
                    let collides = preliminary[i].iter().any(|name| {
                        preliminary
                            .iter()
                            .enumerate()
                            .any(|(j, other)| j != i && other.contains(name))
                    });
                    collides.then_some(auto)
                });
                match prefix {
                    Some(prefix) => {
                        let qualified = schema.qualified(&prefix);
                        (
                            Query::Rename {
                                input: Arc::new(base),
                                prefix,
                            },
                            qualified,
                        )
                    }
                    None => (base, schema),
                }
            })
            .collect();

        // Pass 2: fold the units into a join tree, lowering each ON
        // predicate against the schema accumulated so far.
        let mut acc: Option<(Query, Schema)> = None;
        for (unit, (uq, us)) in s.from.iter().zip(units) {
            acc = Some(match acc {
                None => (uq, us),
                Some((pq, ps)) => {
                    let joined = ps.concat(&us);
                    let predicate = match &unit.on {
                        Some(on) => Some(self.lower_scalar(on, &joined)?),
                        None => None,
                    };
                    (
                        Query::Join {
                            left: Arc::new(pq),
                            right: Arc::new(uq),
                            predicate,
                        },
                        joined,
                    )
                }
            });
        }
        let (mut plan, mut schema) = acc.expect("the parser requires at least one FROM unit");

        // ---- WHERE ----
        if let Some(selection) = &s.selection {
            let mut plain: Vec<&SqlExpr> = Vec::new();
            let mut quantified: Vec<&SqlExpr> = Vec::new();
            let mut stack = vec![selection];
            while let Some(e) = stack.pop() {
                match e {
                    SqlExpr::Binary {
                        op: ratest_ra::expr::BinaryOp::And,
                        left,
                        right,
                        ..
                    } => {
                        stack.push(right);
                        stack.push(left);
                    }
                    SqlExpr::InSubquery { .. } | SqlExpr::Exists { .. } => quantified.push(e),
                    other => plain.push(other),
                }
            }
            // Preserve source order of the plain conjuncts (the stack pops
            // left-to-right already, but collect order is interleaved with
            // quantified conjuncts; σ conjunction order is canonicalized
            // away, so only readability is at stake).
            if !plain.is_empty() {
                let lowered: Vec<Expr> = plain
                    .iter()
                    .map(|e| self.lower_scalar(e, &schema))
                    .collect::<Result<_, _>>()?;
                let predicate = Expr::conjunction(lowered).expect("non-empty conjunct list");
                plan = Query::Select {
                    input: Arc::new(plan),
                    predicate,
                };
            }
            for q in quantified {
                (plan, schema) = self.lower_quantified(q, plan, schema)?;
            }
        }

        // ---- GROUP BY / aggregates / HAVING ----
        let has_agg_items = s
            .items
            .iter()
            .any(|it| matches!(it, SelectItem::Expr { expr, .. } if expr.has_aggregate()));
        let is_aggregate = !s.group_by.is_empty() || has_agg_items || s.having.is_some();

        if is_aggregate {
            self.lower_aggregate_select(s, plan, schema)
        } else {
            self.lower_plain_select(s, plan, schema)
        }
    }

    /// Resolve one `FROM` unit to its base plan and schema, plus the
    /// explicit alias and (for unaliased base relations) the table name as a
    /// candidate automatic qualifier — the caller decides whether the
    /// qualifier is needed based on cross-unit column collisions.
    #[allow(clippy::type_complexity)]
    fn resolve_from_unit(
        &mut self,
        unit: &FromUnit,
    ) -> Result<(Query, Schema, Option<String>, Option<String>), SqlError> {
        let (base, base_schema) = match &unit.source {
            TableSource::Relation(ident) => match self.db.relation(&ident.name) {
                Ok(rel) => (Query::Relation(ident.name.clone()), rel.schema().clone()),
                Err(_) => {
                    return Err(SqlError::UnknownRelation {
                        name: ident.name.clone(),
                        span: ident.span,
                        hint: did_you_mean(&ident.name, self.db.relation_names()),
                    })
                }
            },
            TableSource::Subquery { query, .. } => self.lower_query(query)?,
        };
        let alias = unit.alias.as_ref().map(|a| a.name.clone());
        let auto_prefix = match &unit.source {
            TableSource::Relation(ident) if alias.is_none() => Some(ident.name.clone()),
            _ => None,
        };
        Ok((base, base_schema, alias, auto_prefix))
    }

    /// Desugar one `[NOT] IN` / `[NOT] EXISTS` conjunct into a semijoin-style
    /// plan over `plan`, preserving its schema.
    fn lower_quantified(
        &mut self,
        e: &SqlExpr,
        plan: Query,
        schema: Schema,
    ) -> Result<(Query, Schema), SqlError> {
        let (subquery, negated, probe, span) = match e {
            SqlExpr::InSubquery {
                expr,
                subquery,
                negated,
                span,
            } => (subquery, *negated, Some(expr.as_ref()), *span),
            SqlExpr::Exists {
                subquery,
                negated,
                span,
            } => (subquery, *negated, None, *span),
            _ => unreachable!("caller filters quantified conjuncts"),
        };

        let (sub_plan, sub_schema) = match self.lower_query(subquery) {
            Ok(ok) => ok,
            // A column that does not resolve inside the subquery but would
            // resolve in the outer scope is a correlated subquery — name the
            // limitation instead of claiming the column does not exist.
            Err(SqlError::UnknownColumn { name, span, .. })
                if Expr::resolve_column(&schema, &name).is_ok() =>
            {
                return Err(SqlError::Unsupported {
                    message: format!(
                        "correlated subqueries are not supported: `{name}` refers to the outer query"
                    ),
                    span,
                })
            }
            Err(other) => return Err(other),
        };

        let prefix = format!("__sq{}", self.fresh);
        self.fresh += 1;
        let renamed = Query::Rename {
            input: Arc::new(sub_plan),
            prefix: prefix.clone(),
        };

        let predicate = match probe {
            Some(probe_expr) => {
                if sub_schema.arity() != 1 {
                    return Err(SqlError::Unsupported {
                        message: format!(
                            "IN subquery must produce exactly one column (got {})",
                            sub_schema.arity()
                        ),
                        span: subquery.span(),
                    });
                }
                let probe = self.lower_scalar(probe_expr, &schema)?;
                let sub_col = format!("{prefix}.{}", sub_schema.column(0).name);
                Some(probe.eq(Expr::Column(sub_col)))
            }
            None => None, // EXISTS: plain cross product
        };

        let join = Query::Join {
            left: Arc::new(plan.clone()),
            right: Arc::new(renamed),
            predicate,
        };
        let keep: Vec<ProjectItem> = schema
            .names()
            .map(|n| ProjectItem {
                expr: Expr::Column(n.to_owned()),
                alias: n.to_owned(),
            })
            .collect();
        let semi = Query::Project {
            input: Arc::new(join),
            items: keep,
        };
        let lowered = if negated {
            Query::Difference {
                left: Arc::new(plan),
                right: Arc::new(semi),
            }
        } else {
            semi
        };
        let out_schema = self.schema_of(&lowered, span)?;
        Ok((lowered, out_schema))
    }

    fn lower_plain_select(
        &mut self,
        s: &SelectStmt,
        plan: Query,
        schema: Schema,
    ) -> Result<(Query, Schema), SqlError> {
        if let Some(star) = s.items.iter().find_map(|it| match it {
            SelectItem::Star { span } => Some(*span),
            _ => None,
        }) {
            if s.items.len() > 1 {
                return Err(SqlError::Unsupported {
                    message: "`*` cannot be mixed with other select items".into(),
                    span: star,
                });
            }
            // SELECT * keeps the FROM plan as-is (set semantics already
            // deduplicate, so DISTINCT adds nothing).
            return Ok((plan, schema));
        }

        let mut items = Vec::with_capacity(s.items.len());
        for item in &s.items {
            let SelectItem::Expr { expr, alias } = item else {
                unreachable!("stars handled above")
            };
            let lowered = self.lower_scalar(expr, &schema)?;
            let alias = match (alias, &lowered) {
                (Some(a), _) => a.name.clone(),
                (None, Expr::Column(name)) => strip_qualifier(name),
                (None, _) => {
                    return Err(SqlError::Unsupported {
                        message: "computed select items need an alias: `expr AS name`".into(),
                        span: expr.span(),
                    })
                }
            };
            items.push(ProjectItem {
                expr: lowered,
                alias,
            });
        }
        let plan = Query::Project {
            input: Arc::new(plan),
            items,
        };
        let out = self.schema_of(&plan, s.span)?;
        Ok((plan, out))
    }

    fn lower_aggregate_select(
        &mut self,
        s: &SelectStmt,
        plan: Query,
        schema: Schema,
    ) -> Result<(Query, Schema), SqlError> {
        // Resolve the grouping columns to canonical schema names.
        let mut group_by: Vec<String> = Vec::with_capacity(s.group_by.len());
        for g in &s.group_by {
            let lowered = self.lower_scalar(g, &schema)?;
            match lowered {
                Expr::Column(name) => group_by.push(name),
                _ => unreachable!("the parser only accepts column refs in GROUP BY"),
            }
        }

        let mut aggregates: Vec<AggCall> = Vec::new();
        // (source column in the γ output, final output alias) per select item.
        let mut output_spec: Vec<(String, String)> = Vec::new();

        for item in &s.items {
            match item {
                SelectItem::Star { span } => {
                    return Err(SqlError::Unsupported {
                        message: "`*` cannot be used with GROUP BY / aggregates".into(),
                        span: *span,
                    })
                }
                SelectItem::Expr { expr, alias } => match expr {
                    SqlExpr::Agg { func, arg, span } => {
                        let call =
                            self.lower_agg_call(*func, arg.as_deref(), *span, &schema, alias)?;
                        let out_name = call.alias.clone();
                        if aggregates.iter().any(|a| a.alias == out_name) {
                            return Err(SqlError::Unsupported {
                                message: format!(
                                    "duplicate aggregate alias `{out_name}` (use AS to disambiguate)"
                                ),
                                span: *span,
                            });
                        }
                        aggregates.push(call);
                        output_spec.push((out_name.clone(), out_name));
                    }
                    _ if expr.has_aggregate() => {
                        return Err(SqlError::Unsupported {
                            message:
                                "expressions over aggregates are not supported; select the aggregate directly"
                                    .into(),
                            span: expr.span(),
                        })
                    }
                    _ => {
                        let lowered = self.lower_scalar(expr, &schema)?;
                        let Expr::Column(name) = &lowered else {
                            return Err(SqlError::Unsupported {
                                message: "non-aggregate select items must be grouping columns"
                                    .into(),
                                span: expr.span(),
                            });
                        };
                        if !group_by.contains(name) {
                            return Err(SqlError::Unsupported {
                                message: format!(
                                    "column `{name}` must appear in GROUP BY or inside an aggregate"
                                ),
                                span: expr.span(),
                            });
                        }
                        let source = strip_qualifier(name);
                        let alias = alias
                            .as_ref()
                            .map(|a| a.name.clone())
                            .unwrap_or_else(|| source.clone());
                        output_spec.push((source, alias));
                    }
                },
            }
        }

        // HAVING: inline aggregate calls are rewritten to references to γ
        // output columns, adding hidden aggregates when necessary.
        let visible = aggregates.len();
        let having_sql = match &s.having {
            Some(h) => Some(self.rewrite_having(h, &schema, &mut aggregates)?),
            None => None,
        };

        let groupby = Query::GroupBy {
            input: Arc::new(plan),
            group_by,
            aggregates: aggregates.clone(),
            having: None,
        };
        let gamma_schema = self.schema_of(&groupby, s.span)?;
        let having = match having_sql {
            Some(h) => Some(self.lower_scalar(&h, &gamma_schema)?),
            None => None,
        };
        let Query::GroupBy {
            input, group_by, ..
        } = groupby
        else {
            unreachable!()
        };
        let mut plan = Query::GroupBy {
            input,
            group_by,
            aggregates: aggregates.clone(),
            having,
        };

        // Final projection, unless the select list already matches the γ
        // output exactly (same columns, same order, no hidden aggregates).
        let gamma_names: Vec<String> = gamma_schema.names().map(str::to_owned).collect();
        let spec_matches = aggregates.len() == visible
            && output_spec.len() == gamma_names.len()
            && output_spec
                .iter()
                .zip(&gamma_names)
                .all(|((src, alias), g)| src == g && alias == g);
        if !spec_matches {
            plan = Query::Project {
                input: Arc::new(plan),
                items: output_spec
                    .into_iter()
                    .map(|(source, alias)| ProjectItem {
                        expr: Expr::Column(source),
                        alias,
                    })
                    .collect(),
            };
        }
        let out = self.schema_of(&plan, s.span)?;
        Ok((plan, out))
    }

    fn lower_agg_call(
        &mut self,
        func: AggFunc,
        arg: Option<&SqlExpr>,
        span: Span,
        schema: &Schema,
        alias: &Option<Ident>,
    ) -> Result<AggCall, SqlError> {
        let alias = alias
            .as_ref()
            .map(|a| a.name.clone())
            .unwrap_or_else(|| func.name().to_owned());
        Ok(match arg {
            None => AggCall::count_star(alias),
            Some(a) => {
                if a.has_aggregate() {
                    return Err(SqlError::Unsupported {
                        message: "nested aggregate calls are not supported".into(),
                        span,
                    });
                }
                AggCall {
                    func,
                    arg: self.lower_scalar(a, schema)?,
                    alias,
                }
            }
        })
    }

    /// Replace aggregate calls inside a HAVING expression with column
    /// references to γ outputs, registering hidden aggregates as needed.
    fn rewrite_having(
        &mut self,
        e: &SqlExpr,
        input_schema: &Schema,
        aggregates: &mut Vec<AggCall>,
    ) -> Result<SqlExpr, SqlError> {
        Ok(match e {
            SqlExpr::Agg { func, arg, span } => {
                let call =
                    self.lower_agg_call(*func, arg.as_deref(), *span, input_schema, &None)?;
                let alias = match aggregates
                    .iter()
                    .find(|a| a.func == call.func && a.arg == call.arg)
                {
                    Some(existing) => existing.alias.clone(),
                    None => {
                        let hidden = format!("__agg{}", aggregates.len());
                        aggregates.push(AggCall {
                            alias: hidden.clone(),
                            ..call
                        });
                        hidden
                    }
                };
                SqlExpr::Column {
                    qualifier: None,
                    name: Ident {
                        name: alias,
                        span: *span,
                    },
                    span: *span,
                }
            }
            SqlExpr::Unary { op, expr, span } => SqlExpr::Unary {
                op: *op,
                expr: Box::new(self.rewrite_having(expr, input_schema, aggregates)?),
                span: *span,
            },
            SqlExpr::Binary {
                op,
                left,
                right,
                span,
            } => SqlExpr::Binary {
                op: *op,
                left: Box::new(self.rewrite_having(left, input_schema, aggregates)?),
                right: Box::new(self.rewrite_having(right, input_schema, aggregates)?),
                span: *span,
            },
            SqlExpr::InSubquery { span, .. } | SqlExpr::Exists { span, .. } => {
                return Err(SqlError::Unsupported {
                    message: "subqueries are not supported in HAVING".into(),
                    span: *span,
                })
            }
            other => other.clone(),
        })
    }

    /// Lower a scalar expression, resolving every column reference against
    /// `schema` and rewriting it to the canonical schema column name.
    fn lower_scalar(&mut self, e: &SqlExpr, schema: &Schema) -> Result<Expr, SqlError> {
        match e {
            SqlExpr::Column {
                qualifier,
                name,
                span,
            } => {
                let written = SqlExpr::column_text(qualifier, name);
                match Expr::resolve_column(schema, &written) {
                    Ok(idx) => Ok(Expr::Column(schema.column(idx).name.clone())),
                    Err(QueryError::AmbiguousColumn { candidates, .. }) => {
                        Err(SqlError::AmbiguousColumn {
                            name: written,
                            span: *span,
                            candidates,
                        })
                    }
                    Err(_) => {
                        let available: Vec<String> = schema.names().map(str::to_owned).collect();
                        // Suggest against full names and their unqualified
                        // suffixes, whichever is closer to what was written.
                        let hint = did_you_mean(
                            &written,
                            schema
                                .names()
                                .flat_map(|n| [n, n.rsplit_once('.').map_or(n, |(_, s)| s)]),
                        );
                        Err(SqlError::UnknownColumn {
                            name: written,
                            span: *span,
                            available,
                            hint,
                        })
                    }
                }
            }
            SqlExpr::Literal { value, .. } => Ok(Expr::Literal(value.clone())),
            SqlExpr::Param { name, .. } => Ok(Expr::Param(name.clone())),
            SqlExpr::Unary { op, expr, .. } => Ok(Expr::Unary {
                op: *op,
                expr: Box::new(self.lower_scalar(expr, schema)?),
            }),
            SqlExpr::Binary {
                op, left, right, ..
            } => Ok(Expr::Binary {
                op: *op,
                left: Box::new(self.lower_scalar(left, schema)?),
                right: Box::new(self.lower_scalar(right, schema)?),
            }),
            SqlExpr::Agg { span, .. } => Err(SqlError::Unsupported {
                message: "aggregate calls are only allowed in SELECT items and HAVING".into(),
                span: *span,
            }),
            SqlExpr::InSubquery { span, .. } | SqlExpr::Exists { span, .. } => {
                Err(SqlError::Unsupported {
                    message: "IN/EXISTS subqueries must be top-level conjuncts of WHERE".into(),
                    span: *span,
                })
            }
        }
    }
}

/// `s.name` → `name` (the output naming SQL result sets use).
fn strip_qualifier(name: &str) -> String {
    name.rsplit_once('.')
        .map(|(_, last)| last.to_owned())
        .unwrap_or_else(|| name.to_owned())
}
