//! Hand-rolled SQL tokenizer with byte-span tokens.
//!
//! Keywords are not distinguished lexically — the parser matches identifiers
//! case-insensitively — so relation and column names that happen to collide
//! with keywords in other dialects keep working. Line comments start with
//! `--`; string literals are single-quoted with `''` escaping; `DATE
//! 'YYYY-MM-DD'` literals are handled in the parser (the lexer just yields
//! the `DATE` identifier followed by a string).

use crate::error::{Span, SqlError};

/// A lexical token plus the byte span it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (matched case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// Query parameter: `@name`.
    Param(String),
    /// Operator: `= <> != < <= > >= + - / *`.
    Op(&'static str),
    /// Punctuation: `( ) , .`.
    Punct(char),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Int(i) => format!("`{i}`"),
            TokenKind::Float(x) => format!("`{x}`"),
            TokenKind::Str(s) => format!("'{s}'"),
            TokenKind::Param(p) => format!("`@{p}`"),
            TokenKind::Op(op) => format!("`{op}`"),
            TokenKind::Punct(c) => format!("`{c}`"),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenize SQL source into a span-carrying token stream (ending in `Eof`).
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    loop {
        // Skip whitespace and `--` comments.
        loop {
            match bytes.get(pos) {
                Some(c) if c.is_ascii_whitespace() => pos += 1,
                Some(b'-') if bytes.get(pos + 1) == Some(&b'-') => {
                    while let Some(&c) = bytes.get(pos) {
                        pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        let start = pos;
        let Some(&c) = bytes.get(pos) else {
            out.push(Token {
                kind: TokenKind::Eof,
                span: Span::new(start, start),
            });
            return Ok(out);
        };
        let kind = match c {
            b'(' | b')' | b',' | b'.' => {
                pos += 1;
                TokenKind::Punct(c as char)
            }
            b'*' => {
                pos += 1;
                TokenKind::Op("*")
            }
            b'+' => {
                pos += 1;
                TokenKind::Op("+")
            }
            b'-' => {
                pos += 1;
                TokenKind::Op("-")
            }
            b'/' => {
                pos += 1;
                TokenKind::Op("/")
            }
            b'=' => {
                pos += 1;
                TokenKind::Op("=")
            }
            b'!' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'=') {
                    pos += 1;
                    TokenKind::Op("!=")
                } else {
                    return Err(SqlError::Lex {
                        message: "unexpected `!` (use `<>` or `!=`)".into(),
                        span: Span::new(start, pos),
                    });
                }
            }
            b'<' => {
                pos += 1;
                match bytes.get(pos) {
                    Some(&b'=') => {
                        pos += 1;
                        TokenKind::Op("<=")
                    }
                    Some(&b'>') => {
                        pos += 1;
                        TokenKind::Op("<>")
                    }
                    _ => TokenKind::Op("<"),
                }
            }
            b'>' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'=') {
                    pos += 1;
                    TokenKind::Op(">=")
                } else {
                    TokenKind::Op(">")
                }
            }
            b'\'' => {
                pos += 1;
                // Copy whole segments between quote bytes as &str slices so
                // multi-byte UTF-8 text survives intact (a continuation byte
                // never equals the ASCII quote, so splitting on `'` is safe).
                let mut s = String::new();
                let mut segment = pos;
                loop {
                    match bytes.get(pos) {
                        None => {
                            return Err(SqlError::Lex {
                                message: "unterminated string literal".into(),
                                span: Span::new(start, pos),
                            })
                        }
                        Some(&b'\'') if bytes.get(pos + 1) == Some(&b'\'') => {
                            s.push_str(&input[segment..pos]);
                            s.push('\'');
                            pos += 2;
                            segment = pos;
                        }
                        Some(&b'\'') => {
                            s.push_str(&input[segment..pos]);
                            pos += 1;
                            break;
                        }
                        Some(_) => pos += 1,
                    }
                }
                TokenKind::Str(s)
            }
            b'@' => {
                pos += 1;
                let ident_start = pos;
                while bytes
                    .get(pos)
                    .map(|c| c.is_ascii_alphanumeric() || *c == b'_')
                    .unwrap_or(false)
                {
                    pos += 1;
                }
                if pos == ident_start {
                    return Err(SqlError::Lex {
                        message: "expected parameter name after `@`".into(),
                        span: Span::new(start, pos),
                    });
                }
                TokenKind::Param(input[ident_start..pos].to_owned())
            }
            c if c.is_ascii_digit() => {
                while bytes.get(pos).map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    pos += 1;
                }
                let mut is_float = false;
                if bytes.get(pos) == Some(&b'.')
                    && bytes
                        .get(pos + 1)
                        .map(|c| c.is_ascii_digit())
                        .unwrap_or(false)
                {
                    is_float = true;
                    pos += 1;
                    while bytes.get(pos).map(|c| c.is_ascii_digit()).unwrap_or(false) {
                        pos += 1;
                    }
                }
                let text = &input[start..pos];
                if is_float {
                    text.parse::<f64>()
                        .map(TokenKind::Float)
                        .map_err(|e| SqlError::Lex {
                            message: format!("bad float literal: {e}"),
                            span: Span::new(start, pos),
                        })?
                } else {
                    text.parse::<i64>()
                        .map(TokenKind::Int)
                        .map_err(|_| SqlError::Lex {
                            message: format!("integer literal `{text}` overflows i64"),
                            span: Span::new(start, pos),
                        })?
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while bytes
                    .get(pos)
                    .map(|c| c.is_ascii_alphanumeric() || *c == b'_')
                    .unwrap_or(false)
                {
                    pos += 1;
                }
                TokenKind::Ident(input[start..pos].to_owned())
            }
            _ => {
                // Decode the actual (possibly multi-byte) character for the
                // message and span the whole thing.
                let ch = input[start..].chars().next().expect("byte at start");
                return Err(SqlError::Lex {
                    message: format!("unexpected character `{ch}`"),
                    span: Span::new(start, start + ch.len_utf8()),
                });
            }
        };
        out.push(Token {
            kind,
            span: Span::new(start, pos),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_a_select_statement() {
        let ks = kinds("SELECT s.name FROM Student s WHERE s.major = 'CS'");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert!(ks.contains(&TokenKind::Punct('.')));
        assert!(ks.contains(&TokenKind::Op("=")));
        assert!(ks.contains(&TokenKind::Str("CS".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn spans_cover_the_source_text() {
        let toks = tokenize("SELECT nm").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 6));
        assert_eq!(toks[1].span, Span::new(7, 9));
        assert_eq!(toks[2].span, Span::new(9, 9)); // Eof
    }

    #[test]
    fn non_ascii_string_literals_survive_intact() {
        let ks = kinds("'José' 'naïve ☕'");
        assert_eq!(ks[0], TokenKind::Str("José".into()));
        assert_eq!(ks[1], TokenKind::Str("naïve ☕".into()));
        // Outside a string, a non-ASCII character is a spanned lex error
        // naming the real character.
        let err = tokenize("a ☕ b").unwrap_err();
        assert!(err.to_string().contains('☕'), "{err}");
        assert_eq!(err.span(), Span::new(2, 2 + '☕'.len_utf8()));
    }

    #[test]
    fn comments_strings_numbers_params() {
        let ks = kinds("-- header\n42 2.5 'it''s' @cutoff");
        assert_eq!(
            ks,
            vec![
                TokenKind::Int(42),
                TokenKind::Float(2.5),
                TokenKind::Str("it's".into()),
                TokenKind::Param("cutoff".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_including_two_char_forms() {
        let ks = kinds("a <> b <= c >= d != e < f > g");
        let ops: Vec<&str> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Op(o) => Some(*o),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["<>", "<=", ">=", "!=", "<", ">"]);
    }

    #[test]
    fn lex_errors_carry_spans() {
        let err = tokenize("a ? b").unwrap_err();
        assert_eq!(err.span(), Span::new(2, 3));
        assert_eq!(err.kind(), "lex");
        let err = tokenize("'open").unwrap_err();
        assert_eq!(err.span().start, 0);
        assert!(tokenize("@ x").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
