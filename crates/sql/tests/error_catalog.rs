//! Every fixture under `examples/sql/errors/` must produce exactly the
//! diagnostic its expectation header promises — same kind, same span start,
//! and a phase matching its filename prefix.
//!
//! Header convention (see `examples/sql/README.md`):
//!
//! ```sql
//! -- expect: <kind> at <needle>
//! ```
//!
//! `<needle>`'s first occurrence after the header line is the expected span
//! start; `<eof>` means the span starts at end of input.

use ratest_ra::testdata::figure1_db;
use ratest_sql::compile_sql;
use std::path::PathBuf;

fn errors_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/sql/errors")
}

#[test]
fn every_error_fixture_produces_its_promised_diagnostic() {
    let db = figure1_db();
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(errors_dir())
        .expect("examples/sql/errors exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "sql"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();

        // Parse the expectation header.
        let header = source.lines().next().unwrap_or_default();
        let spec = header
            .strip_prefix("-- expect:")
            .unwrap_or_else(|| panic!("{name}: missing `-- expect:` header"))
            .trim();
        let (kind, needle) = spec
            .split_once(" at ")
            .unwrap_or_else(|| panic!("{name}: header must be `<kind> at <needle>`"));
        let body_start = source.find('\n').map(|i| i + 1).unwrap_or(0);
        let expected_start = if needle == "<eof>" {
            source.len()
        } else {
            body_start
                + source[body_start..]
                    .find(needle)
                    .unwrap_or_else(|| panic!("{name}: needle `{needle}` not found in body"))
        };

        let err = compile_sql(&source, &db)
            .map(|_| ())
            .expect_err(&format!("{name}: expected a diagnostic, but it compiled"));
        assert_eq!(err.kind(), kind, "{name}: wrong kind ({err})");
        assert_eq!(
            err.span().start,
            expected_start,
            "{name}: wrong span start ({err})"
        );

        // The filename prefix must match the phase of the diagnostic.
        let phase_prefix = name.split('_').next().unwrap();
        assert_eq!(
            err.phase().name(),
            phase_prefix,
            "{name}: phase prefix does not match the diagnostic phase"
        );

        // Rendering against the source must point at the right line.
        let rendered = err.render(&source);
        assert!(rendered.contains("-->"), "{name}: rendering lacks location");
        checked += 1;
    }
    assert!(
        checked >= 7,
        "the error catalog should cover all phases (found {checked} fixtures)"
    );
}
