//! Round-trip property: lowering SQL, rendering the plan in the RA surface
//! syntax and re-parsing it must be canonical-fingerprint-stable. This pins
//! the three representations together — SQL text, RA tree and RA surface
//! text — which the grader relies on when deduping mixed cohorts.

use proptest::prelude::*;
use ratest_ra::canonical::fingerprint;
use ratest_ra::display::to_surface_string;
use ratest_ra::eval::evaluate;
use ratest_ra::parser::parse_query;
use ratest_ra::testdata::figure1_db;
use ratest_sql::compile_sql;

const DEPTS: [&str; 2] = ["CS", "ECON"];
const OPS: [&str; 5] = ["=", "<>", "<", ">=", "<="];

/// Build one SQL text from generator draws. Covers plain selects, both join
/// spellings, aggregates with HAVING, EXCEPT/UNION and IN-subqueries.
fn render_sql(shape: u8, dept: usize, op: usize, threshold: i64, distinct: bool) -> String {
    let dept = DEPTS[dept % DEPTS.len()];
    let op = OPS[op % OPS.len()];
    let distinct = if distinct { "DISTINCT " } else { "" };
    match shape % 6 {
        0 => format!("SELECT {distinct}name, major FROM Student WHERE major = '{dept}'"),
        1 => format!(
            "SELECT s.name, s.major FROM Student s JOIN Registration r \
             ON s.name = r.name AND r.dept = '{dept}' WHERE r.grade {op} {threshold}"
        ),
        2 => format!(
            "SELECT {distinct}s.name FROM Student s, Registration r \
             WHERE s.name = r.name AND r.grade {op} {threshold}"
        ),
        3 => format!(
            "SELECT name, COUNT(*) AS n FROM Registration WHERE dept = '{dept}' \
             GROUP BY name HAVING n {op} {threshold}"
        ),
        4 => format!(
            "SELECT name FROM Student EXCEPT \
             SELECT name FROM Registration WHERE dept = '{dept}'"
        ),
        _ => format!(
            "SELECT name, major FROM Student WHERE name IN \
             (SELECT name FROM Registration WHERE grade {op} {threshold})"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// compile(sql) —render→ surface —parse→ plan' must keep the canonical
    /// fingerprint, and both plans must evaluate identically.
    #[test]
    fn surface_round_trip_is_fingerprint_stable(
        shape in 0u8..6,
        dept in 0usize..2,
        op in 0usize..5,
        threshold in 0i64..101,
        distinct in 0u8..2,
    ) {
        let db = figure1_db();
        let sql = render_sql(shape, dept, op, threshold, distinct == 1);
        let lowered = compile_sql(&sql, &db).expect("generated SQL compiles");
        let rendered = to_surface_string(&lowered);
        let reparsed = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("`{rendered}` does not re-parse: {e}"));
        prop_assert_eq!(
            fingerprint(&lowered),
            fingerprint(&reparsed),
            "round trip changed the fingerprint of `{}` (rendered `{}`)",
            sql,
            rendered
        );
        let a = evaluate(&lowered, &db).expect("lowered plan evaluates");
        let b = evaluate(&reparsed, &db).expect("re-parsed plan evaluates");
        prop_assert!(a.set_eq(&b), "round trip changed results of `{}`", sql);
    }
}
