//! SQL ↔ RA parity for the reference workloads: the SQL renditions in
//! `ratest_queries::course_sql` must lower to plans that (a) share the RA
//! references' canonical fingerprints — so SQL and RA submissions of the
//! same answer dedup into one grading group — and (b) evaluate identically
//! on both the toy Figure 1 instance and a generated university instance.

use ratest_datagen::{tpch_database, university_database, TpchConfig, UniversityConfig};
use ratest_queries::course::course_questions;
use ratest_queries::course_sql::{course_sql_texts, TPCH_Q4_SQL};
use ratest_queries::tpch_queries::q4 as tpch_q4_ra;
use ratest_ra::canonical::{canonical_form, fingerprint};
use ratest_ra::eval::evaluate;
use ratest_ra::testdata::figure1_db;
use ratest_sql::compile_sql;

#[test]
fn course_sql_fingerprints_match_the_ra_references() {
    let db = figure1_db();
    let references = course_questions();
    for (number, sql) in course_sql_texts() {
        let reference = &references[number - 1].reference;
        let lowered = compile_sql(sql, &db)
            .unwrap_or_else(|e| panic!("question {number} SQL does not compile: {e}"));
        assert_eq!(
            fingerprint(&lowered),
            fingerprint(reference),
            "question {number}: SQL and RA canonical forms diverge\nSQL:  {}\nRA:   {}",
            canonical_form(&lowered),
            canonical_form(reference),
        );
    }
}

#[test]
fn course_sql_evaluates_like_the_ra_references() {
    let toy = figure1_db();
    let generated = university_database(&UniversityConfig::with_total(300));
    let references = course_questions();
    for (number, sql) in course_sql_texts() {
        let reference = &references[number - 1].reference;
        for db in [&toy, &generated] {
            let lowered = compile_sql(sql, db).unwrap();
            let a = evaluate(&lowered, db).unwrap();
            let b = evaluate(reference, db).unwrap();
            assert!(
                a.set_eq(&b),
                "question {number}: SQL and RA results differ on {}",
                db.name()
            );
        }
    }
}

#[test]
fn tpch_q4_sql_matches_the_ra_reference() {
    let db = tpch_database(&TpchConfig::with_scale(0.0008));
    let lowered = compile_sql(TPCH_Q4_SQL, &db).expect("TPC-H Q4 SQL compiles");
    let reference = tpch_q4_ra();
    assert_eq!(
        fingerprint(&lowered),
        fingerprint(&reference),
        "TPC-H Q4: SQL and RA canonical forms diverge\nSQL:  {}\nRA:   {}",
        canonical_form(&lowered),
        canonical_form(&reference),
    );
    let a = evaluate(&lowered, &db).unwrap();
    let b = evaluate(&reference, &db).unwrap();
    assert!(a.set_eq(&b));
}
