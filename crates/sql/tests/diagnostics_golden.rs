//! Golden-file tests for the rendered `SqlError` diagnostics: every fixture
//! in `examples/sql/errors/` has its full caret rendering pinned under
//! `tests/golden/`, so a regression in messages, spans, hints or the caret
//! line itself fails loudly with a diff instead of drifting silently.
//!
//! To re-bless after an *intentional* diagnostics change:
//!
//! ```text
//! BLESS=1 cargo test -p ratest_sql --test diagnostics_golden
//! ```

use ratest_ra::testdata::figure1_db;
use ratest_sql::compile_sql;
use std::path::PathBuf;

fn errors_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/sql/errors")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn every_error_fixture_has_a_pinned_caret_rendering() {
    let bless = std::env::var_os("BLESS").is_some();
    let db = figure1_db();
    let mut fixtures: Vec<_> = std::fs::read_dir(errors_dir())
        .expect("examples/sql/errors exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "sql"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "the error catalog must not be empty");

    let mut pinned = 0usize;
    for path in &fixtures {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(path).unwrap();
        let err = compile_sql(&source, &db)
            .map(|_| ())
            .expect_err(&format!("{stem}: expected a diagnostic, but it compiled"));
        let rendered = err.render(&source);
        assert!(
            rendered.contains('^'),
            "{stem}: rendering has no caret line:\n{rendered}"
        );

        let golden_path = golden_dir().join(format!("{stem}.txt"));
        if bless {
            std::fs::create_dir_all(golden_dir()).unwrap();
            std::fs::write(&golden_path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "{stem}: missing golden file {} — run with BLESS=1 to create it",
                golden_path.display()
            )
        });
        assert_eq!(
            rendered,
            golden,
            "\n{stem}: rendered diagnostic drifted from {}.\n\
             If the change is intentional, re-bless with BLESS=1.\n\
             --- rendered ---\n{rendered}\n--- golden ---\n{golden}",
            golden_path.display()
        );
        pinned += 1;
    }
    if !bless {
        assert_eq!(pinned, fixtures.len());
    }

    // The reverse direction: every golden file corresponds to a live
    // fixture, so deleting a fixture cannot leave a stale pin behind.
    for entry in std::fs::read_dir(golden_dir()).expect("tests/golden exists") {
        let golden = entry.unwrap().path();
        if golden.extension().is_some_and(|e| e == "txt") {
            let stem = golden.file_stem().unwrap().to_string_lossy().into_owned();
            assert!(
                fixtures
                    .iter()
                    .any(|f| f.file_stem().unwrap().to_string_lossy() == stem),
                "stale golden file {} has no fixture",
                golden.display()
            );
        }
    }
}
