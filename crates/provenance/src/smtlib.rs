//! Rendering provenance constraints in SMT-LIB 2 syntax.
//!
//! The original RATest passed its constraints to Z3 in SMT-LIB format
//! (Listings 1 and 2 of the paper). Our solver consumes structured formulas
//! directly, but the SMT-LIB rendering remains useful for debugging, for the
//! documentation examples, and as an escape hatch for users who want to feed
//! the constraints to an external solver.

use crate::aggprov::GroupProvenance;
use crate::boolexpr::BoolExpr;
use ratest_ra::ast::AggFunc;
use ratest_storage::{TupleId, Value};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Render a tuple variable name (`t<relation>_<row>`).
pub fn tuple_var(id: TupleId) -> String {
    format!("t{}_{}", id.relation, id.row)
}

/// Render a Boolean provenance expression as an SMT-LIB term.
pub fn bool_term(expr: &BoolExpr) -> String {
    match expr {
        BoolExpr::True => "true".into(),
        BoolExpr::False => "false".into(),
        BoolExpr::Var(id) => tuple_var(*id),
        BoolExpr::And(parts) => nary("and", parts),
        BoolExpr::Or(parts) => nary("or", parts),
        BoolExpr::Not(inner) => format!("(not {})", bool_term(inner)),
    }
}

fn nary(op: &str, parts: &[BoolExpr]) -> String {
    let mut s = format!("({op}");
    for p in parts {
        s.push(' ');
        s.push_str(&bool_term(p));
    }
    s.push(')');
    s
}

/// Render the complete min-ones problem for an SPJUD witness (Listing 1 of
/// the paper): declare one Boolean per tuple, define `b2i`, assert the
/// provenance, and minimize the number of true variables.
pub fn render_min_ones(provenance: &BoolExpr, foreign_keys: &[(TupleId, TupleId)]) -> String {
    let mut vars: BTreeSet<TupleId> = provenance.variables();
    for (c, p) in foreign_keys {
        vars.insert(*c);
        vars.insert(*p);
    }
    let mut out = String::new();
    for v in &vars {
        let _ = writeln!(out, "(declare-const {} Bool)", tuple_var(*v));
    }
    let _ = writeln!(out, "(define-fun b2i ((x Bool)) Int (ite x 1 0))");
    let _ = writeln!(out, "(assert {})", bool_term(provenance));
    for (child, parent) in foreign_keys {
        let _ = writeln!(
            out,
            "(assert (=> {} {}))",
            tuple_var(*child),
            tuple_var(*parent)
        );
    }
    let objective: Vec<String> = vars
        .iter()
        .map(|v| format!("(b2i {})", tuple_var(*v)))
        .collect();
    let _ = writeln!(out, "(minimize (+ {}))", objective.join(" "));
    let _ = writeln!(out, "(check-sat)");
    let _ = writeln!(out, "(get-model)");
    out
}

fn value_term(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Double(f) => format!("{f}"),
        Value::Bool(b) => b.to_string(),
        other => format!("\"{other}\""),
    }
}

/// Render the symbolic aggregate value of a group for one aggregate call as
/// an SMT-LIB arithmetic term over `b2i(t)` indicators (the
/// `t4 ⊗ 100 +_AVG t5 ⊗ 75` terms of Table 2).
pub fn aggregate_term(group: &GroupProvenance, agg_index: usize) -> String {
    let func = group.aggregates[agg_index].func;
    let weighted: Vec<String> = group
        .members
        .iter()
        .map(|m| {
            format!(
                "(* (b2i {}) {})",
                guard_term(&m.provenance),
                value_term(&m.agg_args[agg_index])
            )
        })
        .collect();
    let indicator: Vec<String> = group
        .members
        .iter()
        .map(|m| format!("(b2i {})", guard_term(&m.provenance)))
        .collect();
    match func {
        AggFunc::Count => format!("(+ {})", indicator.join(" ")),
        AggFunc::Sum => format!("(+ {})", weighted.join(" ")),
        AggFunc::Avg => format!("(/ (+ {}) (+ {}))", weighted.join(" "), indicator.join(" ")),
        // MIN/MAX have no compact linear encoding; render an uninterpreted
        // marker that documents the intent (the solver layer handles these
        // lazily by evaluation, not symbolically).
        AggFunc::Min => format!("(min {})", weighted.join(" ")),
        AggFunc::Max => format!("(max {})", weighted.join(" ")),
    }
}

/// Render the group's existence provenance as a guard usable inside `b2i`.
fn guard_term(p: &BoolExpr) -> String {
    bool_term(p)
}

/// Render the "these two aggregate queries differ on this group" constraint
/// in the style of Listing 2: either exactly one group exists (and passes its
/// HAVING), or both exist with different values of the `agg_index`-th
/// aggregate.
pub fn render_aggregate_difference(
    g1: Option<&GroupProvenance>,
    g2: Option<&GroupProvenance>,
    agg_index: usize,
    params: &[(&str, i64)],
) -> String {
    let mut vars: BTreeSet<TupleId> = BTreeSet::new();
    if let Some(g) = g1 {
        vars.extend(g.variables());
    }
    if let Some(g) = g2 {
        vars.extend(g.variables());
    }
    let mut out = String::new();
    for v in &vars {
        let _ = writeln!(out, "(declare-const {} Bool)", tuple_var(*v));
    }
    for (p, _) in params {
        let _ = writeln!(out, "(declare-const {p} Int)");
    }
    let _ = writeln!(out, "(define-fun b2i ((x Bool)) Int (ite x 1 0))");
    let exists = |g: Option<&GroupProvenance>| -> String {
        match g {
            Some(g) => bool_term(&g.exists),
            None => "false".into(),
        }
    };
    let value = |g: Option<&GroupProvenance>| -> String {
        match g {
            Some(g) => aggregate_term(g, agg_index),
            None => "0".into(),
        }
    };
    let _ = writeln!(
        out,
        "(assert (or (distinct {} {}) (not (= {} {}))))",
        exists(g1),
        exists(g2),
        value(g1),
        value(g2)
    );
    let objective: Vec<String> = vars
        .iter()
        .map(|v| format!("(b2i {})", tuple_var(*v)))
        .collect();
    let _ = writeln!(out, "(minimize (+ {}))", objective.join(" "));
    let _ = writeln!(out, "(check-sat)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggprov::aggregate_provenance;
    use ratest_ra::expr::ParamMap;
    use ratest_ra::testdata;

    fn t(rel: u32, row: u32) -> TupleId {
        TupleId::new(rel, row)
    }

    #[test]
    fn listing1_shape() {
        // Mary's witness provenance from Example 3 / Listing 1.
        let prv = BoolExpr::and2(
            BoolExpr::or2(BoolExpr::var(t(1, 0)), BoolExpr::var(t(1, 1))),
            BoolExpr::and2(
                BoolExpr::var(t(0, 0)),
                BoolExpr::or2(BoolExpr::var(t(1, 0)), BoolExpr::var(t(1, 1))),
            )
            .negate()
            .negate(),
        );
        let text = render_min_ones(&prv, &[(t(1, 0), t(0, 0))]);
        assert!(text.contains("(declare-const t0_0 Bool)"));
        assert!(text.contains("(define-fun b2i ((x Bool)) Int (ite x 1 0))"));
        assert!(text.contains("(assert"));
        assert!(text.contains("(=> t1_0 t0_0)"));
        assert!(text.contains("(minimize (+"));
        assert!(text.contains("(check-sat)"));
    }

    #[test]
    fn bool_terms_render_connectives() {
        let e = BoolExpr::and2(BoolExpr::var(t(0, 1)), BoolExpr::var(t(0, 2)).negate());
        assert_eq!(bool_term(&e), "(and t0_1 (not t0_2))");
        assert_eq!(bool_term(&BoolExpr::True), "true");
    }

    #[test]
    fn listing2_shape_for_example6() {
        let db = testdata::figure1_db();
        let p1 = aggregate_provenance(&testdata::example6_q1(), &db, &ParamMap::new()).unwrap();
        let p2 = aggregate_provenance(&testdata::example6_q2(), &db, &ParamMap::new()).unwrap();
        let mary = vec![Value::from("Mary")];
        let text = render_aggregate_difference(
            p1.group_by_key(&mary),
            p2.group_by_key(&mary),
            0,
            &[("num_CS", 3)],
        );
        assert!(text.contains("(declare-const num_CS Int)"));
        assert!(text.contains("(assert (or (distinct"));
        assert!(text.contains("(/ (+"), "AVG renders as a quotient: {text}");
        assert!(text.contains("(minimize"));
    }

    #[test]
    fn count_and_sum_terms() {
        let db = testdata::figure1_db();
        let p1 = aggregate_provenance(&testdata::example5_q1(), &db, &ParamMap::new()).unwrap();
        let mary = p1.group_by_key(&[Value::from("Mary")]).unwrap();
        // aggregate 1 is COUNT(course)
        let term = aggregate_term(mary, 1);
        assert!(term.starts_with("(+"));
        assert!(!term.contains('*'), "COUNT uses bare indicators: {term}");
    }
}
