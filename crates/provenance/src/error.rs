//! Errors raised by the provenance layer.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ProvenanceError>;

/// Errors raised while computing provenance.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvenanceError {
    /// An error bubbled up from query evaluation or type checking.
    Query(ratest_ra::QueryError),
    /// The query shape is not supported by the aggregate-provenance
    /// annotator (e.g. a difference above an aggregation, which the paper
    /// excludes by assumption (3) of Section 5).
    UnsupportedAggregateShape(String),
    /// DNF conversion exceeded its size budget (the formula has too many
    /// minterms to expand explicitly).
    DnfTooLarge {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvenanceError::Query(e) => write!(f, "query error: {e}"),
            ProvenanceError::UnsupportedAggregateShape(msg) => {
                write!(f, "unsupported aggregate query shape: {msg}")
            }
            ProvenanceError::DnfTooLarge { limit } => {
                write!(f, "DNF expansion exceeded {limit} minterms")
            }
        }
    }
}

impl std::error::Error for ProvenanceError {}

impl From<ratest_ra::QueryError> for ProvenanceError {
    fn from(e: ratest_ra::QueryError) -> Self {
        ProvenanceError::Query(e)
    }
}

impl From<ratest_storage::StorageError> for ProvenanceError {
    fn from(e: ratest_storage::StorageError) -> Self {
        ProvenanceError::Query(ratest_ra::QueryError::Storage(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: ProvenanceError = ratest_ra::QueryError::MissingParameter("p".into()).into();
        assert!(e.to_string().contains("@p"));
        let e: ProvenanceError = ratest_storage::StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains('R'));
        assert!(ProvenanceError::DnfTooLarge { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(ProvenanceError::UnsupportedAggregateShape("x".into())
            .to_string()
            .contains('x'));
    }
}
