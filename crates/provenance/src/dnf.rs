//! DNF expansion of monotone provenance.
//!
//! For SPJU queries the provenance of an output tuple is monotone (no
//! negation) and, for bounded-size queries, can be expanded into a DNF with
//! polynomially many minterms (Proposition A.1). The smallest witness is then
//! simply the minterm with the fewest literals (Theorem 6). This module
//! implements that expansion with an explicit size budget so the caller can
//! fall back to the solver when the formula is too large.

use crate::boolexpr::BoolExpr;
use crate::error::{ProvenanceError, Result};
use ratest_storage::TupleId;
use std::collections::BTreeSet;

/// One minterm: a conjunction of tuple variables.
pub type Minterm = BTreeSet<TupleId>;

/// A monotone formula in disjunctive normal form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dnf {
    minterms: Vec<Minterm>,
}

impl Dnf {
    /// The DNF with no minterms (equivalent to `false`).
    pub fn none() -> Self {
        Dnf::default()
    }

    /// The DNF containing the empty minterm (equivalent to `true`).
    pub fn tautology() -> Self {
        Dnf {
            minterms: vec![BTreeSet::new()],
        }
    }

    /// The minterms.
    pub fn minterms(&self) -> &[Minterm] {
        &self.minterms
    }

    /// Number of minterms.
    pub fn len(&self) -> usize {
        self.minterms.len()
    }

    /// Whether there are no minterms (the formula is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.minterms.is_empty()
    }

    /// The minterm with the fewest literals — the smallest witness for a
    /// monotone provenance expression (Theorem 6).
    pub fn smallest_minterm(&self) -> Option<&Minterm> {
        self.minterms.iter().min_by_key(|m| m.len())
    }

    /// Keep only *minimal* minterms: drop any minterm that is a superset of
    /// another (those can never be smallest witnesses and correspond to
    /// non-minimal witnesses in the sense of Buneman et al.).
    pub fn minimize(&mut self) {
        let mut kept: Vec<Minterm> = Vec::with_capacity(self.minterms.len());
        // Sort by size so subsets are seen before supersets.
        let mut sorted = self.minterms.clone();
        sorted.sort_by_key(|m| m.len());
        for m in sorted {
            if !kept.iter().any(|k| k.is_subset(&m)) {
                kept.push(m);
            }
        }
        self.minterms = kept;
    }

    /// Evaluate the DNF under a set of retained tuples.
    pub fn eval_set(&self, retained: &BTreeSet<TupleId>) -> bool {
        self.minterms.iter().any(|m| m.is_subset(retained))
    }

    /// Expand a **monotone** provenance expression into DNF, aborting with
    /// [`ProvenanceError::DnfTooLarge`] once more than `limit` minterms would
    /// be produced.
    pub fn from_monotone(expr: &BoolExpr, limit: usize) -> Result<Dnf> {
        let mut dnf = expand(expr, limit)?;
        dnf.minimize();
        Ok(dnf)
    }
}

fn expand(expr: &BoolExpr, limit: usize) -> Result<Dnf> {
    match expr {
        BoolExpr::True => Ok(Dnf::tautology()),
        BoolExpr::False => Ok(Dnf::none()),
        BoolExpr::Var(id) => Ok(Dnf {
            minterms: vec![std::iter::once(*id).collect()],
        }),
        BoolExpr::Or(parts) => {
            let mut out = Dnf::none();
            for p in parts {
                let sub = expand(p, limit)?;
                out.minterms.extend(sub.minterms);
                if out.minterms.len() > limit {
                    return Err(ProvenanceError::DnfTooLarge { limit });
                }
            }
            Ok(out)
        }
        BoolExpr::And(parts) => {
            let mut acc = Dnf::tautology();
            for p in parts {
                let sub = expand(p, limit)?;
                let mut next = Vec::new();
                for a in &acc.minterms {
                    for b in &sub.minterms {
                        let mut merged = a.clone();
                        merged.extend(b.iter().copied());
                        next.push(merged);
                        if next.len() > limit {
                            return Err(ProvenanceError::DnfTooLarge { limit });
                        }
                    }
                }
                acc.minterms = next;
                if acc.minterms.is_empty() {
                    return Ok(Dnf::none());
                }
            }
            Ok(acc)
        }
        BoolExpr::Not(_) => Err(ProvenanceError::UnsupportedAggregateShape(
            "DNF expansion requires a monotone (negation-free) formula".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(row: u32) -> TupleId {
        TupleId::new(0, row)
    }
    fn v(row: u32) -> BoolExpr {
        BoolExpr::var(t(row))
    }

    #[test]
    fn expansion_of_simple_formulas() {
        // a(b + c) = ab + ac
        let e = BoolExpr::and2(v(1), BoolExpr::or2(v(2), v(3)));
        let dnf = Dnf::from_monotone(&e, 100).unwrap();
        assert_eq!(dnf.len(), 2);
        assert!(dnf.minterms().iter().all(|m| m.len() == 2));
        assert_eq!(dnf.smallest_minterm().unwrap().len(), 2);
    }

    #[test]
    fn minimization_drops_supersets() {
        // a + ab  =>  a
        let e = BoolExpr::or2(v(1), BoolExpr::and2(v(1), v(2)));
        let dnf = Dnf::from_monotone(&e, 100).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf.smallest_minterm().unwrap().len(), 1);
    }

    #[test]
    fn constants() {
        assert!(Dnf::from_monotone(&BoolExpr::False, 10).unwrap().is_empty());
        let taut = Dnf::from_monotone(&BoolExpr::True, 10).unwrap();
        assert_eq!(taut.smallest_minterm().unwrap().len(), 0);
        // false conjunct annihilates
        let e = BoolExpr::And(vec![v(1), BoolExpr::False]);
        assert!(Dnf::from_monotone(&e, 10).unwrap().is_empty());
    }

    #[test]
    fn negation_is_rejected() {
        let e = v(1).negate();
        assert!(Dnf::from_monotone(&e, 10).is_err());
    }

    #[test]
    fn size_budget_is_enforced() {
        // (a1 + a2)(a3 + a4)(a5 + a6) ... grows exponentially.
        let mut parts = Vec::new();
        for i in 0..12 {
            parts.push(BoolExpr::or2(v(2 * i), v(2 * i + 1)));
        }
        let e = BoolExpr::and(parts);
        assert!(matches!(
            Dnf::from_monotone(&e, 1000),
            Err(ProvenanceError::DnfTooLarge { .. })
        ));
        assert!(Dnf::from_monotone(&e, 10_000).is_ok());
    }

    #[test]
    fn evaluation_matches_boolexpr() {
        let e = BoolExpr::or2(BoolExpr::and2(v(1), v(2)), v(3));
        let dnf = Dnf::from_monotone(&e, 100).unwrap();
        for sample in [vec![1, 2], vec![3], vec![1], vec![2, 3]] {
            let set: BTreeSet<TupleId> = sample.iter().map(|&r| t(r)).collect();
            assert_eq!(dnf.eval_set(&set), e.eval_set(&set));
        }
    }
}
