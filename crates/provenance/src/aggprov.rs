//! Provenance for aggregate queries (Section 5.2 of the paper, following
//! Amsterdamer, Deutch and Tannen's aggregate-provenance semiring).
//!
//! The paper's assumptions on aggregate queries (Section 5) are mirrored
//! here:
//!
//! 1. no aggregate values and no NULLs among the group-by attributes,
//! 2. HAVING predicates are simple comparisons over aggregate aliases and
//!    group-by columns,
//! 3. no difference operator above an aggregation.
//!
//! Concretely, an aggregate query is expected to have the shape
//! `π? ( σ? ( γ_{G; aggs; having}( Q' ) ) )` where `Q'` is an SPJUD query.
//! [`aggregate_provenance`] annotates `Q'` with Boolean how-provenance and
//! then builds, for every group, the structure the solver needs:
//!
//! * the group's **existence provenance** (`t1(t4 + t5)` in Table 2),
//! * per member tuple, its provenance and the values of each aggregate
//!   argument (`t4 ⊗ 100 +_AVG t5 ⊗ 75`), and
//! * the HAVING predicate, kept symbolic so that COUNT/SUM thresholds can be
//!   re-evaluated under a candidate sub-instance or a new parameter value
//!   (the `t4⊗1 +_SUM t5⊗1 ≥ 3` part).

use crate::annotate::annotate_instrumented;
use crate::boolexpr::BoolExpr;
use crate::error::{ProvenanceError, Result};
use ratest_ra::ast::{AggCall, ProjectItem, Query};
use ratest_ra::eval::compute_aggregate;
use ratest_ra::expr::{Expr, ParamMap};
use ratest_ra::interrupt::{Interrupt, Pacer};
use ratest_ra::typecheck::output_schema;
use ratest_storage::{Database, Schema, TupleId, Value};
use ratest_telemetry::MetricsHandle;
use std::collections::{BTreeSet, HashMap};

/// One member of a group: the provenance of the contributing input tuple and
/// the values of every aggregate argument for that tuple.
#[derive(Debug, Clone)]
pub struct GroupMember {
    /// How-provenance of the contributing (joined) input tuple.
    pub provenance: BoolExpr,
    /// One value per aggregate call, in the order of
    /// [`GroupProvenance::aggregates`].
    pub agg_args: Vec<Value>,
}

/// The provenance of one group of an aggregate query.
#[derive(Debug, Clone)]
pub struct GroupProvenance {
    /// The group-by key values.
    pub key: Vec<Value>,
    /// Existence provenance of the group: disjunction of member provenance.
    pub exists: BoolExpr,
    /// Members contributing to this group.
    pub members: Vec<GroupMember>,
    /// The aggregate calls (aliases + functions) computed for the group.
    pub aggregates: Vec<AggCall>,
    /// The HAVING predicate (over group key + aggregate aliases), if any.
    pub having: Option<Expr>,
}

impl GroupProvenance {
    /// All tuple variables involved in this group.
    pub fn variables(&self) -> BTreeSet<TupleId> {
        let mut out = self.exists.variables();
        for m in &self.members {
            out.extend(m.provenance.variables());
        }
        out
    }

    /// Recompute the aggregate output values of this group for the
    /// sub-instance described by `present`, returning `None` when the group
    /// is empty (does not exist) or fails its HAVING predicate.
    ///
    /// `schema` is the group-by output schema (key columns then aggregate
    /// aliases) and `params` supplies values for `@parameters` in HAVING.
    pub fn evaluate_under<F: Fn(TupleId) -> bool>(
        &self,
        schema: &Schema,
        present: &F,
        params: &ParamMap,
    ) -> Result<Option<Vec<Value>>> {
        let live: Vec<&GroupMember> = self
            .members
            .iter()
            .filter(|m| m.provenance.eval(present))
            .collect();
        if live.is_empty() {
            return Ok(None);
        }
        let mut row = self.key.clone();
        for (i, agg) in self.aggregates.iter().enumerate() {
            let args: Vec<Value> = live.iter().map(|m| m.agg_args[i].clone()).collect();
            row.push(compute_aggregate(agg.func, &args).map_err(ProvenanceError::Query)?);
        }
        if let Some(h) = &self.having {
            if !h
                .eval_predicate(schema, &row, params)
                .map_err(ProvenanceError::Query)?
            {
                return Ok(None);
            }
        }
        Ok(Some(row))
    }
}

/// Provenance of a full aggregate query.
#[derive(Debug, Clone)]
pub struct AggregateProvenance {
    /// Output schema of the group-by (group key columns then agg aliases).
    pub group_schema: Schema,
    /// Final output schema of the query (after the optional outer projection).
    pub output_schema: Schema,
    /// Column indices (into `group_schema`) kept by the outer projection;
    /// identity when there is no outer projection.
    pub projection: Vec<usize>,
    /// Per-group provenance.
    pub groups: Vec<GroupProvenance>,
    /// The (inner) SPJUD query feeding the aggregation — `Q'` in Algorithm 3.
    pub inner: Query,
    /// Additional selection applied *above* the aggregation (outer σ), if any.
    pub outer_having: Option<Expr>,
}

impl AggregateProvenance {
    /// Evaluate the aggregate query under a sub-instance, producing the set
    /// of final output rows. This is the "theory check" used by the lazy
    /// solving loop: cheaper than re-running the full query because the
    /// grouping structure is precomputed.
    pub fn evaluate_under<F: Fn(TupleId) -> bool>(
        &self,
        present: &F,
        params: &ParamMap,
    ) -> Result<Vec<Vec<Value>>> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for g in &self.groups {
            if let Some(row) = g.evaluate_under(&self.group_schema, present, params)? {
                if let Some(h) = &self.outer_having {
                    if !h
                        .eval_predicate(&self.group_schema, &row, params)
                        .map_err(ProvenanceError::Query)?
                    {
                        continue;
                    }
                }
                let projected: Vec<Value> =
                    self.projection.iter().map(|&i| row[i].clone()).collect();
                if seen.insert(projected.clone()) {
                    out.push(projected);
                }
            }
        }
        Ok(out)
    }

    /// All tuple variables appearing anywhere in the provenance.
    pub fn variables(&self) -> BTreeSet<TupleId> {
        let mut out = BTreeSet::new();
        for g in &self.groups {
            out.extend(g.variables());
        }
        out
    }

    /// The group with the given key, if any.
    pub fn group_by_key(&self, key: &[Value]) -> Option<&GroupProvenance> {
        self.groups.iter().find(|g| g.key == key)
    }
}

/// Compute aggregate provenance for a query of the supported shape
/// `π? ( σ? ( γ( Q' ) ) )`.
pub fn aggregate_provenance(
    query: &Query,
    db: &Database,
    params: &ParamMap,
) -> Result<AggregateProvenance> {
    aggregate_provenance_interruptible(query, db, params, &Interrupt::none())
}

/// [`aggregate_provenance`] under a cooperative [`Interrupt`]: both the inner
/// SPJUD annotation and the group-building loop poll the hook at the
/// evaluator's stride, so an aggregate reference over a flooding input
/// respects `Budget` deadlines instead of running to completion first.
pub fn aggregate_provenance_interruptible(
    query: &Query,
    db: &Database,
    params: &ParamMap,
    interrupt: &Interrupt,
) -> Result<AggregateProvenance> {
    aggregate_provenance_instrumented(query, db, params, interrupt, &MetricsHandle::none())
}

/// [`aggregate_provenance_interruptible`] plus telemetry: records the group
/// structure (`provenance.aggprov.groups`, `.members`) alongside the inner
/// annotation's row counters.
pub fn aggregate_provenance_instrumented(
    query: &Query,
    db: &Database,
    params: &ParamMap,
    interrupt: &Interrupt,
    metrics: &MetricsHandle,
) -> Result<AggregateProvenance> {
    // Fail fast when the hook is already raised (e.g. an expired deadline):
    // the strided pacer below only polls after a full stride of work, which a
    // small input may never reach.
    interrupt.check()?;
    let shape = decompose(query)?;
    let output_schema_q = output_schema(query, db).map_err(ProvenanceError::Query)?;
    let group_schema = output_schema(&shape.groupby, db).map_err(ProvenanceError::Query)?;

    let (input, group_by, aggregates, having) = match &shape.groupby {
        Query::GroupBy {
            input,
            group_by,
            aggregates,
            having,
        } => (
            input.as_ref().clone(),
            group_by.clone(),
            aggregates.clone(),
            having.clone(),
        ),
        _ => unreachable!("decompose returns a GroupBy"),
    };

    // Annotate the SPJUD core (interruptibly: this is where a flooding join
    // spends its time).
    let annotated = annotate_instrumented(&input, db, params, interrupt, metrics)?;
    let input_schema = annotated.schema().clone();
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| Expr::resolve_column(&input_schema, g).map_err(ProvenanceError::Query))
        .collect::<Result<_>>()?;

    // Build the groups. The loop is paced as well: group assembly over a
    // huge annotated input is itself linear work that must honour deadlines.
    let pacer = Pacer::new(interrupt);
    let mut groups: Vec<GroupProvenance> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in annotated.rows() {
        pacer.tick()?;
        let key: Vec<Value> = group_idx.iter().map(|&i| row.values[i].clone()).collect();
        let mut agg_args = Vec::with_capacity(aggregates.len());
        for agg in &aggregates {
            agg_args.push(
                agg.arg
                    .eval(&input_schema, &row.values, params)
                    .map_err(ProvenanceError::Query)?,
            );
        }
        let member = GroupMember {
            provenance: row.provenance.clone(),
            agg_args,
        };
        match index.get(&key) {
            Some(&gi) => {
                let g = &mut groups[gi];
                g.exists = BoolExpr::or2(g.exists.clone(), row.provenance.clone());
                g.members.push(member);
            }
            None => {
                // Poll unconditionally at every group boundary: the strided
                // pacer above only fires after `Pacer::STRIDE` rows, so an
                // input with many small groups could blow past a mid-flight
                // deadline or quota without a single poll landing.
                interrupt.check()?;
                index.insert(key.clone(), groups.len());
                groups.push(GroupProvenance {
                    key,
                    exists: row.provenance.clone(),
                    members: vec![member],
                    aggregates: aggregates.clone(),
                    having: having.clone(),
                });
            }
        }
    }

    // Resolve the outer projection onto group-schema indices.
    let projection = match &shape.projection {
        Some(items) => items
            .iter()
            .map(|it| match &it.expr {
                Expr::Column(name) => {
                    Expr::resolve_column(&group_schema, name).map_err(ProvenanceError::Query)
                }
                _ => Err(ProvenanceError::UnsupportedAggregateShape(
                    "outer projection over an aggregate must keep plain columns".into(),
                )),
            })
            .collect::<Result<Vec<usize>>>()?,
        None => (0..group_schema.arity()).collect(),
    };

    metrics.counter_inc("provenance.aggprov.calls");
    metrics.counter_add("provenance.aggprov.groups", groups.len() as u64);
    metrics.counter_add(
        "provenance.aggprov.members",
        groups.iter().map(|g| g.members.len() as u64).sum(),
    );

    Ok(AggregateProvenance {
        group_schema,
        output_schema: output_schema_q,
        projection,
        groups,
        inner: input,
        outer_having: shape.outer_select,
    })
}

/// The decomposed shape of a supported aggregate query.
struct Shape {
    groupby: Query,
    projection: Option<Vec<ProjectItem>>,
    outer_select: Option<Expr>,
}

/// Peel optional `Project` and `Select` operators off the top of an
/// aggregate query until the `GroupBy` is reached.
fn decompose(query: &Query) -> Result<Shape> {
    let mut projection = None;
    let mut outer_select = None;
    let mut cur = query;
    loop {
        match cur {
            Query::Project { input, items } => {
                if projection.is_some() {
                    return Err(ProvenanceError::UnsupportedAggregateShape(
                        "multiple projections above the aggregation".into(),
                    ));
                }
                projection = Some(items.clone());
                cur = input;
            }
            Query::Select { input, predicate } => {
                outer_select = Some(match outer_select {
                    None => predicate.clone(),
                    Some(p) => Expr::and(p, predicate.clone()),
                });
                cur = input;
            }
            Query::GroupBy { .. } => {
                if cur.children()[0].has_aggregates() {
                    return Err(ProvenanceError::UnsupportedAggregateShape(
                        "nested aggregations are not supported by the aggregate annotator".into(),
                    ));
                }
                return Ok(Shape {
                    groupby: cur.clone(),
                    projection,
                    outer_select,
                });
            }
            Query::Difference { .. } => {
                return Err(ProvenanceError::UnsupportedAggregateShape(
                    "difference above an aggregation violates assumption (3) of Section 5".into(),
                ))
            }
            other => {
                return Err(ProvenanceError::UnsupportedAggregateShape(format!(
                    "expected an aggregation under the outer operators, found `{}`",
                    other.operator_name()
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::testdata;
    use ratest_storage::TupleSelection;

    fn all_of(db: &Database) -> TupleSelection {
        TupleSelection::all(db)
    }

    #[test]
    fn example5_group_structure_matches_table_2() {
        let db = testdata::figure1_db();
        let prov = aggregate_provenance(&testdata::example5_q1(), &db, &ParamMap::new()).unwrap();
        // Three groups: Mary, John, Jesse.
        assert_eq!(prov.groups.len(), 3);
        let mary = prov.group_by_key(&[Value::from("Mary")]).unwrap();
        // Mary's CS group has two members (courses 216 and 230).
        assert_eq!(mary.members.len(), 2);
        assert_eq!(mary.variables().len(), 3); // t1, t4, t5
                                               // Full instance: Mary fails HAVING count >= 3, Jesse passes.
        let all = all_of(&db);
        let rows = prov
            .evaluate_under(&|id| all.contains(id), &ParamMap::new())
            .unwrap();
        assert_eq!(rows, vec![vec![Value::from("Jesse"), Value::double(90.0)]]);
    }

    #[test]
    fn an_expired_interrupt_stops_aggregate_provenance() {
        use ratest_ra::interrupt::{InterruptHook, Interrupted};
        use std::sync::Arc;

        struct AlwaysExpired;
        impl InterruptHook for AlwaysExpired {
            fn interrupted(&self) -> Option<Interrupted> {
                Some(Interrupted::DeadlineExceeded)
            }
        }

        let db = testdata::figure1_db();
        let interrupt = ratest_ra::interrupt::Interrupt::hooked(Arc::new(AlwaysExpired));
        let err = aggregate_provenance_interruptible(
            &testdata::example5_q1(),
            &db,
            &ParamMap::new(),
            &interrupt,
        )
        .unwrap_err();
        match err {
            ProvenanceError::Query(ratest_ra::QueryError::Interrupted(reason)) => {
                assert_eq!(reason, Interrupted::DeadlineExceeded);
            }
            other => panic!("expected an interrupted error, got {other:?}"),
        }
    }

    #[test]
    fn a_quota_expiring_mid_groups_interrupts_group_assembly() {
        use ratest_ra::interrupt::{InterruptHook, Interrupted};
        use std::sync::atomic::{AtomicU64, Ordering};

        // A step quota counted in polls: the figure-1 instance is far below
        // `Pacer::STRIDE`, so the strided row-loop never polls and only the
        // unconditional per-group checks can observe the expiry. Budget the
        // quota to survive the up-front checks but not all three groups.
        struct ExpiresAfter {
            polls: AtomicU64,
            limit: u64,
        }
        impl InterruptHook for ExpiresAfter {
            fn interrupted(&self) -> Option<Interrupted> {
                if self.polls.fetch_add(1, Ordering::Relaxed) >= self.limit {
                    Some(Interrupted::StepQuotaExhausted)
                } else {
                    None
                }
            }
        }

        let db = testdata::figure1_db();
        let hook = Arc::new(ExpiresAfter {
            polls: AtomicU64::new(0),
            limit: 3,
        });
        let interrupt = ratest_ra::interrupt::Interrupt::hooked(hook.clone());
        let err = aggregate_provenance_interruptible(
            &testdata::example5_q1(),
            &db,
            &ParamMap::new(),
            &interrupt,
        )
        .unwrap_err();
        match err {
            ProvenanceError::Query(ratest_ra::QueryError::Interrupted(reason)) => {
                assert_eq!(reason, Interrupted::StepQuotaExhausted);
            }
            other => panic!("expected an interrupted error, got {other:?}"),
        }
        // The expiry was observed mid-assembly, not by the up-front check.
        assert!(hook.polls.load(Ordering::Relaxed) > 3);
    }

    #[test]
    fn aggprov_telemetry_counts_groups_and_members() {
        let db = testdata::figure1_db();
        let registry = Arc::new(ratest_telemetry::MetricsRegistry::new());
        let metrics = MetricsHandle::new(registry.clone());
        aggregate_provenance_instrumented(
            &testdata::example5_q1(),
            &db,
            &ParamMap::new(),
            &Interrupt::none(),
            &metrics,
        )
        .unwrap();
        let prov = aggregate_provenance(&testdata::example5_q1(), &db, &ParamMap::new()).unwrap();
        let expected_members: u64 = prov.groups.iter().map(|g| g.members.len() as u64).sum();
        assert_eq!(registry.counter("provenance.aggprov.calls"), 1);
        assert_eq!(registry.counter("provenance.aggprov.groups"), 3);
        assert_eq!(
            registry.counter("provenance.aggprov.members"),
            expected_members
        );
        assert!(registry.counter("provenance.annotate.rows") > 0);
    }

    use std::sync::Arc;

    #[test]
    fn example5_q2_returns_mary_and_jesse_on_full_instance() {
        let db = testdata::figure1_db();
        let prov = aggregate_provenance(&testdata::example5_q2(), &db, &ParamMap::new()).unwrap();
        let all = all_of(&db);
        let rows = prov
            .evaluate_under(&|id| all.contains(id), &ParamMap::new())
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Value::from("Mary"), Value::double(90.0)]));
    }

    #[test]
    fn evaluation_under_subinstance_changes_aggregates() {
        // Example 4's challenge: removing Mary's ECON registration changes
        // Q2's average for Mary from 90 to 87.5.
        let db = testdata::figure1_db();
        let prov = aggregate_provenance(&testdata::example4_q2(), &db, &ParamMap::new()).unwrap();
        let without_econ = |id: TupleId| !(id.relation == 1 && id.row == 2);
        let rows = prov
            .evaluate_under(&without_econ, &ParamMap::new())
            .unwrap();
        assert!(rows.contains(&vec![Value::from("Mary"), Value::double(87.5)]));
        // And keeping only the ECON registration yields 95 — the paper's
        // single-tuple counterexample C = {(Mary, 208D, ECON, 95)} plus Mary.
        let only_econ = |id: TupleId| id.relation == 0 || (id.relation == 1 && id.row == 2);
        let rows = prov.evaluate_under(&only_econ, &ParamMap::new()).unwrap();
        assert!(rows.contains(&vec![Value::from("Mary"), Value::double(95.0)]));
    }

    #[test]
    fn parameterized_having_is_kept_symbolic() {
        let db = testdata::figure1_db();
        let prov = aggregate_provenance(&testdata::example6_q1(), &db, &ParamMap::new()).unwrap();
        let all = all_of(&db);
        let mut p = ParamMap::new();
        p.insert("numCS".into(), Value::Int(3));
        let rows = prov.evaluate_under(&|id| all.contains(id), &p).unwrap();
        assert_eq!(rows.len(), 1);
        p.insert("numCS".into(), Value::Int(1));
        let rows = prov.evaluate_under(&|id| all.contains(id), &p).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn consistency_with_plain_evaluation() {
        let db = testdata::figure1_db();
        let all = all_of(&db);
        for q in [
            testdata::example4_q1(),
            testdata::example4_q2(),
            testdata::example5_q1(),
            testdata::example5_q2(),
        ] {
            let prov = aggregate_provenance(&q, &db, &ParamMap::new()).unwrap();
            let via_prov = prov
                .evaluate_under(&|id| all.contains(id), &ParamMap::new())
                .unwrap();
            let direct = ratest_ra::eval::evaluate(&q, &db).unwrap();
            assert_eq!(via_prov.len(), direct.len(), "query {q:?}");
            for row in &via_prov {
                assert!(direct.contains(row));
            }
        }
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        let db = testdata::figure1_db();
        // Difference above an aggregate.
        let q = Query::Difference {
            left: std::sync::Arc::new(testdata::example4_q1()),
            right: std::sync::Arc::new(testdata::example4_q2()),
        };
        assert!(matches!(
            aggregate_provenance(&q, &db, &ParamMap::new()),
            Err(ProvenanceError::UnsupportedAggregateShape(_))
        ));
        // No aggregation at all.
        assert!(aggregate_provenance(&testdata::example1_q1(), &db, &ParamMap::new()).is_err());
    }
}
