//! Boolean how-provenance expressions over tuple-identifier variables.
//!
//! `BoolExpr` is the `Prv(t)` of the paper: a Boolean combination of tuple
//! variables where a variable is true iff the corresponding base tuple is
//! retained in the sub-instance. Light-weight algebraic simplifications are
//! applied on construction (identity/annihilator elements, double negation)
//! so that formulas stay readable and compact without a full minimization.

use ratest_storage::TupleId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A Boolean provenance expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolExpr {
    /// Constant true (the provenance of a tuple that is always present,
    /// e.g. produced by a constant sub-query).
    True,
    /// Constant false (the provenance of a tuple that can never appear).
    False,
    /// A base tuple variable.
    Var(TupleId),
    /// Conjunction of sub-expressions.
    And(Vec<BoolExpr>),
    /// Disjunction of sub-expressions.
    Or(Vec<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// A tuple variable.
    pub fn var(id: TupleId) -> BoolExpr {
        BoolExpr::Var(id)
    }

    /// Smart conjunction: flattens nested `And`s and applies identities.
    pub fn and(parts: Vec<BoolExpr>) -> BoolExpr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                BoolExpr::True => {}
                BoolExpr::False => return BoolExpr::False,
                BoolExpr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        flat.dedup();
        match flat.len() {
            0 => BoolExpr::True,
            1 => flat.pop().expect("len checked"),
            _ => BoolExpr::And(flat),
        }
    }

    /// Smart disjunction: flattens nested `Or`s and applies identities.
    pub fn or(parts: Vec<BoolExpr>) -> BoolExpr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                BoolExpr::False => {}
                BoolExpr::True => return BoolExpr::True,
                BoolExpr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        flat.dedup();
        match flat.len() {
            0 => BoolExpr::False,
            1 => flat.pop().expect("len checked"),
            _ => BoolExpr::Or(flat),
        }
    }

    /// Binary conjunction convenience.
    pub fn and2(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::and(vec![a, b])
    }

    /// Binary disjunction convenience.
    pub fn or2(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::or(vec![a, b])
    }

    /// Smart negation: constant folding and double-negation elimination.
    pub fn negate(self) -> BoolExpr {
        match self {
            BoolExpr::True => BoolExpr::False,
            BoolExpr::False => BoolExpr::True,
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::Not(Box::new(other)),
        }
    }

    /// Whether the expression is the constant `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, BoolExpr::False)
    }

    /// Whether the expression is the constant `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, BoolExpr::True)
    }

    /// The set of tuple variables mentioned.
    pub fn variables(&self) -> BTreeSet<TupleId> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<TupleId>) {
        match self {
            BoolExpr::Var(id) => {
                out.insert(*id);
            }
            BoolExpr::True | BoolExpr::False => {}
            BoolExpr::And(parts) | BoolExpr::Or(parts) => {
                for p in parts {
                    p.collect_variables(out);
                }
            }
            BoolExpr::Not(inner) => inner.collect_variables(out),
        }
    }

    /// Evaluate under a model: `present(id)` tells whether the tuple is in
    /// the sub-instance.
    pub fn eval<F: Fn(TupleId) -> bool>(&self, present: &F) -> bool {
        match self {
            BoolExpr::True => true,
            BoolExpr::False => false,
            BoolExpr::Var(id) => present(*id),
            BoolExpr::And(parts) => parts.iter().all(|p| p.eval(present)),
            BoolExpr::Or(parts) => parts.iter().any(|p| p.eval(present)),
            BoolExpr::Not(inner) => !inner.eval(present),
        }
    }

    /// Evaluate under a set of retained tuples.
    pub fn eval_set(&self, retained: &BTreeSet<TupleId>) -> bool {
        self.eval(&|id| retained.contains(&id))
    }

    /// Number of nodes in the expression tree (a rough formula-size measure,
    /// reported by the experiment harness).
    pub fn size(&self) -> usize {
        match self {
            BoolExpr::True | BoolExpr::False | BoolExpr::Var(_) => 1,
            BoolExpr::And(parts) | BoolExpr::Or(parts) => {
                1 + parts.iter().map(BoolExpr::size).sum::<usize>()
            }
            BoolExpr::Not(inner) => 1 + inner.size(),
        }
    }

    /// Whether the expression is monotone (negation-free). Monotone
    /// provenance (SPJU queries) admits the poly-time minimal-witness
    /// algorithm of Theorem 6.
    pub fn is_monotone(&self) -> bool {
        match self {
            BoolExpr::Not(_) => false,
            BoolExpr::And(parts) | BoolExpr::Or(parts) => parts.iter().all(BoolExpr::is_monotone),
            _ => true,
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::True => write!(f, "⊤"),
            BoolExpr::False => write!(f, "⊥"),
            BoolExpr::Var(id) => write!(f, "{id}"),
            BoolExpr::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " · ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Not(inner) => write!(f, "¬{inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(row: u32) -> TupleId {
        TupleId::new(0, row)
    }

    #[test]
    fn smart_constructors_simplify() {
        let a = BoolExpr::var(t(1));
        let b = BoolExpr::var(t(2));
        assert_eq!(
            BoolExpr::and(vec![BoolExpr::True, a.clone()]),
            BoolExpr::Var(t(1))
        );
        assert_eq!(
            BoolExpr::and(vec![BoolExpr::False, a.clone()]),
            BoolExpr::False
        );
        assert_eq!(
            BoolExpr::or(vec![BoolExpr::False, b.clone()]),
            BoolExpr::Var(t(2))
        );
        assert_eq!(
            BoolExpr::or(vec![BoolExpr::True, b.clone()]),
            BoolExpr::True
        );
        assert_eq!(BoolExpr::and(vec![]), BoolExpr::True);
        assert_eq!(BoolExpr::or(vec![]), BoolExpr::False);
        // Flattening.
        let nested = BoolExpr::and2(a.clone(), BoolExpr::and2(b.clone(), BoolExpr::var(t(3))));
        assert_eq!(nested.variables().len(), 3);
        match nested {
            BoolExpr::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_and_constants() {
        let a = BoolExpr::var(t(1));
        assert_eq!(a.clone().negate().negate(), a);
        assert_eq!(BoolExpr::True.negate(), BoolExpr::False);
        assert_eq!(BoolExpr::False.negate(), BoolExpr::True);
    }

    #[test]
    fn evaluation_matches_semantics() {
        // Prv(r2) for Q2-Q1 of Example 2.1 is t1·t4·t5 (after simplification).
        let prv = BoolExpr::and(vec![
            BoolExpr::var(t(1)),
            BoolExpr::or2(BoolExpr::var(t(4)), BoolExpr::var(t(5))),
            BoolExpr::and(vec![
                BoolExpr::var(t(1)),
                BoolExpr::var(t(4)),
                BoolExpr::var(t(5)),
            ])
            .negate()
            .negate(),
        ]);
        let all: BTreeSet<TupleId> = [t(1), t(4), t(5)].into_iter().collect();
        assert!(prv.eval_set(&all));
        let partial: BTreeSet<TupleId> = [t(1), t(4)].into_iter().collect();
        assert!(!prv.eval_set(&partial));
    }

    #[test]
    fn difference_provenance_is_not_monotone() {
        let monotone = BoolExpr::and2(BoolExpr::var(t(1)), BoolExpr::var(t(2)));
        assert!(monotone.is_monotone());
        let diff = BoolExpr::and2(BoolExpr::var(t(1)), BoolExpr::var(t(2)).negate());
        assert!(!diff.is_monotone());
    }

    #[test]
    fn size_and_display() {
        let e = BoolExpr::and2(
            BoolExpr::var(t(1)),
            BoolExpr::or2(BoolExpr::var(t(4)), BoolExpr::var(t(5))),
        );
        assert_eq!(e.size(), 5);
        let s = e.to_string();
        assert!(s.contains('·'));
        assert!(s.contains('+'));
        assert!(BoolExpr::True.to_string().contains('⊤'));
    }

    #[test]
    fn duplicate_conjuncts_are_removed() {
        let a = BoolExpr::var(t(1));
        let e = BoolExpr::and(vec![a.clone(), a.clone()]);
        assert_eq!(e, a);
    }
}
