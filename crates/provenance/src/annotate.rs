//! Provenance-annotated evaluation of SPJUD queries.
//!
//! [`annotate`] plays the role of the provenance-rewritten CTE queries of
//! Section 6: it evaluates the query bottom-up while carrying, for every
//! derived tuple, the Boolean expression describing *how* the tuple was
//! derived from base tuples.

use crate::boolexpr::BoolExpr;
use crate::error::{ProvenanceError, Result};
use ratest_ra::ast::Query;
use ratest_ra::eval::hash_join_keys;
use ratest_ra::expr::ParamMap;
use ratest_ra::interrupt::{Interrupt, Pacer};
use ratest_ra::typecheck::{output_schema, rename_schema};
use ratest_storage::{Database, Schema, Value};
use ratest_telemetry::MetricsHandle;
use std::collections::HashMap;

/// One output tuple together with its how-provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedRow {
    /// The tuple's attribute values.
    pub values: Vec<Value>,
    /// Its how-provenance `Prv(t)`.
    pub provenance: BoolExpr,
}

/// The annotated result of a query: a set of value rows, each with its
/// provenance expression.
#[derive(Debug, Clone)]
pub struct AnnotatedResult {
    schema: Schema,
    rows: Vec<AnnotatedRow>,
    index: HashMap<Vec<Value>, usize>,
}

impl AnnotatedResult {
    /// An empty result with the given schema.
    pub fn empty(schema: Schema) -> Self {
        AnnotatedResult {
            schema,
            rows: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The annotated rows.
    pub fn rows(&self) -> &[AnnotatedRow] {
        &self.rows
    }

    /// Number of distinct output tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The provenance of a specific output tuple, if present.
    pub fn provenance_of(&self, values: &[Value]) -> Option<&BoolExpr> {
        self.index.get(values).map(|&i| &self.rows[i].provenance)
    }

    /// Insert a derived tuple; if the same value-tuple already exists its
    /// provenance is extended with `∨` (the de-duplication rule of
    /// Section 6's `string_agg` rewrite).
    pub fn push(&mut self, values: Vec<Value>, provenance: BoolExpr) {
        if provenance.is_false() {
            return;
        }
        match self.index.get(&values) {
            Some(&i) => {
                let existing = std::mem::replace(&mut self.rows[i].provenance, BoolExpr::False);
                self.rows[i].provenance = BoolExpr::or2(existing, provenance);
            }
            None => {
                self.index.insert(values.clone(), self.rows.len());
                self.rows.push(AnnotatedRow { values, provenance });
            }
        }
    }

    /// Total provenance size across all rows (a cost proxy reported by the
    /// experiment harness: `prov-all` grows with this).
    pub fn total_provenance_size(&self) -> usize {
        self.rows.iter().map(|r| r.provenance.size()).sum()
    }
}

/// Combine two *already computed* annotations into the annotation of their
/// set difference, without re-evaluating either query.
///
/// This is the sharing primitive behind batch grading: the reference query's
/// annotation is computed once per batch and combined — via this function —
/// with each distinct submission's annotation to obtain `ann(Q1 − Q2)` and
/// `ann(Q2 − Q1)`, instead of annotating the full difference query per pair.
/// The combination rule matches the `Difference` case of
/// [`annotate_with_params`] exactly: every row of `left` survives with
/// `Prv_L(t) ∧ ¬Prv_R(t)` when `right` can also derive `t`, unchanged
/// otherwise. The inputs must be union compatible (value tuples are matched
/// positionally).
pub fn difference_of(left: &AnnotatedResult, right: &AnnotatedResult) -> AnnotatedResult {
    let mut out = AnnotatedResult::empty(left.schema().clone());
    for row in left.rows() {
        match right.provenance_of(&row.values) {
            Some(rp) => out.push(
                row.values.clone(),
                BoolExpr::and2(row.provenance.clone(), rp.clone().negate()),
            ),
            None => out.push(row.values.clone(), row.provenance.clone()),
        }
    }
    out
}

/// Annotate a parameter-free SPJUD query.
pub fn annotate(query: &Query, db: &Database) -> Result<AnnotatedResult> {
    annotate_with_params(query, db, &ParamMap::new())
}

/// Annotate an SPJUD query with parameter bindings.
///
/// Aggregate (group-by) nodes are rejected here — use
/// [`crate::aggprov::aggregate_provenance`] for aggregate queries, which
/// implements the richer annotation of Section 5.
pub fn annotate_with_params(
    query: &Query,
    db: &Database,
    params: &ParamMap,
) -> Result<AnnotatedResult> {
    annotate_interruptible(query, db, params, &Interrupt::none())
}

/// Annotate under a cooperative [`Interrupt`]: the row loops poll the hook
/// at the evaluator's stride, so a flooding provenance computation (whose
/// join fan-out is at least that of plain evaluation) stops within a bounded
/// amount of work of the hook being raised. See
/// [`ratest_ra::eval::evaluate_interruptible`] for the pacing contract.
pub fn annotate_interruptible(
    query: &Query,
    db: &Database,
    params: &ParamMap,
    interrupt: &Interrupt,
) -> Result<AnnotatedResult> {
    annotate_instrumented(query, db, params, interrupt, &MetricsHandle::none())
}

/// [`annotate_interruptible`] plus telemetry: folds the pacer's work counters
/// into `metrics` as `provenance.annotate.rows`, `provenance.annotate.batches`
/// and `provenance.annotate.interrupt_polls`, whether or not the annotation
/// completes. An inert handle records nothing.
pub fn annotate_instrumented(
    query: &Query,
    db: &Database,
    params: &ParamMap,
    interrupt: &Interrupt,
    metrics: &MetricsHandle,
) -> Result<AnnotatedResult> {
    let pacer = Pacer::new(interrupt);
    let result = annotate_node(query, db, params, &pacer);
    metrics.counter_inc("provenance.annotate.calls");
    metrics.counter_add("provenance.annotate.rows", pacer.work());
    metrics.counter_add("provenance.annotate.batches", pacer.batches());
    metrics.counter_add("provenance.annotate.interrupt_polls", pacer.polls());
    result
}

fn annotate_node(
    query: &Query,
    db: &Database,
    params: &ParamMap,
    pacer: &Pacer,
) -> Result<AnnotatedResult> {
    pacer.note_batch();
    match query {
        Query::Relation(name) => {
            let rel = db.relation(name)?;
            let mut out = AnnotatedResult::empty(rel.schema().clone());
            for t in rel.iter() {
                out.push(
                    t.values.clone(),
                    BoolExpr::var(t.id.expect("base tuples carry ids")),
                );
            }
            Ok(out)
        }
        Query::Select { input, predicate } => {
            let inp = annotate_node(input, db, params, pacer)?;
            let mut out = AnnotatedResult::empty(inp.schema().clone());
            for row in inp.rows() {
                pacer.tick()?;
                if predicate.eval_predicate(inp.schema(), &row.values, params)? {
                    out.push(row.values.clone(), row.provenance.clone());
                }
            }
            Ok(out)
        }
        Query::Project { input, items } => {
            let inp = annotate_node(input, db, params, pacer)?;
            let schema = output_schema(query, db)?;
            let mut out = AnnotatedResult::empty(schema);
            for row in inp.rows() {
                pacer.tick()?;
                let mut projected = Vec::with_capacity(items.len());
                for item in items {
                    projected.push(item.expr.eval(inp.schema(), &row.values, params)?);
                }
                out.push(projected, row.provenance.clone());
            }
            Ok(out)
        }
        Query::Join {
            left,
            right,
            predicate,
        } => {
            let l = annotate_node(left, db, params, pacer)?;
            let r = annotate_node(right, db, params, pacer)?;
            let schema = l.schema().concat(r.schema());
            let mut out = AnnotatedResult::empty(schema.clone());
            if let Some(pred) = predicate {
                if let Some((lk, rk, residual)) = hash_join_keys(pred, l.schema(), r.schema()) {
                    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                    for (i, row) in r.rows().iter().enumerate() {
                        let key: Vec<Value> = rk.iter().map(|&k| row.values[k].clone()).collect();
                        table.entry(key).or_default().push(i);
                    }
                    for lrow in l.rows() {
                        pacer.tick()?;
                        let key: Vec<Value> = lk.iter().map(|&k| lrow.values[k].clone()).collect();
                        if let Some(matches) = table.get(&key) {
                            for &ri in matches {
                                pacer.tick()?;
                                let rrow = &r.rows()[ri];
                                let mut values = lrow.values.clone();
                                values.extend(rrow.values.iter().cloned());
                                let ok = match &residual {
                                    Some(res) => res.eval_predicate(&schema, &values, params)?,
                                    None => true,
                                };
                                if ok {
                                    out.push(
                                        values,
                                        BoolExpr::and2(
                                            lrow.provenance.clone(),
                                            rrow.provenance.clone(),
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    return Ok(out);
                }
            }
            for lrow in l.rows() {
                for rrow in r.rows() {
                    pacer.tick()?;
                    let mut values = lrow.values.clone();
                    values.extend(rrow.values.iter().cloned());
                    let keep = match predicate {
                        Some(p) => p.eval_predicate(&schema, &values, params)?,
                        None => true,
                    };
                    if keep {
                        out.push(
                            values,
                            BoolExpr::and2(lrow.provenance.clone(), rrow.provenance.clone()),
                        );
                    }
                }
            }
            Ok(out)
        }
        Query::Union { left, right } => {
            let l = annotate_node(left, db, params, pacer)?;
            let r = annotate_node(right, db, params, pacer)?;
            let mut out = AnnotatedResult::empty(l.schema().clone());
            for row in l.rows() {
                pacer.tick()?;
                out.push(row.values.clone(), row.provenance.clone());
            }
            for row in r.rows() {
                pacer.tick()?;
                out.push(row.values.clone(), row.provenance.clone());
            }
            Ok(out)
        }
        Query::Difference { left, right } => {
            let l = annotate_node(left, db, params, pacer)?;
            let r = annotate_node(right, db, params, pacer)?;
            Ok(difference_of(&l, &r))
        }
        Query::Rename { input, prefix } => {
            let inp = annotate_node(input, db, params, pacer)?;
            let schema = rename_schema(inp.schema(), prefix);
            let mut out = AnnotatedResult::empty(schema);
            for row in inp.rows() {
                out.push(row.values.clone(), row.provenance.clone());
            }
            Ok(out)
        }
        Query::GroupBy { .. } => Err(ProvenanceError::UnsupportedAggregateShape(
            "use aggregate_provenance for queries with group-by".into(),
        )),
    }
}

/// Compute the how-provenance of a *specific* output tuple of `Q1 − Q2`,
/// i.e. `Prv_{Q1−Q2}(t) = Prv_{Q1}(t) ∧ ¬Prv_{Q2}(t)`, without annotating the
/// full difference: the caller typically already pushed a selection for `t`
/// down both queries (this is the `prov-sp` configuration of Figure 4).
pub fn provenance_of_tuple_in_difference(
    q1: &Query,
    q2: &Query,
    db: &Database,
    tuple: &[Value],
    params: &ParamMap,
) -> Result<BoolExpr> {
    let a1 = annotate_with_params(q1, db, params)?;
    let p1 = a1.provenance_of(tuple).cloned().unwrap_or(BoolExpr::False);
    let a2 = annotate_with_params(q2, db, params)?;
    let p2 = a2.provenance_of(tuple).cloned().unwrap_or(BoolExpr::False);
    Ok(BoolExpr::and2(p1, p2.negate()))
}

/// Check that an annotated result is consistent with plain evaluation.
///
/// Note that the annotator may list *candidate* tuples whose provenance is
/// false on the full instance (e.g. a tuple eliminated by a difference: it
/// appears with provenance `Prv_R ∧ ¬Prv_S`, which only becomes true on some
/// strict sub-instances). Consistency therefore means:
///
/// * for every annotated tuple, its provenance evaluated on the full
///   instance is true **iff** plain evaluation returns the tuple, and
/// * every tuple returned by plain evaluation appears among the annotated
///   tuples.
///
/// Used by tests and the property-based suite.
pub fn consistent_with_evaluation(query: &Query, db: &Database, params: &ParamMap) -> Result<bool> {
    let annotated = annotate_with_params(query, db, params)?;
    let plain = ratest_ra::eval::evaluate_with_params(query, db, params)?;
    let all = ratest_storage::TupleSelection::all(db);
    for row in annotated.rows() {
        let derivable = row.provenance.eval(&|id| all.contains(id));
        if derivable != plain.contains(&row.values) {
            return Ok(false);
        }
    }
    for row in plain.rows() {
        if annotated.provenance_of(row).is_none() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::testdata;
    use ratest_storage::TupleId;

    fn student(row: u32) -> TupleId {
        TupleId::new(0, row)
    }
    fn registration(row: u32) -> TupleId {
        TupleId::new(1, row)
    }

    #[test]
    fn base_relation_provenance_is_its_variables() {
        let db = testdata::figure1_db();
        let out = annotate(&Query::relation("Student"), &db).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.provenance_of(&[Value::from("Mary"), Value::from("CS")]),
            Some(&BoolExpr::var(student(0)))
        );
    }

    #[test]
    fn example1_q2_provenance_matches_equation_1() {
        // Prv_{Q2(D)}(Mary, CS) = t1·t4 + t1·t5  (Equation (1) in the paper,
        // where t1 is Mary's Student tuple and t4, t5 her CS registrations).
        let db = testdata::figure1_db();
        let out = annotate(&testdata::example1_q2(), &db).unwrap();
        let prv = out
            .provenance_of(&[Value::from("Mary"), Value::from("CS")])
            .unwrap();
        let vars = prv.variables();
        assert!(vars.contains(&student(0)));
        assert!(vars.contains(&registration(0)));
        assert!(vars.contains(&registration(1)));
        assert_eq!(vars.len(), 3);
        // Semantics: satisfied by {t1,t4}, {t1,t5}, not by {t1} or {t4,t5}.
        let check = |ids: &[TupleId]| {
            let set: std::collections::BTreeSet<_> = ids.iter().copied().collect();
            prv.eval_set(&set)
        };
        assert!(check(&[student(0), registration(0)]));
        assert!(check(&[student(0), registration(1)]));
        assert!(!check(&[student(0)]));
        assert!(!check(&[registration(0), registration(1)]));
    }

    #[test]
    fn difference_provenance_matches_example_2_1() {
        // Prv_{(Q2−Q1)(D)}(Mary, CS) simplifies to t1·t4·t5: Mary appears as a
        // wrong answer only when both of her CS registrations are retained.
        let db = testdata::figure1_db();
        let q2_minus_q1 = Query::Difference {
            left: std::sync::Arc::new(testdata::example1_q2()),
            right: std::sync::Arc::new(testdata::example1_q1()),
        };
        let out = annotate(&q2_minus_q1, &db).unwrap();
        let prv = out
            .provenance_of(&[Value::from("Mary"), Value::from("CS")])
            .unwrap();
        let need_both = |ids: &[TupleId]| {
            let set: std::collections::BTreeSet<_> = ids.iter().copied().collect();
            prv.eval_set(&set)
        };
        assert!(need_both(&[student(0), registration(0), registration(1)]));
        assert!(!need_both(&[student(0), registration(0)]));
        assert!(!need_both(&[student(0), registration(1)]));
        // Jesse needs any two of his three CS registrations.
        let prv_jesse = out
            .provenance_of(&[Value::from("Jesse"), Value::from("CS")])
            .unwrap();
        let jesse = |rows: &[u32]| {
            let mut ids = vec![student(2)];
            ids.extend(rows.iter().map(|&r| registration(r)));
            let set: std::collections::BTreeSet<_> = ids.into_iter().collect();
            prv_jesse.eval_set(&set)
        };
        assert!(jesse(&[5, 6]));
        assert!(jesse(&[5, 7]));
        assert!(jesse(&[6, 7]));
        assert!(!jesse(&[5]));
    }

    #[test]
    fn union_and_projection_merge_with_or() {
        let db = testdata::figure1_db();
        // π_name(Registration): Mary appears via three registrations.
        let q = ratest_ra::builder::rel("Registration")
            .project(&["name"])
            .build();
        let out = annotate(&q, &db).unwrap();
        let prv = out.provenance_of(&[Value::from("Mary")]).unwrap();
        assert_eq!(prv.variables().len(), 3);
        assert!(prv.is_monotone());
        assert!(out.total_provenance_size() > out.len());
    }

    #[test]
    fn annotation_is_consistent_with_plain_evaluation() {
        let db = testdata::figure1_db();
        for q in [
            testdata::example1_q1(),
            testdata::example1_q2(),
            ratest_ra::builder::rel("Registration")
                .select(ratest_ra::builder::col("dept").eq(ratest_ra::builder::lit("CS")))
                .project(&["name", "course"])
                .build(),
        ] {
            assert!(consistent_with_evaluation(&q, &db, &ParamMap::new()).unwrap());
        }
    }

    #[test]
    fn provenance_of_missing_tuple_is_false() {
        let db = testdata::figure1_db();
        let prv = provenance_of_tuple_in_difference(
            &testdata::example1_q2(),
            &testdata::example1_q1(),
            &db,
            &[Value::from("Nobody"), Value::from("CS")],
            &ParamMap::new(),
        )
        .unwrap();
        assert!(prv.is_false());
    }

    #[test]
    fn groupby_is_rejected_by_the_spjud_annotator() {
        let db = testdata::figure1_db();
        let err = annotate(&testdata::example4_q1(), &db).unwrap_err();
        assert!(matches!(err, ProvenanceError::UnsupportedAggregateShape(_)));
    }

    #[test]
    fn difference_of_matches_annotating_the_difference_query() {
        let db = testdata::figure1_db();
        let q1 = testdata::example1_q1();
        let q2 = testdata::example1_q2();
        let diff = Query::Difference {
            left: std::sync::Arc::new(q2.clone()),
            right: std::sync::Arc::new(q1.clone()),
        };
        let whole = annotate(&diff, &db).unwrap();
        let combined = difference_of(&annotate(&q2, &db).unwrap(), &annotate(&q1, &db).unwrap());
        assert_eq!(whole.len(), combined.len());
        for row in whole.rows() {
            assert_eq!(
                Some(&row.provenance),
                combined.provenance_of(&row.values),
                "row {:?} differs",
                row.values
            );
        }
    }
}
