//! # ratest-provenance
//!
//! Boolean **how-provenance** for SPJUD queries and symbolic provenance for
//! aggregate queries — the machinery of Sections 2.3, 4 and 5.2 of
//! *"Explaining Wrong Queries Using Small Examples"*.
//!
//! The original prototype obtained provenance by rewriting SQL CTEs to carry
//! an extra `prv` string column and letting SQL Server evaluate them. Here
//! the [`annotate`] module evaluates the relational algebra directly while
//! propagating provenance expressions:
//!
//! * base tuples are annotated with their [`ratest_storage::TupleId`]
//!   variables,
//! * joins combine annotations with `∧`,
//! * projections/unions (duplicate elimination) combine with `∨`,
//! * difference `R − S` annotates survivors with `Prv_R(t) ∧ ¬Prv_S(t)`,
//!
//! producing, for every output tuple `t`, the Boolean expression `Prv(t)`
//! such that `t ∈ Q(D')` **iff** `Prv(t)` is satisfied by the indicator
//! assignment of `D' ⊆ D` (the property Section 4 builds on).
//!
//! For aggregate queries ([`aggprov`]) the annotation follows Amsterdamer et
//! al.: each group carries its existence provenance plus, for every member
//! tuple, the member's provenance and its aggregate argument values, so the
//! core crate can encode "the group exists in only one query, or it exists in
//! both with different aggregate values" as a constraint.
//!
//! [`smtlib`] renders provenance constraints in SMT-LIB 2 syntax (Listings 1
//! and 2 of the paper) for debugging and documentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggprov;
pub mod annotate;
pub mod boolexpr;
pub mod dnf;
pub mod error;
pub mod smtlib;

pub use aggprov::{
    aggregate_provenance, aggregate_provenance_instrumented, aggregate_provenance_interruptible,
    AggregateProvenance, GroupProvenance,
};
pub use annotate::{
    annotate, annotate_interruptible, annotate_with_params, difference_of, AnnotatedResult,
    AnnotatedRow,
};
pub use boolexpr::BoolExpr;
pub use dnf::{Dnf, Minterm};
pub use error::{ProvenanceError, Result};
