//! Deterministic metrics and trace spans for RATest-rs.
//!
//! This crate is the observability backbone of the workspace. It has **zero
//! dependencies** (not even the vendored serde stand-in) so every other crate
//! can depend on it without cycles, and it is built around one invariant:
//!
//! > Everything a [`MetricsRegistry`] records is either *deterministic* —
//! > counters, gauges, and fixed-bucket histograms whose values depend only on
//! > the work performed — or *volatile* — wall-clock durations that vary from
//! > run to run. Snapshots keep the two strictly apart so that the
//! > deterministic part renders to byte-identical JSON across identical runs,
//! > following the report-layer convention established by the grading cache
//! > and the `ReportCounts` slice.
//!
//! The registry is **global-free**: there is no process-wide singleton.
//! Callers construct a registry, wrap it in a cheap cloneable
//! [`MetricsHandle`] (mirroring `EventHandle` / `Interrupt` elsewhere in the
//! workspace), and thread it through options structs. A default handle is a
//! no-op, so instrumented hot loops cost one branch when telemetry is off.
//!
//! The [`span`] module provides the hierarchical trace-span side
//! (`explain > phase > candidate > solver_call`), which higher layers drive
//! from the existing `ExplainEvent` stream and export as NDJSON.

pub mod registry;
pub mod span;

pub use registry::{HistogramSnapshot, MetricsHandle, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanCollector, SpanRecord};

/// Escape a string for embedding in a JSON string literal.
///
/// Matches the grader's hand-rolled JSON renderer byte for byte (`"`/`\`
/// escaped, `\n` `\r` `\t` named, other control characters as `\u00XX`), so
/// telemetry output can be parsed and re-embedded by that layer losslessly.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_matches_the_grader_renderer() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\n\r\ty"), "x\\n\\r\\ty");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
