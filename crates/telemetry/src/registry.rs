//! The metrics registry: counters, gauges, fixed-bucket histograms, and
//! volatile wall-clock durations.
//!
//! Metric names are dotted paths (`grader.searches`, `ra.eval.rows_scanned`).
//! Each kind lives in its own namespace, so a counter and a histogram may
//! share a name without colliding, though instrumentation here never does.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::escape_json;

/// Bucket upper bounds (inclusive) shared by every histogram: powers of two up
/// to 4096, with a final overflow bucket. Fixed bounds keep bucket *counts*
/// deterministic — only the number of observations in each bucket is stored,
/// never a quantile estimate.
pub const HISTOGRAM_BOUNDS: [u64; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

#[derive(Debug, Default, Clone)]
struct Histogram {
    /// One count per bound in [`HISTOGRAM_BOUNDS`], plus a trailing overflow
    /// bucket for observations above the last bound.
    buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
    count: u64,
    sum: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        let idx = HISTOGRAM_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }
}

#[derive(Debug, Default, Clone)]
struct DurationTotal {
    count: u64,
    total: Duration,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    durations: BTreeMap<String, DurationTotal>,
}

/// A global-free registry of metrics. Thread-safe; intended to be shared via
/// `Arc` (usually through a [`MetricsHandle`]).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at zero on first touch).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increment the named counter by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Read a counter; zero if it has never been touched.
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge to `value`.
    ///
    /// This is the right primitive for **occupancy** gauges (queue depth,
    /// warm-session count): the gauge reports the current value and can go
    /// back down. Use [`MetricsRegistry::gauge_max`] only for genuine
    /// high-water marks — a long-running daemon that reports occupancy via
    /// `gauge_max` shows fictional, monotone state forever.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Raise the named gauge to `value` if it is below it (high-water mark).
    pub fn gauge_max(&self, name: &str, value: i64) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.gauges.entry(name.to_string()).or_insert(i64::MIN);
        if *slot < value {
            *slot = value;
        }
    }

    /// Read a gauge; `None` if it has never been set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        let inner = self.inner.lock().unwrap();
        inner.gauges.get(name).copied()
    }

    /// Record one observation into the named fixed-bucket histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Record a wall-clock duration. Durations are **volatile**: they appear
    /// only in the volatile section of a snapshot and are excluded from
    /// byte-reproducible artifacts.
    pub fn record_duration(&self, name: &str, elapsed: Duration) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.durations.entry(name.to_string()).or_default();
        slot.count += 1;
        slot.total += elapsed;
    }

    /// Take a point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            buckets: h.buckets.to_vec(),
                            count: h.count,
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
            durations_ms: inner
                .durations
                .iter()
                .map(|(name, d)| (name.clone(), (d.count, d.total.as_secs_f64() * 1e3)))
                .collect(),
        }
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Counts per bucket; index `i` covers values `<= HISTOGRAM_BOUNDS[i]`,
    /// the final entry is the overflow bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

/// A point-in-time copy of a registry.
///
/// [`MetricsSnapshot::to_json`] renders the deterministic part (counters,
/// gauges, histograms) with sorted keys; volatile durations are emitted only
/// on request, isolated under a single top-level `"volatile"` key so that
/// stripping them is structural, not name-by-name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// name -> (observation count, total milliseconds).
    pub durations_ms: BTreeMap<String, (u64, f64)>,
}

impl MetricsSnapshot {
    /// Read a counter from the snapshot; zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter delta against an earlier baseline snapshot (saturating).
    pub fn counter_since(&self, baseline: &MetricsSnapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(baseline.counter(name))
    }

    /// Read a gauge from the snapshot; `None` if it was never set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Render as JSON. The deterministic sections always appear (possibly as
    /// empty objects); `include_volatile` adds the `"volatile"` section with
    /// wall-clock duration totals.
    pub fn to_json(&self, include_volatile: bool) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            out.push_str("{\"buckets\":[");
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str(&format!("],\"count\":{},\"sum\":{}}}", h.count, h.sum));
        });
        out.push('}');
        if include_volatile {
            out.push_str(",\"volatile\":{\"durations_ms\":{");
            push_entries(&mut out, self.durations_ms.iter(), |out, (count, ms)| {
                out.push_str(&format!("{{\"count\":{count},\"total_ms\":{ms:.3}}}"));
            });
            out.push_str("}}");
        }
        out.push('}');
        out
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut render: impl FnMut(&mut String, &V),
) {
    for (i, (name, value)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape_json(name));
        out.push_str("\":");
        render(out, value);
    }
}

/// Cheap cloneable handle to an optional registry, mirroring the
/// `EventHandle` / `Interrupt` pattern: the default handle is inert and every
/// recording method is a no-op on it.
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle(Option<Arc<MetricsRegistry>>);

impl MetricsHandle {
    /// A handle that records nothing.
    pub fn none() -> Self {
        MetricsHandle(None)
    }

    /// A handle backed by `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        MetricsHandle(Some(registry))
    }

    /// Whether a registry is attached.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// The backing registry, if any.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.0.as_ref()
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(r) = &self.0 {
            r.counter_add(name, delta);
        }
    }

    pub fn counter_inc(&self, name: &str) {
        if let Some(r) = &self.0 {
            r.counter_inc(name);
        }
    }

    pub fn gauge_set(&self, name: &str, value: i64) {
        if let Some(r) = &self.0 {
            r.gauge_set(name, value);
        }
    }

    pub fn gauge_max(&self, name: &str, value: i64) {
        if let Some(r) = &self.0 {
            r.gauge_max(name, value);
        }
    }

    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.0 {
            r.observe(name, value);
        }
    }

    pub fn record_duration(&self, name: &str, elapsed: Duration) {
        if let Some(r) = &self.0 {
            r.record_duration(name, elapsed);
        }
    }

    /// Snapshot the backing registry; `None` when inert.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_ref().map(|r| r.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let reg = MetricsRegistry::new();
        reg.counter_inc("a.b");
        reg.counter_add("a.b", 4);
        assert_eq!(reg.counter("a.b"), 5);
        assert_eq!(reg.counter("never.touched"), 0);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("depth", 3);
        reg.gauge_max("depth", 1);
        assert_eq!(reg.gauge("depth"), Some(3));
        reg.gauge_max("depth", 9);
        assert_eq!(reg.gauge("depth"), Some(9));
        assert_eq!(reg.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_deterministic() {
        let reg = MetricsRegistry::new();
        for v in [0, 1, 2, 3, 4096, 5000] {
            reg.observe("sizes", v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms["sizes"];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1 + 2 + 3 + 4096 + 5000);
        // 0 and 1 land in the <=1 bucket, 2 in <=2, 3 in <=4, 4096 in <=4096,
        // 5000 in the overflow bucket.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[HISTOGRAM_BOUNDS.len() - 1], 1);
        assert_eq!(h.buckets[HISTOGRAM_BOUNDS.len()], 1);
    }

    #[test]
    fn snapshot_json_is_sorted_and_volatile_is_isolated() {
        let reg = MetricsRegistry::new();
        reg.counter_inc("zeta");
        reg.counter_inc("alpha");
        reg.gauge_set("g", -2);
        reg.record_duration("phase_ms", Duration::from_millis(5));
        let snap = reg.snapshot();

        let stripped = snap.to_json(false);
        assert!(stripped.contains("\"alpha\":1,\"zeta\":1"));
        assert!(!stripped.contains("volatile"));

        let full = snap.to_json(true);
        assert!(full.contains("\"volatile\":{\"durations_ms\":{\"phase_ms\":"));
        // Stripping is structural: the deterministic prefix is shared.
        assert!(full.starts_with(&stripped[..stripped.len() - 1]));
    }

    #[test]
    fn identical_work_renders_byte_identical_deterministic_json() {
        let run = || {
            let reg = MetricsRegistry::new();
            reg.counter_add("work", 7);
            reg.observe("sizes", 3);
            reg.record_duration("wall_ms", Duration::from_nanos(12345));
            reg.snapshot().to_json(false)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn the_inert_handle_is_a_no_op() {
        let handle = MetricsHandle::none();
        handle.counter_inc("x");
        handle.observe("y", 1);
        assert!(!handle.is_active());
        assert!(handle.snapshot().is_none());
    }

    #[test]
    fn counter_since_computes_saturating_deltas() {
        let reg = MetricsRegistry::new();
        reg.counter_add("n", 2);
        let base = reg.snapshot();
        reg.counter_add("n", 3);
        let now = reg.snapshot();
        assert_eq!(now.counter_since(&base, "n"), 3);
        assert_eq!(base.counter_since(&now, "n"), 0);
    }
}
