//! Hierarchical trace spans.
//!
//! A [`SpanCollector`] records a tree of named spans with deterministic
//! sequence numbers and integer attributes. RATest's explain pipeline drives
//! it from the `ExplainEvent` stream, producing the taxonomy
//! `explain > phase > candidate > solver_call`; the collector itself is
//! generic and knows nothing about those names.
//!
//! Spans deliberately carry **no timestamps**: ordering is the deterministic
//! `seq` number, and any wall-clock timing belongs in the registry's volatile
//! duration metrics instead. This keeps NDJSON exports byte-identical across
//! identical runs.

use std::sync::Mutex;

use crate::escape_json;

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span kind, e.g. `explain`, `phase`, `candidate`, `solver_call`.
    pub name: String,
    /// Human-readable discriminator (phase name, candidate index, ...).
    pub detail: String,
    /// Deterministic open order, starting at 0.
    pub seq: u64,
    /// `seq` of the parent span, if any.
    pub parent: Option<u64>,
    /// Nesting depth (root spans are 0).
    pub depth: usize,
    /// Integer attributes in insertion order.
    pub attrs: Vec<(String, i64)>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    /// Indices into `spans` of the currently open chain, root first.
    stack: Vec<usize>,
}

/// Collects a span tree. Thread-safe, though explain runs drive it from a
/// single thread.
#[derive(Debug, Default)]
pub struct SpanCollector {
    state: Mutex<State>,
}

impl SpanCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a child of the innermost open span (or a root) and return its
    /// sequence number.
    pub fn open(&self, name: &str, detail: &str) -> u64 {
        let mut state = self.state.lock().unwrap();
        let seq = state.spans.len() as u64;
        let parent = state.stack.last().map(|&i| state.spans[i].seq);
        let depth = state.stack.len();
        state.spans.push(SpanRecord {
            name: name.to_string(),
            detail: detail.to_string(),
            seq,
            parent,
            depth,
            attrs: Vec::new(),
        });
        let idx = state.spans.len() - 1;
        state.stack.push(idx);
        seq
    }

    /// Attach an integer attribute to the innermost open span (overwrites an
    /// existing attribute of the same key).
    pub fn set_attr(&self, key: &str, value: i64) {
        let mut state = self.state.lock().unwrap();
        if let Some(&idx) = state.stack.last() {
            let attrs = &mut state.spans[idx].attrs;
            if let Some(slot) = attrs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                attrs.push((key.to_string(), value));
            }
        }
    }

    /// Close the innermost open span. A no-op when nothing is open.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.stack.pop();
    }

    /// Close open spans until nesting depth is at most `depth`.
    pub fn close_to_depth(&self, depth: usize) {
        let mut state = self.state.lock().unwrap();
        state.stack.truncate(depth);
    }

    /// Current nesting depth (number of open spans).
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().stack.len()
    }

    /// Close everything and return the recorded spans in open order.
    pub fn finish(&self) -> Vec<SpanRecord> {
        let mut state = self.state.lock().unwrap();
        state.stack.clear();
        state.spans.clone()
    }

    /// Render all recorded spans as NDJSON, one object per line, in open
    /// order. Deterministic: no timestamps, sorted nothing — insertion order
    /// throughout.
    pub fn to_ndjson(&self) -> String {
        let spans = {
            let state = self.state.lock().unwrap();
            state.spans.clone()
        };
        let mut out = String::new();
        for span in &spans {
            out.push_str(&format!(
                "{{\"span\":\"{}\",\"detail\":\"{}\",\"seq\":{},\"parent\":{},\"depth\":{},\"attrs\":{{",
                escape_json(&span.name),
                escape_json(&span.detail),
                span.seq,
                span.parent
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "null".to_string()),
                span.depth,
            ));
            for (i, (key, value)) in span.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape_json(key), value));
            }
            out.push_str("}}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parents() {
        let c = SpanCollector::new();
        let root = c.open("explain", "");
        let phase = c.open("phase", "solve");
        c.open("candidate", "0");
        c.set_attr("index", 0);
        c.close();
        c.close_to_depth(1);
        assert_eq!(c.depth(), 1);
        let spans = c.finish();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(root));
        assert_eq!(spans[2].parent, Some(phase));
        assert_eq!(spans[2].attrs, vec![("index".to_string(), 0)]);
    }

    #[test]
    fn set_attr_overwrites_by_key() {
        let c = SpanCollector::new();
        c.open("explain", "");
        c.set_attr("best", 5);
        c.set_attr("best", 3);
        let spans = c.finish();
        assert_eq!(spans[0].attrs, vec![("best".to_string(), 3)]);
    }

    #[test]
    fn ndjson_export_is_deterministic_and_line_per_span() {
        let run = || {
            let c = SpanCollector::new();
            c.open("explain", "");
            c.open("phase", "raw-eval");
            c.set_attr("rows", 12);
            c.close();
            c.to_ndjson()
        };
        let text = run();
        assert_eq!(text, run());
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with(
            "{\"span\":\"explain\",\"detail\":\"\",\"seq\":0,\"parent\":null,\"depth\":0,\"attrs\":{}}\n"
        ));
        assert!(text.contains("\"attrs\":{\"rows\":12}"));
    }
}
