//! Text rendering of the user-study tables and figures (Table 5, Figures
//! 8–10), in the same row/column layout the paper uses.

use crate::cohort::StudyOutcome;

fn table(caption: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    ratest_storage_table(caption, &headers, rows)
}

// Minimal local copy of the table renderer to avoid a storage dependency for
// one helper; kept private.
fn ratest_storage_table(caption: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(caption);
    out.push('\n');
    let render = |cells: &[String]| -> String {
        let mut s = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            s.push_str(&format!("{cell:<w$}  ", w = w));
        }
        s.trim_end().to_string()
    };
    out.push_str(&render(headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render(row));
        out.push('\n');
    }
    out
}

/// Figure 8: RATest usage statistics per problem.
pub fn render_figure8(outcome: &StudyOutcome) -> String {
    let rows: Vec<Vec<String>> = outcome
        .problems
        .iter()
        .map(|p| {
            vec![
                format!("({})", p.problem),
                p.users.to_string(),
                p.users_correct.to_string(),
                format!("{:.2}", p.mean_attempts),
                format!("{:.2}", p.mean_attempts_before_correct),
            ]
        })
        .collect();
    let mut s = table(
        "Figure 8: statistics on RATest usage (simulated cohort)",
        &[
            "problem",
            "# users",
            "# users correct",
            "avg attempts",
            "avg before correct",
        ],
        &rows,
    );
    s.push_str(&format!(
        "total submissions across the class: {}\n",
        outcome.total_submissions
    ));
    s
}

/// Table 5: score comparison between users and non-users per problem.
pub fn render_table5(outcome: &StudyOutcome) -> String {
    let rows: Vec<Vec<String>> = outcome
        .problems
        .iter()
        .map(|p| {
            vec![
                format!("({})", p.problem),
                p.nonusers.to_string(),
                format!("{:.2}", p.mean_score_nonusers),
                p.users.to_string(),
                format!("{:.2}", p.mean_score_users),
            ]
        })
        .collect();
    table(
        "Table 5: mean scores, RATest non-users vs users (simulated cohort)",
        &[
            "problem",
            "# non-users",
            "score non-users",
            "# users",
            "score users",
        ],
        &rows,
    )
}

/// Figure 9: transfer analysis on problems (h), (i), (j).
pub fn render_figure9(outcome: &StudyOutcome) -> String {
    let rows: Vec<Vec<String>> = outcome
        .transfer
        .iter()
        .map(|r| {
            vec![
                r.cohort.clone(),
                r.students.to_string(),
                format!("{:.2}", r.mean_i),
                format!("{:.2}", r.mean_h),
                format!("{:.2}", r.mean_j),
            ]
        })
        .collect();
    table(
        "Figure 9: performance on (i), (h), (j) by RATest usage on (i) and start time",
        &[
            "cohort",
            "# students",
            "score (i)",
            "score (h)",
            "score (j)",
        ],
        &rows,
    )
}

/// Figure 10: questionnaire summary.
pub fn render_figure10(outcome: &StudyOutcome) -> String {
    let s = &outcome.survey;
    format!(
        "Figure 10: anonymous questionnaire (simulated; {} responses)\n\
         counterexamples helped understand/fix bugs : {:.1}%\n\
         would like similar tools in the future      : {:.1}%\n\
         voted (g) among most helpful                : {:.1}%\n\
         voted (i) among most helpful                : {:.1}%\n",
        s.responses,
        100.0 * s.found_helpful,
        100.0 * s.want_again,
        100.0 * s.voted_g_most_helpful,
        100.0 * s.voted_i_most_helpful,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::{simulate, StudyConfig};

    #[test]
    fn renderings_contain_the_expected_rows() {
        let out = simulate(&StudyConfig::default());
        let t5 = render_table5(&out);
        assert!(t5.contains("(b)"));
        assert!(t5.contains("(i)"));
        let f8 = render_figure8(&out);
        assert!(f8.contains("total submissions"));
        let f9 = render_figure9(&out);
        assert!(f9.contains("did not use"));
        assert!(f9.contains("1 day"));
        let f10 = render_figure10(&out);
        assert!(f10.contains('%'));
    }
}
