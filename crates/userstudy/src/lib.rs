//! # ratest-userstudy
//!
//! A stochastic simulation of the paper's user study (Section 8).
//!
//! The original study observed ~170 real students using RATest on a
//! relational-algebra homework. Human-subject data cannot be regenerated
//! computationally, so this crate models the cohort explicitly — per-student
//! ability, diligence, procrastination and tool adoption, plus a simple
//! "attempts until correct" debugging process whose success probability
//! increases when counterexample feedback is available — and reports the same
//! statistics the paper does:
//!
//! * usage statistics per problem (Figure 8),
//! * score comparison between RATest users and non-users per problem
//!   (Table 5),
//! * the transfer analysis on problems (h)/(i)/(j) split by whether the
//!   student used RATest on (i) and by when they started (Figure 9),
//! * the anonymous questionnaire summary (Figure 10).
//!
//! The model's marginal parameters (80 % adoption, problem difficulty
//! ordering, procrastination mix) are taken from the paper; everything else
//! emerges from the simulation. This is clearly a *simulation*, not a
//! reproduction of human data — see DESIGN.md for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohort;
pub mod report;

pub use cohort::{
    sample_class, simulate, ProblemStats, StudentProfile, StudyConfig, StudyOutcome, TransferRow,
};
pub use report::{render_figure10, render_figure8, render_figure9, render_table5};
