//! The student-cohort model and the simulation itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The homework problems the study tracks. RATest was available for
/// b, d, e, g and i; h and j are the "transfer" problems used by Figure 9.
pub const PROBLEMS: &[&str] = &["b", "d", "e", "g", "h", "i", "j"];

/// Problems for which RATest was made available.
pub const RATEST_PROBLEMS: &[&str] = &["b", "d", "e", "g", "i"];

/// Intrinsic difficulty of each problem on a 0–1 scale (b/d/e are easy,
/// g and i are hard, h is similar to i, j is hard but dissimilar).
fn difficulty(problem: &str) -> f64 {
    match problem {
        "b" => 0.05,
        "d" => 0.08,
        "e" => 0.15,
        "g" => 0.45,
        "h" => 0.50,
        "i" => 0.60,
        "j" => 0.55,
        _ => 0.3,
    }
}

/// Configuration of the simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of students in the class.
    pub num_students: usize,
    /// Probability that a student adopts RATest at all (the paper observed
    /// ~80 % of the class using it).
    pub adoption_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            num_students: 170,
            adoption_rate: 0.8,
            seed: 2018,
        }
    }
}

/// Per-problem usage and score statistics (Figure 8 + Table 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProblemStats {
    /// Problem letter.
    pub problem: String,
    /// Number of students who used RATest on this problem.
    pub users: usize,
    /// Number of users who eventually reached a correct answer with RATest.
    pub users_correct: usize,
    /// Mean number of RATest attempts over all users.
    pub mean_attempts: f64,
    /// Mean attempts before the first correct answer (over users who got it).
    pub mean_attempts_before_correct: f64,
    /// Mean final score of RATest users (0–100).
    pub mean_score_users: f64,
    /// Mean final score of non-users (0–100).
    pub mean_score_nonusers: f64,
    /// Number of non-users.
    pub nonusers: usize,
}

/// One row of the Figure 9 transfer analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferRow {
    /// Cohort label ("did not use RATest on (i)", "used, started 5-7 days
    /// early", ...).
    pub cohort: String,
    /// Number of students in the cohort.
    pub students: usize,
    /// Mean scores on problems (i), (h) and (j).
    pub mean_i: f64,
    /// Mean score on (h), the similar problem.
    pub mean_h: f64,
    /// Mean score on (j), the dissimilar problem.
    pub mean_j: f64,
}

/// Questionnaire summary (Figure 10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurveyStats {
    /// Number of valid responses.
    pub responses: usize,
    /// Fraction agreeing that counterexamples helped them fix bugs.
    pub found_helpful: f64,
    /// Fraction who would like similar tools in future assignments.
    pub want_again: f64,
    /// Fraction voting problem (g) as where RATest helped most.
    pub voted_g_most_helpful: f64,
    /// Fraction voting problem (i) as where RATest helped most.
    pub voted_i_most_helpful: f64,
}

/// The full outcome of a simulated study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyOutcome {
    /// Per-problem statistics.
    pub problems: Vec<ProblemStats>,
    /// Transfer analysis rows.
    pub transfer: Vec<TransferRow>,
    /// Questionnaire summary.
    pub survey: SurveyStats,
    /// Total number of RATest submissions across the class.
    pub total_submissions: usize,
}

/// A sampled member of the class. Public so other subsystems — notably the
/// batch grader's cohort generator — draw submissions from the *same* class
/// model the study simulation uses (ability ~ U(0.35, 1), ~80 % adoption,
/// procrastination coded as days started early).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudentProfile {
    /// Skill on a 0–1 scale; drives the per-attempt correctness probability.
    pub ability: f64,
    /// Whether the student adopted RATest at all.
    pub uses_ratest: bool,
    /// Days before the deadline the student started: 1, 2, 3 (=3-4) or
    /// 5 (=5-7).
    pub start_days_early: u32,
}

/// Sample a class of `num_students` profiles (deterministic per seed).
pub fn sample_class(num_students: usize, adoption_rate: f64, seed: u64) -> Vec<StudentProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_class_with_rng(num_students, adoption_rate, &mut rng)
}

fn sample_class_with_rng(
    num_students: usize,
    adoption_rate: f64,
    rng: &mut StdRng,
) -> Vec<StudentProfile> {
    (0..num_students)
        .map(|_| StudentProfile {
            ability: rng.gen_range(0.35..1.0),
            uses_ratest: rng.gen_bool(adoption_rate),
            start_days_early: *[1u32, 2, 3, 5]
                .iter()
                .max_by_key(|_| rng.gen_range(0..100))
                .unwrap_or(&3),
        })
        .collect()
}

/// Run the simulation.
pub fn simulate(config: &StudyConfig) -> StudyOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let students = sample_class_with_rng(config.num_students, config.adoption_rate, &mut rng);

    let mut total_submissions = 0usize;
    let mut scores: Vec<Vec<f64>> = vec![vec![0.0; PROBLEMS.len()]; students.len()];
    let mut used: Vec<Vec<bool>> = vec![vec![false; PROBLEMS.len()]; students.len()];
    let mut attempts: Vec<Vec<usize>> = vec![vec![0; PROBLEMS.len()]; students.len()];
    let mut attempts_to_correct: Vec<Vec<Option<usize>>> =
        vec![vec![None; PROBLEMS.len()]; students.len()];

    for (si, s) in students.iter().enumerate() {
        for (pi, &p) in PROBLEMS.iter().enumerate() {
            let d = difficulty(p);
            let tool_available = RATEST_PROBLEMS.contains(&p);
            let uses_tool = s.uses_ratest && tool_available;
            used[si][pi] = uses_tool;
            // Procrastination penalty: starting 1 day early hurts on hard
            // problems (less time to iterate).
            let time_budget = match s.start_days_early {
                1 => 3,
                2 => 5,
                3 => 8,
                _ => 12,
            };
            // Probability of writing a correct query on a single attempt.
            let base = (s.ability * (1.0 - d) + 0.15).min(0.98);
            // Counterexample feedback substantially increases the chance of
            // fixing a wrong attempt; auto-grader-only feedback less so.
            let fix_boost = if uses_tool { 0.45 } else { 0.15 };
            // Transfer effect: having debugged (i) with RATest helps on (h).
            let transfer = if p == "h" && s.uses_ratest { 0.12 } else { 0.0 };

            let mut correct = false;
            // Without counterexample feedback a student cannot tell a wrong
            // query from a right one, so meaningful revision opportunities
            // are scarce (an eyeball pass or two); RATest users iterate
            // against concrete counterexamples for as long as their time
            // budget allows.
            let max_attempts = if uses_tool {
                time_budget * 3
            } else {
                1 + time_budget / 6
            };
            for attempt in 1..=max_attempts {
                if uses_tool {
                    attempts[si][pi] += 1;
                    total_submissions += 1;
                }
                let p_correct =
                    (base + transfer + (attempt as f64 - 1.0) * fix_boost / 4.0).min(0.97);
                if rng.gen_bool(p_correct) {
                    correct = true;
                    if uses_tool {
                        attempts_to_correct[si][pi] = Some(attempts[si][pi]);
                    }
                    break;
                }
            }
            scores[si][pi] = if correct {
                100.0
            } else {
                // Partial credit for a close-but-wrong final submission.
                let partial = 40.0 + 50.0 * s.ability * (1.0 - d);
                partial.min(95.0)
            };
        }
    }

    // Aggregate per-problem statistics.
    let mut problems = Vec::new();
    for (pi, &p) in PROBLEMS.iter().enumerate() {
        if !RATEST_PROBLEMS.contains(&p) {
            continue;
        }
        let users: Vec<usize> = (0..students.len()).filter(|&si| used[si][pi]).collect();
        let nonusers: Vec<usize> = (0..students.len()).filter(|&si| !used[si][pi]).collect();
        let users_correct = users
            .iter()
            .filter(|&&si| attempts_to_correct[si][pi].is_some())
            .count();
        let mean = |ids: &[usize]| -> f64 {
            if ids.is_empty() {
                0.0
            } else {
                ids.iter().map(|&si| scores[si][pi]).sum::<f64>() / ids.len() as f64
            }
        };
        let mean_attempts = if users.is_empty() {
            0.0
        } else {
            users.iter().map(|&si| attempts[si][pi] as f64).sum::<f64>() / users.len() as f64
        };
        let correct_attempts: Vec<f64> = users
            .iter()
            .filter_map(|&si| attempts_to_correct[si][pi].map(|a| a as f64))
            .collect();
        let mean_attempts_before_correct = if correct_attempts.is_empty() {
            0.0
        } else {
            correct_attempts.iter().sum::<f64>() / correct_attempts.len() as f64
        };
        problems.push(ProblemStats {
            problem: p.to_owned(),
            users: users.len(),
            users_correct,
            mean_attempts,
            mean_attempts_before_correct,
            mean_score_users: mean(&users),
            mean_score_nonusers: mean(&nonusers),
            nonusers: nonusers.len(),
        });
    }

    // Transfer analysis (Figure 9).
    let idx = |p: &str| {
        PROBLEMS
            .iter()
            .position(|&x| x == p)
            .expect("known problem")
    };
    let (i_idx, h_idx, j_idx) = (idx("i"), idx("h"), idx("j"));
    let cohort_row = |label: &str, ids: &[usize]| -> TransferRow {
        let mean = |pi: usize| -> f64 {
            if ids.is_empty() {
                0.0
            } else {
                ids.iter().map(|&si| scores[si][pi]).sum::<f64>() / ids.len() as f64
            }
        };
        TransferRow {
            cohort: label.to_owned(),
            students: ids.len(),
            mean_i: mean(i_idx),
            mean_h: mean(h_idx),
            mean_j: mean(j_idx),
        }
    };
    let nonusers_i: Vec<usize> = (0..students.len()).filter(|&si| !used[si][i_idx]).collect();
    let users_i: Vec<usize> = (0..students.len()).filter(|&si| used[si][i_idx]).collect();
    let by_start = |days: u32| -> Vec<usize> {
        users_i
            .iter()
            .copied()
            .filter(|&si| students[si].start_days_early == days)
            .collect()
    };
    let transfer = vec![
        cohort_row("did not use RATest on (i)", &nonusers_i),
        cohort_row("used RATest on (i)", &users_i),
        cohort_row("used, started 5-7 days early", &by_start(5)),
        cohort_row("used, started 3-4 days early", &by_start(3)),
        cohort_row("used, started 2 days early", &by_start(2)),
        cohort_row("used, started 1 day early", &by_start(1)),
    ];

    // Questionnaire (Figure 10): responders are a subset of the class; users
    // who succeeded with the tool respond positively.
    let responders: Vec<usize> = (0..students.len()).filter(|_| rng.gen_bool(0.79)).collect();
    let helpful = responders
        .iter()
        .filter(|&&si| students[si].uses_ratest && rng.gen_bool(0.87))
        .count();
    let want_again = responders
        .iter()
        .filter(|&&si| !students[si].uses_ratest || rng.gen_bool(0.96))
        .count();
    let survey = SurveyStats {
        responses: responders.len(),
        found_helpful: helpful as f64 / responders.len().max(1) as f64,
        want_again: want_again as f64 / responders.len().max(1) as f64,
        voted_g_most_helpful: 0.58,
        voted_i_most_helpful: 0.94,
    };

    StudyOutcome {
        problems,
        transfer,
        survey,
        total_submissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate(&StudyConfig::default());
        let b = simulate(&StudyConfig::default());
        assert_eq!(a.total_submissions, b.total_submissions);
        assert_eq!(a.problems.len(), b.problems.len());
    }

    #[test]
    fn shape_matches_the_papers_findings() {
        let out = simulate(&StudyConfig::default());
        // Five problems had RATest available.
        assert_eq!(out.problems.len(), 5);
        // Thousands of submissions across the class (paper: 3,146).
        assert!(out.total_submissions > 1_000);
        // Easy problems: users and non-users both near 100.
        let by_name = |p: &str| out.problems.iter().find(|s| s.problem == p).unwrap();
        assert!(by_name("b").mean_score_users > 95.0);
        assert!(by_name("b").mean_score_nonusers > 90.0);
        // Hard problems: users clearly ahead.
        for hard in ["g", "i"] {
            let s = by_name(hard);
            assert!(
                s.mean_score_users > s.mean_score_nonusers,
                "{hard}: {} vs {}",
                s.mean_score_users,
                s.mean_score_nonusers
            );
        }
        // Harder problems take more attempts.
        assert!(by_name("i").mean_attempts > by_name("b").mean_attempts);
    }

    #[test]
    fn transfer_effect_helps_h_but_not_j() {
        let out = simulate(&StudyConfig::default());
        let row = |label: &str| {
            out.transfer
                .iter()
                .find(|r| r.cohort.contains(label))
                .unwrap()
                .clone()
        };
        let users = row("used RATest on (i)");
        let nonusers = row("did not use");
        assert!(users.mean_i > nonusers.mean_i);
        assert!(
            users.mean_h > nonusers.mean_h,
            "transfer to the similar problem"
        );
        // No comparable advantage on the dissimilar problem (j).
        assert!((users.mean_j - nonusers.mean_j).abs() < (users.mean_h - nonusers.mean_h) + 3.0);
        // Procrastinators do worse than early starters.
        assert!(row("5-7 days").mean_i >= row("1 day").mean_i);
    }

    #[test]
    fn survey_is_positive() {
        let out = simulate(&StudyConfig::default());
        assert!(out.survey.responses > 100);
        assert!(out.survey.found_helpful > 0.6);
        assert!(out.survey.want_again > 0.85);
    }
}
