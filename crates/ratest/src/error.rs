//! Error type for the RATest core algorithms.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RatestError>;

/// Errors raised by the counterexample algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum RatestError {
    /// Query-layer error (parsing, type checking, evaluation).
    Query(ratest_ra::QueryError),
    /// Provenance-layer error.
    Provenance(ratest_provenance::ProvenanceError),
    /// Solver-layer error.
    Solver(ratest_solver::SolverError),
    /// The two queries have incompatible output schemas — their schemas
    /// already explain the inequivalence, no counterexample search is needed.
    NotUnionCompatible {
        /// Rendered schema of `Q1`.
        left: String,
        /// Rendered schema of `Q2`.
        right: String,
    },
    /// The queries agree on the given instance, so it is not a
    /// counterexample to begin with.
    QueriesAgreeOnInstance,
    /// An algorithm-specific precondition failed.
    Unsupported(String),
    /// The run was cancelled cooperatively (e.g. the grading engine timed the
    /// job out and asked it to stop consuming CPU).
    Cancelled,
    /// The run's [`crate::session::Budget`] deadline passed.
    DeadlineExceeded,
    /// The run's [`crate::session::Budget`] step quota was exhausted.
    StepQuotaExhausted,
}

impl RatestError {
    /// Translate an evaluator-layer interruption reason into the matching
    /// typed error. This is what keeps a budget raised deep inside
    /// `ra::eval` indistinguishable from one raised at an algorithm loop
    /// boundary.
    pub fn from_interrupted(reason: ratest_ra::Interrupted) -> RatestError {
        match reason {
            ratest_ra::Interrupted::Cancelled => RatestError::Cancelled,
            ratest_ra::Interrupted::DeadlineExceeded => RatestError::DeadlineExceeded,
            ratest_ra::Interrupted::StepQuotaExhausted => RatestError::StepQuotaExhausted,
        }
    }

    /// Whether this error means the run hit its budget (cancelled, deadline,
    /// quota) rather than failing on the inputs.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(
            self,
            RatestError::Cancelled
                | RatestError::DeadlineExceeded
                | RatestError::StepQuotaExhausted
        )
    }
}

impl fmt::Display for RatestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatestError::Query(e) => write!(f, "query error: {e}"),
            RatestError::Provenance(e) => write!(f, "provenance error: {e}"),
            RatestError::Solver(e) => write!(f, "solver error: {e}"),
            RatestError::NotUnionCompatible { left, right } => {
                write!(f, "queries are not union compatible: {left} vs {right}")
            }
            RatestError::QueriesAgreeOnInstance => {
                write!(
                    f,
                    "Q1(D) = Q2(D): the instance does not distinguish the queries"
                )
            }
            RatestError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            RatestError::Cancelled => write!(f, "cancelled"),
            RatestError::DeadlineExceeded => write!(f, "budget deadline exceeded"),
            RatestError::StepQuotaExhausted => write!(f, "budget step quota exhausted"),
        }
    }
}

impl std::error::Error for RatestError {}

impl From<ratest_ra::QueryError> for RatestError {
    fn from(e: ratest_ra::QueryError) -> Self {
        match e {
            // A budget raised inside the evaluator is a budget error, not a
            // query error: the callers that map outcomes to verdicts must
            // see one consistent shape wherever the interruption landed.
            ratest_ra::QueryError::Interrupted(reason) => RatestError::from_interrupted(reason),
            other => RatestError::Query(other),
        }
    }
}
impl From<ratest_provenance::ProvenanceError> for RatestError {
    fn from(e: ratest_provenance::ProvenanceError) -> Self {
        match e {
            ratest_provenance::ProvenanceError::Query(ratest_ra::QueryError::Interrupted(
                reason,
            )) => RatestError::from_interrupted(reason),
            other => RatestError::Provenance(other),
        }
    }
}
impl From<ratest_solver::SolverError> for RatestError {
    fn from(e: ratest_solver::SolverError) -> Self {
        RatestError::Solver(e)
    }
}
impl From<ratest_storage::StorageError> for RatestError {
    fn from(e: ratest_storage::StorageError) -> Self {
        RatestError::Query(ratest_ra::QueryError::Storage(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RatestError = ratest_solver::SolverError::Unsatisfiable.into();
        assert!(e.to_string().contains("unsat"));
        let e: RatestError = ratest_ra::QueryError::MissingParameter("p".into()).into();
        assert!(e.to_string().contains("@p"));
        let e: RatestError = ratest_storage::StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains('R'));
        assert!(RatestError::QueriesAgreeOnInstance
            .to_string()
            .contains("Q1(D)"));
    }

    #[test]
    fn interruptions_normalize_to_budget_errors() {
        let e: RatestError =
            ratest_ra::QueryError::Interrupted(ratest_ra::Interrupted::DeadlineExceeded).into();
        assert_eq!(e, RatestError::DeadlineExceeded);
        assert!(e.is_budget_exhausted());
        let e: RatestError = ratest_provenance::ProvenanceError::Query(
            ratest_ra::QueryError::Interrupted(ratest_ra::Interrupted::Cancelled),
        )
        .into();
        assert_eq!(e, RatestError::Cancelled);
        let e: RatestError =
            ratest_ra::QueryError::Interrupted(ratest_ra::Interrupted::StepQuotaExhausted).into();
        assert_eq!(e, RatestError::StepQuotaExhausted);
        assert!(!RatestError::QueriesAgreeOnInstance.is_budget_exhausted());
    }
}
