//! Error type for the RATest core algorithms.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RatestError>;

/// Errors raised by the counterexample algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum RatestError {
    /// Query-layer error (parsing, type checking, evaluation).
    Query(ratest_ra::QueryError),
    /// Provenance-layer error.
    Provenance(ratest_provenance::ProvenanceError),
    /// Solver-layer error.
    Solver(ratest_solver::SolverError),
    /// The two queries have incompatible output schemas — their schemas
    /// already explain the inequivalence, no counterexample search is needed.
    NotUnionCompatible {
        /// Rendered schema of `Q1`.
        left: String,
        /// Rendered schema of `Q2`.
        right: String,
    },
    /// The queries agree on the given instance, so it is not a
    /// counterexample to begin with.
    QueriesAgreeOnInstance,
    /// An algorithm-specific precondition failed.
    Unsupported(String),
    /// The run was cancelled cooperatively (e.g. the grading engine timed the
    /// job out and asked it to stop consuming CPU).
    Cancelled,
}

impl fmt::Display for RatestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatestError::Query(e) => write!(f, "query error: {e}"),
            RatestError::Provenance(e) => write!(f, "provenance error: {e}"),
            RatestError::Solver(e) => write!(f, "solver error: {e}"),
            RatestError::NotUnionCompatible { left, right } => {
                write!(f, "queries are not union compatible: {left} vs {right}")
            }
            RatestError::QueriesAgreeOnInstance => {
                write!(
                    f,
                    "Q1(D) = Q2(D): the instance does not distinguish the queries"
                )
            }
            RatestError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            RatestError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for RatestError {}

impl From<ratest_ra::QueryError> for RatestError {
    fn from(e: ratest_ra::QueryError) -> Self {
        RatestError::Query(e)
    }
}
impl From<ratest_provenance::ProvenanceError> for RatestError {
    fn from(e: ratest_provenance::ProvenanceError) -> Self {
        RatestError::Provenance(e)
    }
}
impl From<ratest_solver::SolverError> for RatestError {
    fn from(e: ratest_solver::SolverError) -> Self {
        RatestError::Solver(e)
    }
}
impl From<ratest_storage::StorageError> for RatestError {
    fn from(e: ratest_storage::StorageError) -> Self {
        RatestError::Query(ratest_ra::QueryError::Storage(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RatestError = ratest_solver::SolverError::Unsatisfiable.into();
        assert!(e.to_string().contains("unsat"));
        let e: RatestError = ratest_ra::QueryError::MissingParameter("p".into()).into();
        assert!(e.to_string().contains("@p"));
        let e: RatestError = ratest_storage::StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains('R'));
        assert!(RatestError::QueriesAgreeOnInstance
            .to_string()
            .contains("Q1(D)"));
    }
}
