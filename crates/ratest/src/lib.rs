//! # ratest-core
//!
//! The RATest algorithms from *"Explaining Wrong Queries Using Small
//! Examples"* (Miao, Roy, Yang — SIGMOD 2019): given a reference query `Q1`,
//! a test query `Q2` and a test database instance `D` with
//! `Q1(D) ≠ Q2(D)`, find a **small counterexample** `D' ⊆ D` such that
//! `Q1(D') ≠ Q2(D')`.
//!
//! The crate implements the paper's full algorithm suite:
//!
//! * [`problem`] — the *smallest counterexample problem* (SCP) and *smallest
//!   witness problem* (SWP) definitions, counterexample verification and
//!   result types,
//! * [`encode`] — translation of Boolean how-provenance plus foreign-key
//!   constraints into solver formulas (Section 4.1 and 4.3),
//! * [`basic`] — Algorithm 1 (`Basic`): iterate over all differing output
//!   tuples, solve each witness problem, keep the global best,
//! * [`optsigma`] — Algorithm 2 (`Optσ`): pick one differing tuple, push a
//!   tuple-equality selection down `Q1 − Q2`, compute provenance for that
//!   tuple only, and minimize with the optimizing solver,
//! * [`polytime`] — the poly-time special cases of Table 1 (monotone SPJU
//!   witnesses via DNF minterms; SPJUD\* via combination of minimal
//!   witnesses),
//! * [`aggregates`] — the aggregate-query extensions of Section 5
//!   (`Agg-Basic` provenance encoding, `Agg-Param` parameterized
//!   counterexamples, `Agg-Opt` heuristic — Algorithm 3),
//! * [`pipeline`] — the end-to-end RATest dispatch that classifies the
//!   query pair and runs the right algorithm, with per-phase timing
//!   breakdowns used by the experiment harness,
//! * [`session`] — the durable, session-oriented public API: a [`Session`]
//!   owns the database and prepared references, a unified [`session::Budget`]
//!   (deadline + step quota + cancellation) bounds every request, and an
//!   [`session::EventSink`] streams typed progress events,
//! * [`report`] — human-readable explanations (the CLI stand-in for the
//!   web UI shown to students).
//!
//! ## Quick start
//!
//! ```
//! use ratest_core::session::Session;
//! use ratest_ra::testdata;
//!
//! let session = Session::builder(testdata::figure1_db()).build();
//! let reference = session.prepare(&testdata::example1_q1()).unwrap(); // instructor's query
//! let outcome = session
//!     .explain(reference, &testdata::example1_q2()) // student's wrong query
//!     .unwrap();
//! let cex = outcome.counterexample.expect("queries differ");
//! assert_eq!(cex.size(), 3); // e.g. {Mary} ∪ {two of her CS registrations}
//! ```
//!
//! The pre-session one-shot functions ([`pipeline::explain`],
//! [`pipeline::explain_with_reference`]) remain as deprecated wrappers with
//! identical outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod basic;
pub mod encode;
pub mod error;
pub mod optsigma;
pub mod pipeline;
pub mod polytime;
pub mod problem;
pub mod report;
pub mod session;
pub mod trace;

pub use error::{RatestError, Result};
#[allow(deprecated)]
pub use pipeline::{explain, explain_with_reference};
pub use pipeline::{
    CancelFlag, ExplainOutcome, PreparedReference, RatestOptions, SolverStrategy, Timings,
};
pub use problem::{Counterexample, Witness};
pub use ratest_solver::SolverReuse;
pub use session::{
    Budget, CollectingSink, EventHandle, EventSink, ExplainEvent, Phase, ReferenceHandle, Session,
    SessionBuilder,
};
pub use trace::TracingSink;
