//! # ratest-core
//!
//! The RATest algorithms from *"Explaining Wrong Queries Using Small
//! Examples"* (Miao, Roy, Yang — SIGMOD 2019): given a reference query `Q1`,
//! a test query `Q2` and a test database instance `D` with
//! `Q1(D) ≠ Q2(D)`, find a **small counterexample** `D' ⊆ D` such that
//! `Q1(D') ≠ Q2(D')`.
//!
//! The crate implements the paper's full algorithm suite:
//!
//! * [`problem`] — the *smallest counterexample problem* (SCP) and *smallest
//!   witness problem* (SWP) definitions, counterexample verification and
//!   result types,
//! * [`encode`] — translation of Boolean how-provenance plus foreign-key
//!   constraints into solver formulas (Section 4.1 and 4.3),
//! * [`basic`] — Algorithm 1 (`Basic`): iterate over all differing output
//!   tuples, solve each witness problem, keep the global best,
//! * [`optsigma`] — Algorithm 2 (`Optσ`): pick one differing tuple, push a
//!   tuple-equality selection down `Q1 − Q2`, compute provenance for that
//!   tuple only, and minimize with the optimizing solver,
//! * [`polytime`] — the poly-time special cases of Table 1 (monotone SPJU
//!   witnesses via DNF minterms; SPJUD\* via combination of minimal
//!   witnesses),
//! * [`aggregates`] — the aggregate-query extensions of Section 5
//!   (`Agg-Basic` provenance encoding, `Agg-Param` parameterized
//!   counterexamples, `Agg-Opt` heuristic — Algorithm 3),
//! * [`pipeline`] — the end-to-end RATest entry point that classifies the
//!   query pair and dispatches to the right algorithm, with per-phase
//!   timing breakdowns used by the experiment harness,
//! * [`report`] — human-readable explanations (the CLI stand-in for the
//!   web UI shown to students).
//!
//! ## Quick start
//!
//! ```
//! use ratest_core::pipeline::{explain, RatestOptions};
//! use ratest_ra::testdata;
//!
//! let db = testdata::figure1_db();
//! let outcome = explain(
//!     &testdata::example1_q1(), // instructor's correct query
//!     &testdata::example1_q2(), // student's wrong query
//!     &db,
//!     &RatestOptions::default(),
//! ).unwrap();
//! let cex = outcome.counterexample.expect("queries differ");
//! assert_eq!(cex.size(), 3); // e.g. {Mary} ∪ {two of her CS registrations}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod basic;
pub mod encode;
pub mod error;
pub mod optsigma;
pub mod pipeline;
pub mod polytime;
pub mod problem;
pub mod report;

pub use error::{RatestError, Result};
pub use pipeline::{
    explain, explain_with_reference, CancelFlag, ExplainOutcome, PreparedReference, RatestOptions,
    SolverStrategy, Timings,
};
pub use problem::{Counterexample, Witness};
