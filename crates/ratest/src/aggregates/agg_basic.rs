//! `Agg-Basic`: provenance-for-aggregates encoding (Section 5.2).
//!
//! For a candidate group key, the Boolean skeleton requires that the group
//! exists in at least one of the two queries; the solver minimizes the number
//! of retained tuples among the variables of that group, and a lazy theory
//! check — re-evaluating both aggregate queries on the candidate
//! sub-instance via the pre-computed group provenance — rejects models on
//! which the queries happen to agree (e.g. equal AVG values), blocking them
//! and continuing. This mirrors the paper's symbolic SMT encoding
//! (Listing 2) with evaluation standing in for symbolic arithmetic.

use super::pair_provenance;
use crate::encode::{encode_provenance, foreign_key_clauses, VarMap};
use crate::error::{RatestError, Result};
use crate::pipeline::Timings;
use crate::problem::{
    check_distinguishes, verify_candidate, CandidateEval, Counterexample, DeltaPair,
};
use ratest_provenance::aggprov::AggregateProvenance;
use ratest_provenance::BoolExpr;
use ratest_ra::ast::Query;
use ratest_ra::eval::Params;
use ratest_solver::formula::Formula;
use ratest_solver::incremental::SolverReuse;
use ratest_solver::minones::{minimize_ones_with_theory_into, MinOnesOptions};
use ratest_solver::SolverStats;
use ratest_storage::{Database, TupleSelection, Value};
use ratest_telemetry::MetricsHandle;
use std::collections::BTreeSet;
use std::time::Instant;

/// Options for `Agg-Basic`.
#[derive(Debug, Clone)]
pub struct AggBasicOptions {
    /// Maximum number of candidate groups to try (ordered by provenance
    /// size, smallest first, as suggested in Section 5.3.2).
    pub max_groups: usize,
    /// Unified resource budget, polled once per candidate group.
    pub budget: crate::session::Budget,
    /// Progress events (per candidate group).
    pub events: crate::session::EventHandle,
    /// Metrics sink: provenance and solver counters are folded in here.
    pub metrics: MetricsHandle,
    /// Warm solver shared across this run's candidate groups.
    pub solver_reuse: SolverReuse,
    /// Use the incremental descent (default). `false` forces every bound
    /// probe onto a fresh from-scratch solver — the bench comparison leg.
    pub incremental_solver: bool,
    /// Delta plans for the query pair, compiled once per prepared reference.
    /// When present, each surviving candidate sub-instance is verified by
    /// delta propagation instead of a scratch re-evaluation.
    pub delta: Option<DeltaPair>,
}

impl Default for AggBasicOptions {
    fn default() -> Self {
        AggBasicOptions {
            max_groups: 8,
            budget: crate::session::Budget::unlimited(),
            events: crate::session::EventHandle::none(),
            metrics: MetricsHandle::none(),
            solver_reuse: SolverReuse::fresh(),
            incremental_solver: true,
            delta: None,
        }
    }
}

/// Run `Agg-Basic` on an aggregate query pair.
pub fn smallest_counterexample_agg_basic(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    options: &AggBasicOptions,
) -> Result<(Counterexample, Timings)> {
    let mut timings = Timings::default();

    let start = Instant::now();
    let (r1, r2) = check_distinguishes(q1, q2, db, params)?;
    timings.raw_eval = start.elapsed();
    if r1.set_eq(&r2) {
        return Err(RatestError::QueriesAgreeOnInstance);
    }

    let start = Instant::now();
    let (p1, p2) = pair_provenance(
        q1,
        q2,
        db,
        params,
        &options.budget.interrupt(),
        &options.metrics,
    )?;
    timings.provenance = start.elapsed();

    let start = Instant::now();
    let candidates = candidate_group_keys(&p1, &p2, params)?;
    let ctx = CandidateEval {
        delta: options.delta.clone(),
        metrics: options.metrics.clone(),
        interrupt: options.budget.interrupt(),
    };
    let mut best: Option<Counterexample> = None;
    for (index, key) in candidates.into_iter().take(options.max_groups).enumerate() {
        options.budget.check()?;
        options
            .events
            .emit(crate::session::ExplainEvent::CandidateChecked {
                index,
                best_size: best.as_ref().map(|b| b.size()),
            });
        match solve_for_group(
            q1,
            q2,
            db,
            params,
            &p1,
            &p2,
            &key,
            &options.solver_reuse,
            options.incremental_solver,
            &ctx,
        )? {
            Some(cex) => {
                let better = best.as_ref().map(|b| cex.size() < b.size()).unwrap_or(true);
                if better {
                    best = Some(cex);
                }
            }
            None => continue,
        }
    }
    timings.solver = start.elapsed();
    timings.total = timings.raw_eval + timings.provenance + timings.solver;

    best.map(|c| (c, timings)).ok_or_else(|| {
        RatestError::Unsupported("no candidate group yields a distinguishing sub-instance".into())
    })
}

/// Group keys on which the two queries (may) disagree, ordered by the number
/// of involved tuples so that small groups are attempted first.
pub(crate) fn candidate_group_keys(
    p1: &AggregateProvenance,
    p2: &AggregateProvenance,
    params: &Params,
) -> Result<Vec<Vec<Value>>> {
    let mut keys: BTreeSet<Vec<Value>> = BTreeSet::new();
    for g in &p1.groups {
        keys.insert(g.key.clone());
    }
    for g in &p2.groups {
        keys.insert(g.key.clone());
    }
    let mut scored: Vec<(bool, usize, Vec<Value>)> = Vec::new();
    for key in keys {
        let size = group_var_count(p1, &key) + group_var_count(p2, &key);
        // Groups whose full-instance rows already differ are guaranteed to
        // lead somewhere, so they come first; among those, prefer the group
        // with the fewest involved tuples (Section 5.3.2).
        let differs = rows_differ_on_full_instance(p1, p2, &key, params)?;
        scored.push((!differs, size, key));
    }
    scored.sort();
    Ok(scored.into_iter().map(|(_, _, k)| k).collect())
}

fn group_var_count(p: &AggregateProvenance, key: &[Value]) -> usize {
    p.group_by_key(key)
        .map(|g| g.variables().len())
        .unwrap_or(0)
}

fn rows_differ_on_full_instance(
    p1: &AggregateProvenance,
    p2: &AggregateProvenance,
    key: &[Value],
    params: &Params,
) -> Result<bool> {
    let always = |_id| true;
    let row1 = match p1.group_by_key(key) {
        Some(g) => g.evaluate_under(&p1.group_schema, &always, params)?,
        None => None,
    };
    let row2 = match p2.group_by_key(key) {
        Some(g) => g.evaluate_under(&p2.group_schema, &always, params)?,
        None => None,
    };
    Ok(row1 != row2)
}

/// Solve the min-ones problem restricted to one group.
#[allow(clippy::too_many_arguments)]
fn solve_for_group(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    p1: &AggregateProvenance,
    p2: &AggregateProvenance,
    key: &[Value],
    solver_reuse: &SolverReuse,
    incremental_solver: bool,
    ctx: &CandidateEval,
) -> Result<Option<Counterexample>> {
    let metrics = &ctx.metrics;
    let exists1 = p1
        .group_by_key(key)
        .map(|g| g.exists.clone())
        .unwrap_or(BoolExpr::False);
    let exists2 = p2
        .group_by_key(key)
        .map(|g| g.exists.clone())
        .unwrap_or(BoolExpr::False);
    // The group must exist in at least one query (a necessary condition for
    // the group to contribute a difference).
    let skeleton = BoolExpr::or2(exists1, exists2);
    if skeleton.is_false() {
        return Ok(None);
    }

    let mut vars = VarMap::new();
    let mut parts = vec![encode_provenance(&skeleton, &mut vars)];
    parts.extend(foreign_key_clauses(db, &mut vars)?);
    let formula = Formula::and(parts);
    let objective = vars.all_vars();

    let vars_for_theory = vars.clone();
    let accept = |true_vars: &[ratest_solver::Var]| -> bool {
        let selection = vars_for_theory.selection_from_vars(true_vars);
        queries_differ_under(p1, p2, &selection, params).unwrap_or(false)
    };
    metrics.counter_inc("agg.groups_solved");
    metrics.observe("solver.objective_vars", objective.len() as u64);
    let solve_options = MinOnesOptions {
        incremental: incremental_solver,
        reuse: Some(solver_reuse.clone()),
        ..Default::default()
    };
    let mut solver_stats = SolverStats::default();
    let result = minimize_ones_with_theory_into(
        &formula,
        &objective,
        &solve_options,
        accept,
        &mut solver_stats,
    );
    // Record on every path: groups abandoned as unsatisfiable or budget-capped
    // still did solver work that `--metrics` totals must include.
    solver_stats.record(metrics);
    let sol = match result {
        Ok(sol) => sol,
        Err(ratest_solver::SolverError::Unsatisfiable)
        | Err(ratest_solver::SolverError::BudgetExhausted { .. }) => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let selection = vars.selection_from_vars(&sol.true_vars);
    match verify_candidate(q1, q2, db, selection, None, params, ctx) {
        Ok(cex) => Ok(Some(cex)),
        Err(RatestError::Unsupported(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// The lazy theory check: do the two aggregate queries produce different
/// output sets on the sub-instance described by `selection`?
pub(crate) fn queries_differ_under(
    p1: &AggregateProvenance,
    p2: &AggregateProvenance,
    selection: &TupleSelection,
    params: &Params,
) -> Result<bool> {
    let present = |id| selection.contains(id);
    let out1 = p1.evaluate_under(&present, params)?;
    let out2 = p2.evaluate_under(&present, params)?;
    if out1.len() != out2.len() {
        return Ok(true);
    }
    let set1: BTreeSet<&Vec<Value>> = out1.iter().collect();
    Ok(!out2.iter().all(|r| set1.contains(r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::testdata;

    #[test]
    fn example4_yields_a_tiny_counterexample() {
        // The paper's discussion of Example 4: a counterexample needs only
        // Mary's ECON registration (plus Mary herself, for the join/FK),
        // because then Q1 returns nothing for Mary while Q2 returns (Mary, 95).
        let db = testdata::figure1_db();
        let (cex, _) = smallest_counterexample_agg_basic(
            &testdata::example4_q1(),
            &testdata::example4_q2(),
            &db,
            &Params::new(),
            &AggBasicOptions::default(),
        )
        .unwrap();
        assert!(cex.size() <= 2, "expected ≤ 2 tuples, got {}", cex.size());
        assert!(!cex.q1_result.set_eq(&cex.q2_result));
    }

    #[test]
    fn example5_counterexample_respects_the_having_threshold() {
        // With HAVING COUNT >= 3 fixed, the counterexample must keep all of
        // Mary's three registrations plus Mary (4 tuples) — the paper's
        // motivation for parameterization.
        let db = testdata::figure1_db();
        let (cex, _) = smallest_counterexample_agg_basic(
            &testdata::example5_q1(),
            &testdata::example5_q2(),
            &db,
            &Params::new(),
            &AggBasicOptions::default(),
        )
        .unwrap();
        assert_eq!(cex.size(), 4);
    }

    #[test]
    fn equivalent_aggregate_queries_are_rejected() {
        let db = testdata::figure1_db();
        let q = testdata::example4_q1();
        assert!(matches!(
            smallest_counterexample_agg_basic(
                &q,
                &q,
                &db,
                &Params::new(),
                &AggBasicOptions::default()
            ),
            Err(RatestError::QueriesAgreeOnInstance)
        ));
    }

    #[test]
    fn theory_check_detects_agreement_and_disagreement() {
        let db = testdata::figure1_db();
        let (p1, p2) = pair_provenance(
            &testdata::example4_q1(),
            &testdata::example4_q2(),
            &db,
            &Params::new(),
            &ratest_ra::interrupt::Interrupt::none(),
            &MetricsHandle::none(),
        )
        .unwrap();
        // Empty sub-instance: both queries return nothing — no difference.
        assert!(!queries_differ_under(&p1, &p2, &TupleSelection::new(), &Params::new()).unwrap());
        // Full instance: they differ.
        assert!(queries_differ_under(&p1, &p2, &TupleSelection::all(&db), &Params::new()).unwrap());
    }
}
