//! `Agg-Param`: the smallest *parameterized* counterexample (Definition 3,
//! Example 6).
//!
//! Constants compared against aggregate values (HAVING `COUNT(...) >= 3`)
//! force counterexamples to contain whole groups. Replacing those constants
//! with parameters lets the search pick a different threshold λ' together
//! with the sub-instance, shrinking the counterexample dramatically (the
//! paper reports ~70 % smaller counterexamples on TPC-H Q18 for a negligible
//! runtime increase — Figure 7).

use super::agg_basic::{candidate_group_keys, queries_differ_under};
use super::pair_provenance;
use crate::encode::{encode_provenance, foreign_key_clauses, VarMap};
use crate::error::{RatestError, Result};
use crate::pipeline::Timings;
use crate::problem::{
    check_distinguishes, verify_candidate, CandidateEval, Counterexample, DeltaPair,
};
use ratest_provenance::aggprov::AggregateProvenance;
use ratest_provenance::BoolExpr;
use ratest_ra::ast::Query;
use ratest_ra::eval::Params;
use ratest_solver::formula::Formula;
use ratest_solver::incremental::SolverReuse;
use ratest_solver::minones::{minimize_ones_with_theory_into, MinOnesOptions};
use ratest_solver::SolverStats;
use ratest_storage::{Database, TupleSelection, Value};
use ratest_telemetry::MetricsHandle;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::time::Instant;

/// Options for `Agg-Param`.
#[derive(Debug, Clone)]
pub struct AggParamOptions {
    /// Maximum number of candidate groups to try.
    pub max_groups: usize,
    /// Extra candidate parameter values to try besides the derived ones.
    pub extra_candidates: Vec<i64>,
    /// Unified resource budget, polled once per candidate group.
    pub budget: crate::session::Budget,
    /// Progress events (per candidate group).
    pub events: crate::session::EventHandle,
    /// Metrics sink: provenance and solver counters are folded in here.
    pub metrics: MetricsHandle,
    /// Warm solver shared across this run's candidate groups.
    pub solver_reuse: SolverReuse,
    /// Use the incremental descent (default). `false` forces every bound
    /// probe onto a fresh from-scratch solver — the bench comparison leg.
    pub incremental_solver: bool,
    /// Delta plans for the query pair, compiled once per prepared reference
    /// under the *original* λ. Candidates whose chosen λ' equals λ are
    /// verified by delta propagation; a different λ' falls back to scratch
    /// (the plans pin their parameter bindings).
    pub delta: Option<DeltaPair>,
}

impl Default for AggParamOptions {
    fn default() -> Self {
        AggParamOptions {
            max_groups: 8,
            extra_candidates: vec![0, 1],
            budget: crate::session::Budget::unlimited(),
            events: crate::session::EventHandle::none(),
            metrics: MetricsHandle::none(),
            solver_reuse: SolverReuse::fresh(),
            incremental_solver: true,
            delta: None,
        }
    }
}

/// Run `Agg-Param` on a parameterized aggregate query pair. `original_params`
/// is the original parameter setting λ (under which the queries must already
/// disagree on `db`); the returned counterexample's
/// [`Counterexample::parameters`] holds the chosen λ'.
pub fn smallest_counterexample_agg_param(
    q1: &Query,
    q2: &Query,
    db: &Database,
    original_params: &Params,
    options: &AggParamOptions,
) -> Result<(Counterexample, Timings)> {
    let mut timings = Timings::default();
    let param_names: BTreeSet<String> = q1.params().union(&q2.params()).cloned().collect();

    let start = Instant::now();
    let (r1, r2) = check_distinguishes(q1, q2, db, original_params)?;
    timings.raw_eval = start.elapsed();
    if r1.set_eq(&r2) {
        return Err(RatestError::QueriesAgreeOnInstance);
    }

    let start = Instant::now();
    let (p1, p2) = pair_provenance(
        q1,
        q2,
        db,
        original_params,
        &options.budget.interrupt(),
        &options.metrics,
    )?;
    timings.provenance = start.elapsed();

    let start = Instant::now();
    let candidates = candidate_group_keys(&p1, &p2, original_params)?;
    let mut best: Option<Counterexample> = None;
    for (index, key) in candidates.into_iter().take(options.max_groups).enumerate() {
        options.budget.check()?;
        options
            .events
            .emit(crate::session::ExplainEvent::CandidateChecked {
                index,
                best_size: best.as_ref().map(|b| b.size()),
            });
        if let Some(cex) = solve_group_parameterized(
            q1,
            q2,
            db,
            original_params,
            &param_names,
            options,
            &p1,
            &p2,
            &key,
        )? {
            let better = best.as_ref().map(|b| cex.size() < b.size()).unwrap_or(true);
            if better {
                best = Some(cex);
            }
        }
    }
    timings.solver = start.elapsed();
    timings.total = timings.raw_eval + timings.provenance + timings.solver;

    best.map(|c| (c, timings)).ok_or_else(|| {
        RatestError::Unsupported(
            "no candidate group yields a distinguishing parameterized sub-instance".into(),
        )
    })
}

#[allow(clippy::too_many_arguments)]
fn solve_group_parameterized(
    q1: &Query,
    q2: &Query,
    db: &Database,
    original_params: &Params,
    param_names: &BTreeSet<String>,
    options: &AggParamOptions,
    p1: &AggregateProvenance,
    p2: &AggregateProvenance,
    key: &[Value],
) -> Result<Option<Counterexample>> {
    let exists1 = p1
        .group_by_key(key)
        .map(|g| g.exists.clone())
        .unwrap_or(BoolExpr::False);
    let exists2 = p2
        .group_by_key(key)
        .map(|g| g.exists.clone())
        .unwrap_or(BoolExpr::False);
    let skeleton = BoolExpr::or2(exists1, exists2);
    if skeleton.is_false() {
        return Ok(None);
    }

    let mut vars = VarMap::new();
    let mut parts = vec![encode_provenance(&skeleton, &mut vars)];
    parts.extend(foreign_key_clauses(db, &mut vars)?);
    let formula = Formula::and(parts);
    let objective = vars.all_vars();

    // The theory callback searches over candidate parameter settings for one
    // that makes the queries disagree; the successful setting is remembered.
    let chosen: RefCell<Option<Params>> = RefCell::new(None);
    let vars_for_theory = vars.clone();
    let accept = |true_vars: &[ratest_solver::Var]| -> bool {
        let selection = vars_for_theory.selection_from_vars(true_vars);
        for candidate in
            candidate_param_settings(param_names, original_params, options, p1, p2, &selection)
        {
            if queries_differ_under(p1, p2, &selection, &candidate).unwrap_or(false) {
                *chosen.borrow_mut() = Some(candidate);
                return true;
            }
        }
        false
    };
    options.metrics.counter_inc("agg.groups_solved");
    options
        .metrics
        .observe("solver.objective_vars", objective.len() as u64);
    let solve_options = MinOnesOptions {
        incremental: options.incremental_solver,
        reuse: Some(options.solver_reuse.clone()),
        ..Default::default()
    };
    let mut solver_stats = SolverStats::default();
    let result = minimize_ones_with_theory_into(
        &formula,
        &objective,
        &solve_options,
        accept,
        &mut solver_stats,
    );
    // Record on every path: groups abandoned as unsatisfiable or budget-capped
    // still did solver work that `--metrics` totals must include.
    solver_stats.record(&options.metrics);
    let sol = match result {
        Ok(sol) => sol,
        Err(ratest_solver::SolverError::Unsatisfiable)
        | Err(ratest_solver::SolverError::BudgetExhausted { .. }) => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let selection = vars.selection_from_vars(&sol.true_vars);
    let params = chosen
        .into_inner()
        .unwrap_or_else(|| original_params.clone());
    let ctx = CandidateEval {
        delta: options.delta.clone(),
        metrics: options.metrics.clone(),
        interrupt: options.budget.interrupt(),
    };
    match verify_candidate(q1, q2, db, selection, None, &params, &ctx) {
        Ok(cex) => Ok(Some(cex)),
        Err(RatestError::Unsupported(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Candidate parameter settings λ' derived from the current selection: the
/// live member counts of the candidate groups (so COUNT-style thresholds can
/// be met exactly), the original values, and small constants (0, 1).
fn candidate_param_settings(
    param_names: &BTreeSet<String>,
    original: &Params,
    options: &AggParamOptions,
    p1: &AggregateProvenance,
    p2: &AggregateProvenance,
    selection: &TupleSelection,
) -> Vec<Params> {
    if param_names.is_empty() {
        return vec![original.clone()];
    }
    let mut values: BTreeSet<i64> = options.extra_candidates.iter().copied().collect();
    for (name, v) in original.iter() {
        if param_names.contains(name) {
            if let Some(i) = v.as_int() {
                values.insert(i);
            }
        }
    }
    for p in [p1, p2] {
        for g in &p.groups {
            let live = g
                .members
                .iter()
                .filter(|m| m.provenance.eval(&|id| selection.contains(id)))
                .count() as i64;
            if live > 0 {
                values.insert(live);
            }
        }
    }
    // Cartesian product over parameters, capped to keep the search small
    // (queries in the paper's workloads have a single parameter).
    let names: Vec<&String> = param_names.iter().collect();
    let mut settings: Vec<Params> = vec![Params::new()];
    for name in names {
        let mut next = Vec::new();
        for setting in &settings {
            for v in &values {
                let mut s = setting.clone();
                s.insert(name.clone(), Value::Int(*v));
                next.push(s);
            }
        }
        settings = next;
        if settings.len() > 256 {
            settings.truncate(256);
        }
    }
    settings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::agg_basic::{smallest_counterexample_agg_basic, AggBasicOptions};
    use ratest_ra::testdata;

    fn original_params() -> Params {
        let mut p = Params::new();
        p.insert("numCS".into(), Value::Int(3));
        p
    }

    #[test]
    fn example6_parameterization_shrinks_the_counterexample() {
        let db = testdata::figure1_db();
        // Non-parameterized (Example 5): 4 tuples needed.
        let (fixed, _) = smallest_counterexample_agg_basic(
            &testdata::example5_q1(),
            &testdata::example5_q2(),
            &db,
            &Params::new(),
            &AggBasicOptions::default(),
        )
        .unwrap();
        // Parameterized (Example 6): 2 tuples suffice (Mary + her ECON
        // registration with @numCS = 1).
        let (param, _) = smallest_counterexample_agg_param(
            &testdata::example6_q1(),
            &testdata::example6_q2(),
            &db,
            &original_params(),
            &AggParamOptions::default(),
        )
        .unwrap();
        assert!(param.size() < fixed.size());
        assert!(param.size() <= 2, "got {}", param.size());
        assert!(!param.parameters.is_empty(), "λ' must be recorded");
        assert!(!param.q1_result.set_eq(&param.q2_result));
    }

    #[test]
    fn chosen_parameters_make_the_verification_pass() {
        let db = testdata::figure1_db();
        let (cex, _) = smallest_counterexample_agg_param(
            &testdata::example6_q1(),
            &testdata::example6_q2(),
            &db,
            &original_params(),
            &AggParamOptions::default(),
        )
        .unwrap();
        // Re-evaluate explicitly with the recorded λ'.
        let r1 = ratest_ra::eval::evaluate_with_params(
            &testdata::example6_q1(),
            cex.database(),
            &cex.parameters,
        )
        .unwrap();
        let r2 = ratest_ra::eval::evaluate_with_params(
            &testdata::example6_q2(),
            cex.database(),
            &cex.parameters,
        )
        .unwrap();
        assert!(!r1.set_eq(&r2));
    }

    #[test]
    fn works_when_there_are_no_parameters_at_all() {
        // Degenerates to Agg-Basic behaviour.
        let db = testdata::figure1_db();
        let (cex, _) = smallest_counterexample_agg_param(
            &testdata::example4_q1(),
            &testdata::example4_q2(),
            &db,
            &Params::new(),
            &AggParamOptions::default(),
        )
        .unwrap();
        assert!(cex.size() <= 2);
    }
}
