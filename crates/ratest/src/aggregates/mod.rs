//! Counterexample algorithms for aggregate queries (Section 5 of the paper).
//!
//! Witnesses are too strict for aggregates — removing *any* tuple of a group
//! changes the aggregate value — so these algorithms search directly for a
//! sub-instance on which the two queries return different results:
//!
//! * [`agg_basic`] — encode the group-existence provenance of both queries
//!   for a candidate group and minimize with the solver, using a lazy
//!   arithmetic check ("do the two queries really disagree on this
//!   sub-instance?") in place of Z3's symbolic arithmetic (`Agg-Basic`),
//! * [`agg_param`] — the parameterized variant (Definition 3): constants
//!   compared against aggregate values become free parameters the search may
//!   re-choose, yielding much smaller counterexamples (`Agg-Param`),
//! * [`agg_opt`] — the heuristic of Algorithm 3: strip the aggregations,
//!   find a counterexample for the underlying SPJUD queries with `Optσ`,
//!   re-choose parameters from the candidate, and verify against the
//!   original queries, repeating with a different model if the check fails
//!   (`Agg-Opt`).

pub mod agg_basic;
pub mod agg_opt;
pub mod agg_param;

pub use agg_basic::smallest_counterexample_agg_basic;
pub use agg_opt::smallest_counterexample_agg_opt;
pub use agg_param::smallest_counterexample_agg_param;

use crate::error::Result;
use ratest_provenance::aggprov::{aggregate_provenance_instrumented, AggregateProvenance};
use ratest_ra::ast::Query;
use ratest_ra::eval::Params;
use ratest_ra::interrupt::Interrupt;
use ratest_storage::Database;
use ratest_telemetry::MetricsHandle;

/// Compute aggregate provenance for both queries of a pair. Both annotations
/// run under the caller's `interrupt` (so aggregate references honour
/// `Budget` deadlines inside the provenance loops) and fold their row/group
/// counters into `metrics`.
pub(crate) fn pair_provenance(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    interrupt: &Interrupt,
    metrics: &MetricsHandle,
) -> Result<(AggregateProvenance, AggregateProvenance)> {
    let p1 = aggregate_provenance_instrumented(q1, db, params, interrupt, metrics)?;
    let p2 = aggregate_provenance_instrumented(q2, db, params, interrupt, metrics)?;
    Ok((p1, p2))
}
