//! `Agg-Opt`: the heuristic algorithm for aggregate queries (Algorithm 3).
//!
//! Instead of encoding whole groups, look at the *inputs* of the aggregation:
//! if the group produced by `Q1` differs from `Q2`'s, then the underlying
//! SPJUD queries `Q1'` and `Q2'` (the aggregation inputs) must already differ
//! on some tuple. Run `Optσ` on `(Q1', Q2')`, re-choose any aggregate-value
//! parameters from the candidate counterexample (line 12 of Algorithm 3), and
//! verify against the original aggregate queries; if the check fails, ask the
//! solver for a different model and repeat — exactly the repeat-until loop of
//! the paper.

use super::pair_provenance;
use crate::error::{RatestError, Result};
use crate::optsigma::{smallest_witness_optsigma_accepting, OptSigmaOptions};
use crate::pipeline::Timings;
use crate::problem::{
    check_distinguishes, verify_candidate, CandidateEval, Counterexample, DeltaPair,
};
use ratest_ra::ast::Query;
use ratest_ra::eval::Params;
use ratest_storage::{Database, TupleSelection, Value};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::time::Instant;

/// Options for `Agg-Opt`.
#[derive(Debug, Clone)]
pub struct AggOptOptions {
    /// Options forwarded to the inner `Optσ` run. Note the inner run works on
    /// the *stripped* aggregation-input queries, so any delta plans in here
    /// would not apply; leave `optsigma.delta` as `None`.
    pub optsigma: OptSigmaOptions,
    /// Extra candidate parameter values tried when re-choosing λ'.
    pub extra_candidates: Vec<i64>,
    /// Delta plans for the *original* aggregate query pair, used by the final
    /// verification against the chosen λ' (delta engages when λ' = λ).
    pub delta: Option<DeltaPair>,
}

impl Default for AggOptOptions {
    fn default() -> Self {
        AggOptOptions {
            optsigma: OptSigmaOptions::default(),
            extra_candidates: vec![0, 1],
            delta: None,
        }
    }
}

/// Run the `Agg-Opt` heuristic on an aggregate query pair.
pub fn smallest_counterexample_agg_opt(
    q1: &Query,
    q2: &Query,
    db: &Database,
    original_params: &Params,
    options: &AggOptOptions,
) -> Result<(Counterexample, Timings)> {
    let mut timings = Timings::default();

    let start = Instant::now();
    let (r1, r2) = check_distinguishes(q1, q2, db, original_params)?;
    timings.raw_eval = start.elapsed();
    if r1.set_eq(&r2) {
        return Err(RatestError::QueriesAgreeOnInstance);
    }

    // Aggregate provenance gives us (a) the stripped inner queries Q1', Q2'
    // and (b) a fast way to re-check the original queries on candidates.
    let start = Instant::now();
    let (p1, p2) = pair_provenance(
        q1,
        q2,
        db,
        original_params,
        &options.optsigma.budget.interrupt(),
        &options.optsigma.metrics,
    )?;
    let inner1 = p1.inner.clone();
    let inner2 = p2.inner.clone();
    timings.provenance = start.elapsed();

    let param_names: BTreeSet<String> = q1.params().union(&q2.params()).cloned().collect();
    let chosen: RefCell<Params> = RefCell::new(original_params.clone());

    // Acceptance check = line 13 of Algorithm 3: the candidate must make the
    // *original* queries disagree under some parameter setting.
    let accept = |selection: &TupleSelection| -> bool {
        for candidate in
            candidate_params(&param_names, original_params, options, selection, &p1, &p2)
        {
            let present = |id| selection.contains(id);
            let out1 = p1.evaluate_under(&present, &candidate);
            let out2 = p2.evaluate_under(&present, &candidate);
            if let (Ok(a), Ok(b)) = (out1, out2) {
                let sa: BTreeSet<&Vec<Value>> = a.iter().collect();
                let sb: BTreeSet<&Vec<Value>> = b.iter().collect();
                if sa != sb {
                    *chosen.borrow_mut() = candidate;
                    return true;
                }
            }
        }
        false
    };

    // Run Optσ on the stripped SPJUD queries with the acceptance hook.
    let start = Instant::now();
    let (inner_cex, inner_timings) = smallest_witness_optsigma_accepting(
        &inner1,
        &inner2,
        db,
        original_params,
        &options.optsigma,
        accept,
    )
    .map_err(|e| match e {
        RatestError::QueriesAgreeOnInstance => RatestError::Unsupported(
            "the aggregation inputs agree on the instance; Agg-Opt does not apply".into(),
        ),
        other => other,
    })?;
    timings.solver = start
        .elapsed()
        .saturating_sub(inner_timings.raw_eval)
        .saturating_sub(inner_timings.provenance);
    timings.provenance += inner_timings.provenance;
    timings.raw_eval += inner_timings.raw_eval;

    // Rebuild the counterexample against the *original* aggregate queries
    // with the chosen parameter setting λ'.
    let params = chosen.into_inner();
    let ctx = CandidateEval {
        delta: options.delta.clone(),
        metrics: options.optsigma.metrics.clone(),
        interrupt: options.optsigma.budget.interrupt(),
    };
    let cex = verify_candidate(
        q1,
        q2,
        db,
        inner_cex.subinstance.selection,
        None,
        &params,
        &ctx,
    )?;
    timings.total = timings.raw_eval + timings.provenance + timings.solver;
    Ok((cex, timings))
}

/// Candidate parameter settings derived from the candidate sub-instance
/// (paper: COUNT → 1 or 0 depending on the comparison operator; SUM/AVG/
/// MIN/MAX → a value attained by the candidate), plus the original setting.
fn candidate_params(
    param_names: &BTreeSet<String>,
    original: &Params,
    options: &AggOptOptions,
    selection: &TupleSelection,
    p1: &ratest_provenance::AggregateProvenance,
    p2: &ratest_provenance::AggregateProvenance,
) -> Vec<Params> {
    if param_names.is_empty() {
        return vec![original.clone()];
    }
    let mut values: BTreeSet<i64> = options.extra_candidates.iter().copied().collect();
    for (name, v) in original.iter() {
        if param_names.contains(name) {
            if let Some(i) = v.as_int() {
                values.insert(i);
            }
        }
    }
    for p in [p1, p2] {
        for g in &p.groups {
            let live = g
                .members
                .iter()
                .filter(|m| m.provenance.eval(&|id| selection.contains(id)))
                .count() as i64;
            if live > 0 {
                values.insert(live);
            }
        }
    }
    let mut settings: Vec<Params> = vec![Params::new()];
    for name in param_names {
        let mut next = Vec::new();
        for setting in &settings {
            for v in &values {
                let mut s = setting.clone();
                s.insert(name.clone(), Value::Int(*v));
                next.push(s);
            }
        }
        settings = next;
        if settings.len() > 256 {
            settings.truncate(256);
        }
    }
    settings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::agg_basic::{smallest_counterexample_agg_basic, AggBasicOptions};
    use ratest_ra::testdata;

    #[test]
    fn example7_heuristic_finds_a_two_tuple_counterexample() {
        // The paper's Example 7: comparing the aggregation inputs directly
        // yields {Mary, her ECON registration} (or John's equivalent).
        let db = testdata::figure1_db();
        let (cex, _) = smallest_counterexample_agg_opt(
            &testdata::example4_q1(),
            &testdata::example4_q2(),
            &db,
            &Params::new(),
            &AggOptOptions::default(),
        )
        .unwrap();
        assert_eq!(cex.size(), 2);
        assert!(!cex.q1_result.set_eq(&cex.q2_result));
    }

    #[test]
    fn heuristic_is_no_worse_than_agg_basic_on_example4() {
        let db = testdata::figure1_db();
        let (basic, _) = smallest_counterexample_agg_basic(
            &testdata::example4_q1(),
            &testdata::example4_q2(),
            &db,
            &Params::new(),
            &AggBasicOptions::default(),
        )
        .unwrap();
        let (opt, _) = smallest_counterexample_agg_opt(
            &testdata::example4_q1(),
            &testdata::example4_q2(),
            &db,
            &Params::new(),
            &AggOptOptions::default(),
        )
        .unwrap();
        assert!(opt.size() <= basic.size() + 1);
    }

    #[test]
    fn parameterized_queries_get_a_new_lambda() {
        let db = testdata::figure1_db();
        let mut original = Params::new();
        original.insert("numCS".into(), Value::Int(3));
        let (cex, _) = smallest_counterexample_agg_opt(
            &testdata::example6_q1(),
            &testdata::example6_q2(),
            &db,
            &original,
            &AggOptOptions::default(),
        )
        .unwrap();
        assert!(cex.size() <= 4);
        // Verification with the recorded parameters must hold.
        let r1 = ratest_ra::eval::evaluate_with_params(
            &testdata::example6_q1(),
            cex.database(),
            &cex.parameters,
        )
        .unwrap();
        let r2 = ratest_ra::eval::evaluate_with_params(
            &testdata::example6_q2(),
            cex.database(),
            &cex.parameters,
        )
        .unwrap();
        assert!(!r1.set_eq(&r2));
    }

    #[test]
    fn identical_queries_are_rejected() {
        let db = testdata::figure1_db();
        let q = testdata::example5_q1();
        assert!(smallest_counterexample_agg_opt(
            &q,
            &q,
            &db,
            &Params::new(),
            &AggOptOptions::default()
        )
        .is_err());
    }
}
