//! The session-oriented RATest API: durable state, unified budgets, typed
//! progress events.
//!
//! The paper's RATest deployment ran as a long-lived service that students
//! queried all semester; the one-shot free functions
//! ([`crate::pipeline::explain`] and friends) re-evaluate and re-annotate
//! the reference query on every call and spread their resource limits over
//! an ad-hoc mix of per-algorithm timeouts and [`CancelFlag`]s. A
//! [`Session`] replaces that surface:
//!
//! * it **owns the database** and a cache of [`PreparedReference`]s keyed by
//!   canonical fingerprint, so preparation cost is paid once per reference
//!   per session, however many requests follow;
//! * a unified [`Budget`] — wall-clock deadline + deterministic step quota +
//!   cooperative cancellation — is threaded from the session through every
//!   algorithm loop *and into the evaluator/annotator inner row loops* (via
//!   [`ratest_ra::interrupt`]), so a single flooding evaluation respects
//!   the deadline;
//! * an [`EventSink`] receives typed progress events ([`ExplainEvent`]):
//!   phase transitions, per-candidate progress, solver statistics and the
//!   final verdict — the feed a web UI or the `grade serve` daemon streams
//!   to clients.
//!
//! ```
//! use ratest_core::session::Session;
//! use ratest_ra::testdata;
//!
//! let session = Session::builder(testdata::figure1_db()).build();
//! let reference = session.prepare(&testdata::example1_q1()).unwrap();
//! let outcome = session.explain(reference, &testdata::example1_q2()).unwrap();
//! assert_eq!(outcome.counterexample.unwrap().size(), 3);
//! ```

use crate::error::{RatestError, Result};
use crate::pipeline::{
    explain_prepared_impl, Algorithm, CancelFlag, ExplainOutcome, PreparedReference, RatestOptions,
    SolverStrategy,
};
use ratest_ra::ast::Query;
use ratest_ra::classify::QueryClass;
use ratest_ra::eval::Params;
use ratest_ra::interrupt::{Interrupt, InterruptHook, Interrupted};
use ratest_storage::{Database, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------------

/// A deterministic step-quota counter shared by every clone of a [`Budget`].
#[derive(Debug)]
struct StepQuota {
    used: AtomicU64,
    limit: u64,
}

/// The unified resource budget of a run: cooperative cancellation, an
/// optional wall-clock deadline, and an optional deterministic step quota.
///
/// One `Budget` replaces the scattered timeout/[`CancelFlag`] plumbing the
/// pre-session API grew: every algorithm loop polls [`Budget::check`] at its
/// boundaries, and [`Budget::interrupt`] hands the same state to the
/// evaluator/annotator inner loops, so *all* layers observe one limit.
///
/// Clones share state: the cancel flag and the step counter are behind
/// [`Arc`]s, and the deadline is an absolute [`Instant`] fixed when the
/// budget is built. The default budget is unlimited.
///
/// *Steps* are budget polls — one per candidate tuple / candidate group /
/// solve attempt at the algorithm layer, plus one per
/// [`ratest_ra::interrupt::Pacer::STRIDE`] rows inside evaluation. A quota
/// is therefore a clock-free, platform-stable work bound, which is what the
/// deterministic tests and fairness throttling want; wall-clock limits
/// should use a deadline instead.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    cancel: CancelFlag,
    deadline: Option<Instant>,
    steps: Option<Arc<StepQuota>>,
}

impl Budget {
    /// An unlimited budget (no deadline, no quota, not cancelled).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Limit the run to `timeout` of wall-clock time from *now*.
    ///
    /// A budget is not only for search work: the serve daemon uses
    /// `Budget::unlimited().with_deadline(t)` as an **admission timer** —
    /// polling it while waiting for a free worker slot, and answering with a
    /// rejected-overloaded verdict once it expires, so a flooded daemon
    /// degrades to fast rejections instead of unbounded queueing. A zero
    /// `timeout` expires on the first poll ([`Budget::poll`] treats
    /// "now == deadline" as exceeded), which such callers rely on.
    pub fn with_deadline(mut self, timeout: Duration) -> Budget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Limit the run to an absolute deadline.
    pub fn with_deadline_at(mut self, deadline: Instant) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Limit the run to `limit` budget polls (see the type docs for what a
    /// step is).
    pub fn with_step_quota(mut self, limit: u64) -> Budget {
        self.steps = Some(Arc::new(StepQuota {
            used: AtomicU64::new(0),
            limit,
        }));
        self
    }

    /// Attach an externally owned cancel flag (e.g. the grading engine's
    /// per-job flag) instead of this budget's fresh one.
    pub fn with_cancel(mut self, cancel: CancelFlag) -> Budget {
        self.cancel = cancel;
        self
    }

    /// The budget's cancel flag; raise it (from any clone) to stop the run.
    pub fn cancel_flag(&self) -> &CancelFlag {
        &self.cancel
    }

    /// Request cancellation — shorthand for `cancel_flag().cancel()`.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The absolute deadline, when one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether any limit (deadline, quota, or a raised flag) is attached —
    /// `false` exactly for (un-cancelled) [`Budget::unlimited`].
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.steps.is_some() || self.cancel.is_cancelled()
    }

    /// Poll the budget without consuming a step unless a quota is set.
    /// Returns the reason the run should stop, if any. Precedence:
    /// cancellation, then deadline, then quota.
    pub fn poll(&self) -> Option<Interrupted> {
        if self.cancel.is_cancelled() {
            return Some(Interrupted::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Interrupted::DeadlineExceeded);
            }
        }
        if let Some(quota) = &self.steps {
            if quota.used.fetch_add(1, Ordering::Relaxed) >= quota.limit {
                return Some(Interrupted::StepQuotaExhausted);
            }
        }
        None
    }

    /// Poll and convert to the typed error the pipeline propagates — the
    /// one-liner every algorithm loop calls.
    pub fn check(&self) -> Result<()> {
        match self.poll() {
            None => Ok(()),
            Some(reason) => Err(RatestError::from_interrupted(reason)),
        }
    }

    /// This budget as an evaluator-layer interrupt. Always hooked — even a
    /// currently-unlimited budget's cancel flag can be raised later by
    /// another clone, and the hook costs one atomic load per
    /// [`ratest_ra::interrupt::Pacer::STRIDE`] rows.
    pub fn interrupt(&self) -> Interrupt {
        Interrupt::hooked(Arc::new(self.clone()))
    }
}

impl InterruptHook for Budget {
    fn interrupted(&self) -> Option<Interrupted> {
        self.poll()
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// The pipeline phases announced by [`ExplainEvent::PhaseStarted`], mirroring
/// the timing components of [`crate::pipeline::Timings`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Evaluating the raw queries.
    RawEval,
    /// Computing provenance annotations.
    Provenance,
    /// Constraint solving over candidate witnesses.
    Solve,
}

impl Phase {
    /// Stable lowercase name used by serializers (`raw-eval`, `provenance`,
    /// `solve`).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::RawEval => "raw-eval",
            Phase::Provenance => "provenance",
            Phase::Solve => "solve",
        }
    }
}

/// A typed progress event emitted while explaining one query pair.
///
/// Events carry only **deterministic** facts (no wall-clock readings): a
/// scripted conversation replayed against `grade serve` produces the same
/// event stream byte for byte, which the protocol goldens pin.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplainEvent {
    /// A pipeline phase began.
    PhaseStarted {
        /// Which phase.
        phase: Phase,
    },
    /// One candidate (differing output tuple, or candidate group for the
    /// aggregate algorithms) was processed.
    CandidateChecked {
        /// 0-based index of the candidate in the scan order.
        index: usize,
        /// Size of the best counterexample found so far, if any.
        best_size: Option<usize>,
    },
    /// A solver invocation finished.
    SolverStats {
        /// Number of tuple variables in the objective.
        variables: usize,
        /// Number of true variables in the returned model (`None` when the
        /// instance was unsatisfiable).
        solution_size: Option<usize>,
    },
    /// The run finished with a verdict.
    Verdict {
        /// Whether the queries agree on the instance.
        agrees: bool,
        /// Size of the counterexample when they disagree.
        counterexample_size: Option<usize>,
        /// The query class the pair was classified into.
        class: QueryClass,
        /// Which algorithm produced the outcome.
        algorithm: Algorithm,
    },
    /// Repair started: candidate edits were enumerated and ranked.
    RepairStarted {
        /// Number of candidate edits in the ranked queue.
        candidates: usize,
    },
    /// One repair candidate was validated.
    RepairCandidateChecked {
        /// 0-based index of the candidate in the ranked order.
        index: usize,
        /// Whether the candidate was confirmed as a suggestion.
        confirmed: bool,
    },
    /// Repair finished.
    RepairFinished {
        /// Number of confirmed suggestions.
        suggestions: usize,
        /// Number of candidates validated before stopping.
        tried: usize,
    },
}

/// A consumer of [`ExplainEvent`]s. Implementations must be cheap and
/// non-blocking relative to the pipeline (events are emitted from the hot
/// loops) and are called from whichever thread runs the explanation.
pub trait EventSink: Send + Sync {
    /// Receive one event.
    fn emit(&self, event: &ExplainEvent);
}

/// A shareable, possibly-absent event sink; the `None` default makes event
/// emission a single branch for callers that do not listen.
#[derive(Clone, Default)]
pub struct EventHandle(Option<Arc<dyn EventSink>>);

impl EventHandle {
    /// A handle that drops every event.
    pub fn none() -> EventHandle {
        EventHandle(None)
    }

    /// Wrap a sink.
    pub fn new(sink: Arc<dyn EventSink>) -> EventHandle {
        EventHandle(Some(sink))
    }

    /// Whether a sink is attached.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Emit an event (no-op without a sink).
    pub fn emit(&self, event: ExplainEvent) {
        if let Some(sink) = &self.0 {
            sink.emit(&event);
        }
    }
}

impl std::fmt::Debug for EventHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "EventHandle(active)"
        } else {
            "EventHandle(none)"
        })
    }
}

/// An [`EventSink`] that records every event — the test/debug consumer.
#[derive(Debug, Default)]
pub struct CollectingSink(Mutex<Vec<ExplainEvent>>);

impl CollectingSink {
    /// A fresh, empty sink (wrap in an [`Arc`] to attach it).
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Drain the recorded events.
    pub fn take(&self) -> Vec<ExplainEvent> {
        std::mem::take(&mut self.0.lock().expect("collecting sink poisoned"))
    }
}

impl EventSink for CollectingSink {
    fn emit(&self, event: &ExplainEvent) {
        if let Ok(mut events) = self.0.lock() {
            events.push(event.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// A handle to a reference query prepared inside a [`Session`]. Copyable and
/// meaningful only for the session that returned it; the value is the
/// reference's canonical fingerprint, so preparing an
/// equivalent-after-normalization query returns the *same* handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReferenceHandle(u64);

impl ReferenceHandle {
    /// The canonical fingerprint of the prepared reference.
    pub fn fingerprint(&self) -> u64 {
        self.0
    }
}

/// Builds a [`Session`]. All knobs default to the values of
/// [`RatestOptions::default`] plus an unlimited [`Budget`] and no event sink.
#[derive(Debug)]
pub struct SessionBuilder {
    db: Database,
    options: RatestOptions,
}

impl SessionBuilder {
    /// Start building a session over the given hidden instance.
    pub fn new(db: Database) -> SessionBuilder {
        SessionBuilder {
            db,
            options: RatestOptions::default(),
        }
    }

    /// Force a top-level algorithm (default: [`Algorithm::Auto`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> SessionBuilder {
        self.options.algorithm = algorithm;
        self
    }

    /// Solver strategy for the SPJUD algorithms.
    pub fn strategy(mut self, strategy: SolverStrategy) -> SessionBuilder {
        self.options.strategy = strategy;
        self
    }

    /// Whether `Optσ` pushes the tuple-equality selection down.
    pub fn selection_pushdown(mut self, on: bool) -> SessionBuilder {
        self.options.selection_pushdown = on;
        self
    }

    /// Replace the whole parameter binding λ.
    pub fn params(mut self, params: Params) -> SessionBuilder {
        self.options.parameters = params;
        self
    }

    /// Bind a single parameter.
    pub fn param(mut self, name: impl Into<String>, value: impl Into<Value>) -> SessionBuilder {
        self.options.parameters.insert(name.into(), value.into());
        self
    }

    /// The session-wide default budget (per-request overrides go through
    /// [`Session::explain_with_budget`]).
    pub fn budget(mut self, budget: Budget) -> SessionBuilder {
        self.options.budget = budget;
        self
    }

    /// Whether preparing a reference also compiles delta plans so candidate
    /// sub-instances are answered incrementally (default: on). Turning this
    /// off forces every candidate verification back onto scratch
    /// re-evaluation — the bench A/B comparison leg.
    pub fn delta_eval(mut self, on: bool) -> SessionBuilder {
        self.options.delta_eval = on;
        self
    }

    /// Attach an event sink.
    pub fn event_sink(mut self, sink: Arc<dyn EventSink>) -> SessionBuilder {
        self.options.events = EventHandle::new(sink);
        self
    }

    /// Attach a metrics registry: every explain run on the session folds its
    /// evaluator, provenance and solver counters into it.
    pub fn metrics(mut self, registry: Arc<ratest_telemetry::MetricsRegistry>) -> SessionBuilder {
        self.options.metrics = ratest_telemetry::MetricsHandle::new(registry);
        self
    }

    /// Start from fully spelled-out options (the engine configuration path).
    pub fn options(mut self, options: RatestOptions) -> SessionBuilder {
        self.options = options;
        self
    }

    /// Finish: the session takes ownership of the database.
    pub fn build(self) -> Session {
        Session {
            db: Arc::new(self.db),
            options: self.options,
            references: RwLock::new(HashMap::new()),
        }
    }
}

/// A durable explanation session: one hidden database instance, a cache of
/// prepared references, one [`Budget`]/[`EventSink`] configuration. Shared
/// freely across threads (`&Session` methods only).
///
/// See the [module docs](self) for the full design rationale.
#[derive(Debug)]
pub struct Session {
    db: Arc<Database>,
    options: RatestOptions,
    references: RwLock<HashMap<u64, Arc<PreparedReference>>>,
}

impl Session {
    /// Start building a session over `db`.
    pub fn builder(db: Database) -> SessionBuilder {
        SessionBuilder::new(db)
    }

    /// The hidden instance this session explains against.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The session's base options (budget and event sink included).
    pub fn options(&self) -> &RatestOptions {
        &self.options
    }

    /// The session-wide default budget.
    pub fn budget(&self) -> &Budget {
        &self.options.budget
    }

    /// Evaluate + annotate a reference query once, caching the prepared
    /// state under its canonical fingerprint. Preparing an equivalent query
    /// again is a cache hit and returns the same handle.
    pub fn prepare(&self, reference: &Query) -> Result<ReferenceHandle> {
        let fingerprint = ratest_ra::canonical::fingerprint(reference);
        if let Ok(refs) = self.references.read() {
            if refs.contains_key(&fingerprint) {
                return Ok(ReferenceHandle(fingerprint));
            }
        }
        let prepared = Arc::new(PreparedReference::prepare_with_delta(
            reference,
            &self.db,
            &self.options.parameters,
            &self.options.budget,
            &self.options.metrics,
            self.options.delta_eval,
        )?);
        self.references
            .write()
            .expect("session reference cache poisoned")
            .entry(fingerprint)
            .or_insert(prepared);
        Ok(ReferenceHandle(fingerprint))
    }

    /// The prepared reference behind a handle, if this session prepared it.
    pub fn prepared(&self, handle: ReferenceHandle) -> Option<Arc<PreparedReference>> {
        self.references.read().ok()?.get(&handle.0).cloned()
    }

    /// Number of distinct references prepared so far.
    pub fn prepared_references(&self) -> usize {
        self.references.read().map(|r| r.len()).unwrap_or(0)
    }

    /// Explain one submission against a prepared reference under the
    /// session budget.
    pub fn explain(&self, reference: ReferenceHandle, query: &Query) -> Result<ExplainOutcome> {
        self.explain_with_budget(reference, query, &self.options.budget)
    }

    /// Explain one submission under a per-request budget override (the
    /// grading engine's per-job deadline path). The session's event sink
    /// still applies.
    pub fn explain_with_budget(
        &self,
        reference: ReferenceHandle,
        query: &Query,
        budget: &Budget,
    ) -> Result<ExplainOutcome> {
        self.explain_with(reference, query, budget, self.options.events.clone())
    }

    /// Explain one submission under per-request budget *and* event-sink
    /// overrides. A per-request sink is how a streaming server attributes
    /// events to the right request even when an earlier job's thread is
    /// still unwinding: each request gets its own sink object, and a stale
    /// thread keeps emitting into *its* (retired) sink rather than into
    /// whatever request is current.
    pub fn explain_with(
        &self,
        reference: ReferenceHandle,
        query: &Query,
        budget: &Budget,
        events: EventHandle,
    ) -> Result<ExplainOutcome> {
        self.explain_with_reuse(reference, query, budget, events, None)
    }

    /// [`Session::explain_with`] plus a caller-supplied warm-solver handle
    /// shared across several explains — the repair engine passes one handle
    /// per repair request so every candidate mutation's validation search
    /// reuses the same incremental solver. With `None` the request joins the
    /// prepared reference's cross-request pool instead (counted by
    /// `solver.pool_cross_request_reuses`); callers whose requests race on
    /// threads should pass their own fresh handle, since a pool shared
    /// across threads makes clause retention scheduling-dependent.
    pub fn explain_with_reuse(
        &self,
        reference: ReferenceHandle,
        query: &Query,
        budget: &Budget,
        events: EventHandle,
        solver_reuse: Option<ratest_solver::SolverReuse>,
    ) -> Result<ExplainOutcome> {
        let prepared = self
            .prepared(reference)
            .ok_or_else(|| RatestError::Unsupported("unknown reference handle".into()))?;
        let mut options = self.options.clone();
        options.budget = budget.clone();
        options.events = events;
        options.solver_reuse = match solver_reuse {
            some @ Some(_) => some,
            // No caller-supplied handle: share the prepared reference's warm
            // pool, so every request against the same reference keeps the
            // learned clauses of its cohort's common encoding.
            None => {
                let prior_uses = prepared.note_pool_use();
                if prior_uses > 0 {
                    options
                        .metrics
                        .counter_inc("solver.pool_cross_request_reuses");
                }
                Some(prepared.solver_pool().clone())
            }
        };
        explain_prepared_impl(&prepared, query, &self.db, &options)
    }

    /// Evaluate the prepared reference on a candidate sub-instance through
    /// its delta plan. Returns `None` when the reference has no plan (delta
    /// disabled or the query is unsupported) or when the delta evaluation
    /// cannot answer (a scratch fallback is then the caller's job).
    pub fn reference_delta_result(
        &self,
        handle: ReferenceHandle,
        selection: &ratest_storage::TupleSelection,
        params: &Params,
    ) -> Option<ratest_ra::eval::ResultSet> {
        let prepared = self.prepared(handle)?;
        let plan = prepared.delta_plan()?;
        if !plan.params_match(params) {
            return None;
        }
        match plan.eval(selection, &self.options.budget.interrupt()) {
            Ok((result, work)) => {
                self.options
                    .metrics
                    .counter_inc("delta.candidates_incremental");
                self.options.metrics.counter_add("delta.rows_touched", work);
                Some(result)
            }
            Err(_) => {
                self.options.metrics.counter_inc("delta.fallbacks_scratch");
                None
            }
        }
    }

    /// Annotate the prepared reference on a candidate sub-instance through
    /// its delta plan — the provenance analogue of
    /// [`Session::reference_delta_result`]. `None` when no plan exists, the
    /// plan does not support annotation (aggregates), or the delta pass
    /// fails.
    pub fn reference_delta_annotation(
        &self,
        handle: ReferenceHandle,
        selection: &ratest_storage::TupleSelection,
        params: &Params,
    ) -> Option<ratest_provenance::AnnotatedResult> {
        let prepared = self.prepared(handle)?;
        let plan = prepared.delta_plan()?;
        if !plan.params_match(params) || !plan.supports_annotation() {
            return None;
        }
        match plan.annotate(selection, &self.options.budget.interrupt()) {
            Ok((annotated, work)) => {
                self.options
                    .metrics
                    .counter_inc("delta.candidates_incremental");
                self.options.metrics.counter_add("delta.rows_touched", work);
                Some(annotated)
            }
            Err(_) => {
                self.options.metrics.counter_inc("delta.fallbacks_scratch");
                None
            }
        }
    }

    /// Explain an ad-hoc query pair. The reference is prepared through the
    /// session cache — so the shared-annotation path applies and the
    /// prepared state is *retained* for future calls, like any other
    /// [`Session::prepare`].
    pub fn explain_pair(&self, q1: &Query, q2: &Query) -> Result<ExplainOutcome> {
        let handle = self.prepare(q1)?;
        self.explain(handle, q2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::testdata;

    #[test]
    fn sessions_prepare_once_and_explain_many() {
        let session = Session::builder(testdata::figure1_db()).build();
        let reference = session.prepare(&testdata::example1_q1()).unwrap();
        assert_eq!(session.prepared_references(), 1);

        // Re-preparing the same (even re-built) reference is a cache hit.
        let again = session.prepare(&testdata::example1_q1()).unwrap();
        assert_eq!(reference, again);
        assert_eq!(session.prepared_references(), 1);

        let outcome = session
            .explain(reference, &testdata::example1_q2())
            .unwrap();
        assert_eq!(outcome.counterexample.unwrap().size(), 3);

        // The correct query agrees.
        let outcome = session
            .explain(reference, &testdata::example1_q1())
            .unwrap();
        assert!(outcome.counterexample.is_none());
    }

    #[test]
    fn session_outcomes_match_the_one_shot_pipeline() {
        let db = testdata::figure1_db();
        let session = Session::builder(db.clone()).build();
        let outcome = session
            .explain_pair(&testdata::example1_q1(), &testdata::example1_q2())
            .unwrap();
        #[allow(deprecated)]
        let plain = crate::pipeline::explain(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &RatestOptions::default(),
        )
        .unwrap();
        assert_eq!(
            outcome.counterexample.unwrap().size(),
            plain.counterexample.unwrap().size()
        );
        assert_eq!(outcome.class, plain.class);
    }

    #[test]
    fn budgets_cancel_deadline_and_quota() {
        // Cancellation.
        let budget = Budget::unlimited();
        assert!(budget.check().is_ok());
        budget.cancel();
        assert_eq!(budget.check(), Err(RatestError::Cancelled));

        // An expired deadline.
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(budget.check(), Err(RatestError::DeadlineExceeded));

        // A step quota: the N+1-th poll fails, shared across clones.
        let budget = Budget::unlimited().with_step_quota(2);
        let clone = budget.clone();
        assert!(budget.check().is_ok());
        assert!(clone.check().is_ok());
        assert_eq!(budget.check(), Err(RatestError::StepQuotaExhausted));
    }

    #[test]
    fn a_session_budget_interrupts_the_whole_pipeline() {
        let session = Session::builder(testdata::figure1_db())
            .budget(Budget::unlimited().with_step_quota(0))
            .build();
        let err = session
            .explain_pair(&testdata::example1_q1(), &testdata::example1_q2())
            .expect_err("a zero quota stops before any work");
        assert_eq!(err, RatestError::StepQuotaExhausted);
    }

    #[test]
    fn events_stream_phases_candidates_solver_stats_and_verdict() {
        let sink = Arc::new(CollectingSink::new());
        let session = Session::builder(testdata::figure1_db())
            .event_sink(sink.clone())
            .build();
        let reference = session.prepare(&testdata::example1_q1()).unwrap();
        session
            .explain(reference, &testdata::example1_q2())
            .unwrap();
        let events = sink.take();
        assert!(
            events.iter().any(|e| matches!(
                e,
                ExplainEvent::PhaseStarted {
                    phase: Phase::RawEval
                }
            )),
            "{events:?}"
        );
        assert!(events.iter().any(|e| matches!(
            e,
            ExplainEvent::PhaseStarted {
                phase: Phase::Solve
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, ExplainEvent::CandidateChecked { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, ExplainEvent::SolverStats { .. })));
        match events.last() {
            Some(ExplainEvent::Verdict {
                agrees: false,
                counterexample_size: Some(3),
                ..
            }) => {}
            other => panic!("expected a final wrong-verdict event, got {other:?}"),
        }
    }

    #[test]
    fn sessions_are_shareable_across_threads() {
        let session = Arc::new(Session::builder(testdata::figure1_db()).build());
        let reference = session.prepare(&testdata::example1_q1()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = session.clone();
                std::thread::spawn(move || {
                    session
                        .explain(reference, &testdata::example1_q2())
                        .unwrap()
                        .counterexample
                        .unwrap()
                        .size()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
    }

    #[test]
    fn unknown_handles_are_typed_errors() {
        let session = Session::builder(testdata::figure1_db()).build();
        let bogus = ReferenceHandle(0xdead_beef);
        assert!(session.explain(bogus, &testdata::example1_q2()).is_err());
        assert!(session.prepared(bogus).is_none());
    }

    #[test]
    fn an_expired_deadline_stops_a_group_by_reference() {
        // Regression for the aggregate-class-parity gap: aggregate provenance
        // must honour the budget deadline inside its own loops, so preparing
        // or explaining a GROUP BY reference under an already-expired budget
        // fails with DeadlineExceeded instead of running to completion.
        let session = Session::builder(testdata::figure1_db())
            .budget(Budget::unlimited().with_deadline(Duration::ZERO))
            .build();
        let err = session
            .explain_pair(&testdata::example5_q1(), &testdata::example5_q2())
            .expect_err("the deadline expired before the run started");
        assert_eq!(err, RatestError::DeadlineExceeded);
    }

    #[test]
    fn session_metrics_capture_the_whole_stack() {
        let registry = Arc::new(ratest_telemetry::MetricsRegistry::new());
        let session = Session::builder(testdata::figure1_db())
            .metrics(registry.clone())
            .build();
        let reference = session.prepare(&testdata::example1_q1()).unwrap();
        session
            .explain(reference, &testdata::example1_q2())
            .unwrap();

        assert_eq!(registry.counter("explain.runs"), 1);
        assert_eq!(registry.counter("explain.counterexamples"), 1);
        assert_eq!(registry.counter("explain.references_prepared"), 1);
        assert_eq!(registry.counter("explain.annotation_reuse_hits"), 1);
        assert!(registry.counter("ra.eval.rows_scanned") > 0);
        assert!(registry.counter("provenance.annotate.rows") > 0);
        assert!(registry.counter("solver.calls") > 0);
        assert!(registry.counter("solver.decisions") + registry.counter("solver.propagations") > 0);
        // Volatile durations live apart from the deterministic counters.
        let snap = registry.snapshot();
        assert!(snap.durations_ms.contains_key("explain.total_ms"));
        assert!(!snap.to_json(false).contains("volatile"));
    }

    #[test]
    fn aggregate_explains_record_group_counters() {
        let registry = Arc::new(ratest_telemetry::MetricsRegistry::new());
        let session = Session::builder(testdata::figure1_db())
            .metrics(registry.clone())
            .build();
        session
            .explain_pair(&testdata::example5_q1(), &testdata::example5_q2())
            .unwrap();
        assert!(registry.counter("provenance.aggprov.calls") >= 2);
        assert!(registry.counter("provenance.aggprov.groups") > 0);
    }
}
