//! Bridging the typed [`ExplainEvent`] stream into hierarchical trace spans.
//!
//! [`TracingSink`] is an [`EventSink`] that folds the flat event stream into
//! the span taxonomy `explain > phase > candidate > solver_call`: each
//! explain run opens a root `explain` span, every [`ExplainEvent::PhaseStarted`]
//! opens a `phase` child, candidates nest under their phase, and each solver
//! invocation is a leaf `solver_call`. The final
//! [`ExplainEvent::Verdict`] closes the tree, stamping the verdict onto the
//! root, so several runs through one sink produce a forest of independent
//! trees.
//!
//! Like the events themselves, the spans carry only deterministic facts — no
//! timestamps — so an NDJSON export ([`TracingSink::to_ndjson`]) is
//! byte-identical across identical runs.

use crate::session::{EventSink, ExplainEvent};
use ratest_telemetry::span::{SpanCollector, SpanRecord};

/// Span nesting depths of the explain taxonomy.
const DEPTH_ROOT: usize = 1;
const DEPTH_PHASE: usize = 2;

/// An [`EventSink`] recording the explain-span tree.
#[derive(Debug, Default)]
pub struct TracingSink {
    collector: SpanCollector,
}

impl TracingSink {
    /// A fresh sink with no recorded spans.
    pub fn new() -> TracingSink {
        TracingSink::default()
    }

    fn ensure_root(&self) {
        if self.collector.depth() == 0 {
            self.collector.open("explain", "");
        }
    }

    /// Close any open spans and return the recorded forest.
    pub fn finish(&self) -> Vec<SpanRecord> {
        self.collector.finish()
    }

    /// Export every recorded span as NDJSON (one object per line, open
    /// order, no timestamps).
    pub fn to_ndjson(&self) -> String {
        self.collector.to_ndjson()
    }
}

impl EventSink for TracingSink {
    fn emit(&self, event: &ExplainEvent) {
        match event {
            ExplainEvent::PhaseStarted { phase } => {
                self.ensure_root();
                self.collector.close_to_depth(DEPTH_ROOT);
                self.collector.open("phase", phase.name());
            }
            ExplainEvent::CandidateChecked { index, best_size } => {
                self.ensure_root();
                // Candidates nest directly under the current phase; a stray
                // candidate without a phase hangs off the root.
                if self.collector.depth() > DEPTH_PHASE {
                    self.collector.close_to_depth(DEPTH_PHASE);
                }
                self.collector.open("candidate", &index.to_string());
                self.collector.set_attr("index", *index as i64);
                if let Some(best) = best_size {
                    self.collector.set_attr("best_size", *best as i64);
                }
            }
            ExplainEvent::SolverStats {
                variables,
                solution_size,
            } => {
                self.ensure_root();
                self.collector.open("solver_call", "");
                self.collector.set_attr("variables", *variables as i64);
                self.collector.set_attr(
                    "solution_size",
                    solution_size.map(|s| s as i64).unwrap_or(-1),
                );
                self.collector.close();
            }
            ExplainEvent::Verdict {
                agrees,
                counterexample_size,
                ..
            } => {
                self.ensure_root();
                self.collector.close_to_depth(DEPTH_ROOT);
                self.collector.set_attr("agrees", i64::from(*agrees));
                if let Some(size) = counterexample_size {
                    self.collector.set_attr("counterexample_size", *size as i64);
                }
                self.collector.close();
            }
            ExplainEvent::RepairStarted { candidates } => {
                self.ensure_root();
                self.collector.close_to_depth(DEPTH_ROOT);
                self.collector.open("phase", "repair");
                self.collector.set_attr("candidates", *candidates as i64);
            }
            ExplainEvent::RepairCandidateChecked { index, confirmed } => {
                self.ensure_root();
                if self.collector.depth() > DEPTH_PHASE {
                    self.collector.close_to_depth(DEPTH_PHASE);
                }
                self.collector.open("candidate", &index.to_string());
                self.collector.set_attr("index", *index as i64);
                self.collector.set_attr("confirmed", i64::from(*confirmed));
                self.collector.close();
            }
            ExplainEvent::RepairFinished { suggestions, tried } => {
                self.ensure_root();
                self.collector.close_to_depth(DEPTH_ROOT);
                self.collector
                    .set_attr("repair_suggestions", *suggestions as i64);
                self.collector.set_attr("repair_tried", *tried as i64);
                self.collector.close();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use ratest_ra::testdata;
    use std::sync::Arc;

    #[test]
    fn an_explain_run_produces_the_span_taxonomy() {
        let sink = Arc::new(TracingSink::new());
        let session = Session::builder(testdata::figure1_db())
            .event_sink(sink.clone())
            .build();
        session
            .explain_pair(&testdata::example1_q1(), &testdata::example1_q2())
            .unwrap();

        let spans = sink.finish();
        assert!(!spans.is_empty());
        // Exactly one root, carrying the verdict.
        let roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "explain");
        assert!(roots[0].attrs.iter().any(|(k, _)| k == "agrees"));
        assert!(roots[0]
            .attrs
            .iter()
            .any(|(k, v)| k == "counterexample_size" && *v == 3));
        // Every taxonomy level appears, correctly nested.
        for name in ["phase", "candidate", "solver_call"] {
            assert!(spans.iter().any(|s| s.name == name), "missing {name}");
        }
        for span in &spans {
            match span.name.as_str() {
                "explain" => assert_eq!(span.depth, 0),
                "phase" => assert_eq!(span.depth, 1),
                "candidate" => assert_eq!(span.depth, 2),
                "solver_call" => assert!(span.depth >= 1),
                other => panic!("unexpected span kind {other}"),
            }
        }
    }

    #[test]
    fn two_identical_runs_export_identical_ndjson() {
        let run = || {
            let sink = Arc::new(TracingSink::new());
            let session = Session::builder(testdata::figure1_db())
                .event_sink(sink.clone())
                .build();
            session
                .explain_pair(&testdata::example1_q1(), &testdata::example1_q2())
                .unwrap();
            sink.to_ndjson()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.lines().all(|l| l.starts_with("{\"span\":\"")));
    }

    #[test]
    fn consecutive_runs_form_a_forest() {
        let sink = Arc::new(TracingSink::new());
        let session = Session::builder(testdata::figure1_db())
            .event_sink(sink.clone())
            .build();
        session
            .explain_pair(&testdata::example1_q1(), &testdata::example1_q2())
            .unwrap();
        session
            .explain_pair(&testdata::example1_q1(), &testdata::example1_q2())
            .unwrap();
        let spans = sink.finish();
        assert_eq!(spans.iter().filter(|s| s.parent.is_none()).count(), 2);
    }
}
