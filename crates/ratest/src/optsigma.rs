//! Algorithm 2 (`Optσ`): the optimized smallest-witness algorithm.
//!
//! 1. pick **one** tuple `t` in the symmetric difference of the two results,
//! 2. add a selection `σ_{A1=t.A1 ∧ …}` on top of `Q1 − Q2` and push it down
//!    (the paper relies on the DBMS optimizer for this; here the rewrite is
//!    explicit — see `ratest_ra::rewrite`),
//! 3. compute how-provenance for that single tuple,
//! 4. hand the provenance plus foreign-key implications to the optimizing
//!    min-ones solver,
//! 5. the model's true variables are the witness; materialize and verify it.

use crate::encode::{encode_provenance, foreign_key_clauses, VarMap};
use crate::error::{RatestError, Result};
use crate::pipeline::{SolverStrategy, Timings};
use crate::problem::{
    difference_query, differing_tuples, verify_candidate, CandidateEval, Counterexample, DeltaPair,
    Witness,
};
use crate::session::{Budget, EventHandle, ExplainEvent, Phase};
use ratest_provenance::annotate::annotate_instrumented;
use ratest_ra::ast::Query;
use ratest_ra::builder::QueryBuilder;
use ratest_ra::eval::Params;
use ratest_ra::expr::Expr;
use ratest_ra::rewrite::push_selections_down;
use ratest_ra::typecheck::output_schema;
use ratest_solver::enumerate::enumerate_best;
use ratest_solver::formula::Formula;
use ratest_solver::incremental::SolverReuse;
use ratest_solver::minones::{minimize_ones_with_theory_into, MinOnesOptions};
use ratest_solver::SolverStats;
use ratest_storage::{Database, TupleSelection, Value};
use ratest_telemetry::MetricsHandle;
use std::time::Instant;

/// Options for the `Optσ` algorithm.
#[derive(Debug, Clone)]
pub struct OptSigmaOptions {
    /// Whether to push the tuple-equality selection down the difference query
    /// before computing provenance (`prov-sp` vs `prov-all` in Figure 4).
    pub selection_pushdown: bool,
    /// Which solver strategy to use for the min-ones step.
    pub strategy: SolverStrategy,
    /// Unified resource budget, polled once per witness direction / solve
    /// and inside the provenance row loops.
    pub budget: Budget,
    /// Progress events (per-phase, per-solve).
    pub events: EventHandle,
    /// Metrics sink: solver statistics are folded in here; the default
    /// handle records nothing.
    pub metrics: MetricsHandle,
    /// Warm solver shared across the two direction probes of this run (and,
    /// for the aggregate algorithms, across their repeat-until candidates).
    pub solver_reuse: SolverReuse,
    /// Use the incremental descent (default). `false` forces every bound
    /// probe onto a fresh from-scratch solver — the bench comparison leg.
    pub incremental_solver: bool,
    /// Delta plans for the query pair, compiled once per prepared reference.
    /// When present, the final witness verification answers the candidate
    /// sub-instance by delta propagation instead of a scratch re-evaluation.
    pub delta: Option<DeltaPair>,
}

impl Default for OptSigmaOptions {
    fn default() -> Self {
        OptSigmaOptions {
            selection_pushdown: true,
            strategy: SolverStrategy::Optimize,
            budget: Budget::unlimited(),
            events: EventHandle::none(),
            metrics: MetricsHandle::none(),
            solver_reuse: SolverReuse::fresh(),
            incremental_solver: true,
            delta: None,
        }
    }
}

/// Run `Optσ` for the query pair, returning the counterexample and the
/// per-phase timing breakdown.
pub fn smallest_witness_optsigma(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    options: &OptSigmaOptions,
) -> Result<(Counterexample, Timings)> {
    smallest_witness_optsigma_accepting(q1, q2, db, params, options, |_| true)
}

/// `Optσ` with an additional acceptance predicate over candidate tuple
/// selections — the hook Algorithm 3's repeat-until loop uses to reject
/// candidates that fail to distinguish the original aggregate queries.
pub fn smallest_witness_optsigma_accepting<F>(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    options: &OptSigmaOptions,
    mut accept: F,
) -> Result<(Counterexample, Timings)>
where
    F: FnMut(&TupleSelection) -> bool,
{
    let mut timings = Timings::default();

    // Phase 1: raw evaluation of both queries.
    options.events.emit(ExplainEvent::PhaseStarted {
        phase: Phase::RawEval,
    });
    let start = Instant::now();
    let (r1, r2) =
        crate::problem::check_distinguishes_budgeted(q1, q2, db, params, &options.budget)?;
    timings.raw_eval = start.elapsed();
    let diffs = differing_tuples(&r1, &r2);
    let Some((tuple, from_q1)) = diffs.first().cloned() else {
        return Err(RatestError::QueriesAgreeOnInstance);
    };

    // Phase 2 + 3: provenance of the chosen tuple, then min-ones. The
    // witness is solved for the direction observed on the full instance
    // *and* for the flipped direction: on a sub-instance the tuple's
    // membership can flip (e.g. dropping every ECON registration of a
    // student moves them from `Q2(D)` into `(Q1 − Q2)(D')`), and the
    // flipped witness is sometimes strictly smaller. Both remain
    // single-tuple provenance computations, preserving Optσ's cost profile.
    let mut selection: Option<(TupleSelection, bool)> = None;
    for (index, direction) in [from_q1, !from_q1].into_iter().enumerate() {
        options.budget.check()?;
        if direction != from_q1 && !direction_feasible(q1, q2, &r1, &r2, &tuple, direction) {
            continue;
        }
        options.events.emit(ExplainEvent::CandidateChecked {
            index,
            best_size: selection.as_ref().map(|(best, _)| best.len()),
        });
        options.events.emit(ExplainEvent::PhaseStarted {
            phase: Phase::Provenance,
        });
        let start = Instant::now();
        let provenance = provenance_for_tuple(q1, q2, db, params, &tuple, direction, options)?;
        timings.provenance += start.elapsed();
        if matches!(provenance, ratest_provenance::BoolExpr::False) {
            continue;
        }

        options.events.emit(ExplainEvent::PhaseStarted {
            phase: Phase::Solve,
        });
        let start = Instant::now();
        let mut vars = VarMap::new();
        let prv_formula = encode_provenance(&provenance, &mut vars);
        let mut parts = vec![prv_formula];
        parts.extend(foreign_key_clauses(db, &mut vars)?);
        let formula = Formula::and(parts);
        let objective = vars.all_vars();

        options.metrics.counter_inc("optsigma.directions");
        options
            .metrics
            .observe("solver.objective_vars", objective.len() as u64);
        let candidate = match options.strategy {
            SolverStrategy::Optimize => {
                let solve_options = MinOnesOptions {
                    incremental: options.incremental_solver,
                    reuse: Some(options.solver_reuse.clone()),
                    ..Default::default()
                };
                let mut solver_stats = SolverStats::default();
                let result = minimize_ones_with_theory_into(
                    &formula,
                    &objective,
                    &solve_options,
                    |true_vars| accept(&vars.selection_from_vars(true_vars)),
                    &mut solver_stats,
                );
                // Record on every path so aborted searches (unsatisfiable
                // directions, exhausted rejection budgets) still count.
                solver_stats.record(&options.metrics);
                match result {
                    Ok(sol) => Some(vars.selection_from_vars(&sol.true_vars)),
                    Err(ratest_solver::SolverError::Unsatisfiable) => None,
                    Err(e) => return Err(e.into()),
                }
            }
            SolverStrategy::Enumerate { max_models } => {
                match enumerate_best(&formula, &objective, max_models) {
                    Ok(res) => {
                        res.stats.record(&options.metrics);
                        let sel = vars.selection_from_vars(&res.best_true_vars);
                        accept(&sel).then_some(sel)
                    }
                    Err(ratest_solver::SolverError::Unsatisfiable) => None,
                    Err(e) => return Err(e.into()),
                }
            }
        };
        timings.solver += start.elapsed();
        options.events.emit(ExplainEvent::SolverStats {
            variables: objective.len(),
            solution_size: candidate.as_ref().map(|sel| sel.len()),
        });

        // Keep the observed direction on ties so the witness reflects the
        // disagreement the student actually saw.
        if let Some(sel) = candidate {
            let better = selection
                .as_ref()
                .map(|(best, _)| sel.len() < best.len())
                .unwrap_or(true);
            if better {
                selection = Some((sel, direction));
            }
        }
    }
    let Some((selection, direction)) = selection else {
        return Err(RatestError::Unsupported(
            "no direction of the chosen tuple admits an acceptable witness".into(),
        ));
    };

    // Phase 4: materialize and verify.
    let witness = Witness {
        tuple: tuple.clone(),
        from_q1: direction,
        selection: selection.clone(),
    };
    let ctx = CandidateEval {
        delta: options.delta.clone(),
        metrics: options.metrics.clone(),
        interrupt: options.budget.interrupt(),
    };
    let cex = verify_candidate(q1, q2, db, selection, Some(witness), params, &ctx)?;
    timings.total = timings.raw_eval + timings.provenance + timings.solver;
    Ok((cex, timings))
}

/// Cheap necessary condition for `t ∈ (Qa − Qb)(D')` to be achievable on
/// some sub-instance: when `Qa` is monotone (difference- and
/// aggregate-free), `Qa(D') ⊆ Qa(D)`, so a tuple outside `Qa(D)` can never
/// enter the difference in that direction. Used to skip the flipped-direction
/// witness search without computing any provenance.
pub(crate) fn direction_feasible(
    q1: &Query,
    q2: &Query,
    r1: &ratest_ra::eval::ResultSet,
    r2: &ratest_ra::eval::ResultSet,
    tuple: &[Value],
    from_q1: bool,
) -> bool {
    let (qa, ra) = if from_q1 { (q1, r1) } else { (q2, r2) };
    qa.has_difference() || qa.has_aggregates() || ra.contains(tuple)
}

/// Compute `Prv_{Qa − Qb}(t)` where `(Qa, Qb)` is `(Q1, Q2)` or `(Q2, Q1)`
/// depending on which side the tuple came from, optionally pushing the
/// tuple-equality selection down first.
pub fn provenance_for_tuple(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    tuple: &[Value],
    from_q1: bool,
    options: &OptSigmaOptions,
) -> Result<ratest_provenance::BoolExpr> {
    let diff = difference_query(q1, q2, from_q1);
    let schema = output_schema(&diff, db)?;
    // The tuple-equality selection identifies columns by name; when the
    // output schema has duplicate column names (e.g. a projection onto
    // `a.name, b.name` whose aliases both collapse to `name`) the selection
    // would be ambiguous, so fall back to annotating the full difference.
    let unique_names = schema
        .names()
        .collect::<std::collections::HashSet<_>>()
        .len()
        == schema.arity();
    let query = if unique_names {
        let predicate = tuple_equality_predicate(&schema, tuple);
        let selected = QueryBuilder::from_query(diff).select(predicate).build();
        if options.selection_pushdown {
            push_selections_down(&selected, db)?
        } else {
            selected
        }
    } else {
        diff
    };
    let annotated = annotate_instrumented(
        &query,
        db,
        params,
        &options.budget.interrupt(),
        &options.metrics,
    )?;
    Ok(annotated
        .provenance_of(tuple)
        .cloned()
        .unwrap_or(ratest_provenance::BoolExpr::False))
}

/// Build the predicate `A1 = t.A1 ∧ A2 = t.A2 ∧ …` selecting exactly `t`.
pub fn tuple_equality_predicate(schema: &ratest_storage::Schema, tuple: &[Value]) -> Expr {
    let conjuncts: Vec<Expr> = schema
        .names()
        .zip(tuple.iter())
        .map(|(name, v)| Expr::Column(name.to_owned()).eq(Expr::Literal(v.clone())))
        .collect();
    Expr::conjunction(conjuncts).unwrap_or(Expr::Literal(Value::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::testdata;

    #[test]
    fn example1_finds_a_three_tuple_counterexample() {
        let db = testdata::figure1_db();
        for pushdown in [true, false] {
            let options = OptSigmaOptions {
                selection_pushdown: pushdown,
                ..Default::default()
            };
            let (cex, timings) = smallest_witness_optsigma(
                &testdata::example1_q1(),
                &testdata::example1_q2(),
                &db,
                &Params::new(),
                &options,
            )
            .unwrap();
            assert_eq!(cex.size(), 3, "pushdown={pushdown}");
            assert!(!cex.q1_result.set_eq(&cex.q2_result));
            assert!(timings.total >= timings.solver);
        }
    }

    #[test]
    fn witness_records_the_differing_tuple() {
        let db = testdata::figure1_db();
        let (cex, _) = smallest_witness_optsigma(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
            &OptSigmaOptions::default(),
        )
        .unwrap();
        let w = cex.witness.expect("Optσ always produces a witness");
        assert!(!w.from_q1, "the wrong answers are produced by Q2");
        assert_eq!(w.tuple.len(), 2);
        assert_eq!(w.size(), 3);
    }

    #[test]
    fn enumeration_strategy_is_supported_but_may_be_suboptimal() {
        let db = testdata::figure1_db();
        let (cex_opt, _) = smallest_witness_optsigma(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
            &OptSigmaOptions::default(),
        )
        .unwrap();
        let (cex_naive, _) = smallest_witness_optsigma(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
            &OptSigmaOptions {
                strategy: SolverStrategy::Enumerate { max_models: 128 },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cex_naive.size() >= cex_opt.size());
    }

    #[test]
    fn equivalent_queries_are_reported() {
        let db = testdata::figure1_db();
        let q = testdata::example1_q2();
        assert!(matches!(
            smallest_witness_optsigma(&q, &q, &db, &Params::new(), &OptSigmaOptions::default()),
            Err(RatestError::QueriesAgreeOnInstance)
        ));
    }

    #[test]
    fn matches_brute_force_on_the_toy_instance() {
        let db = testdata::figure1_db();
        let (cex, _) = smallest_witness_optsigma(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
            &OptSigmaOptions::default(),
        )
        .unwrap();
        let brute = crate::problem::brute_force_smallest(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(cex.size(), brute.size());
    }

    #[test]
    fn tuple_equality_predicate_selects_exactly_one_tuple() {
        let db = testdata::figure1_db();
        let schema = db.relation("Student").unwrap().schema().clone();
        let pred = tuple_equality_predicate(&schema, &[Value::from("Mary"), Value::from("CS")]);
        let q = ratest_ra::builder::rel("Student").select(pred).build();
        let out = ratest_ra::eval::evaluate(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
    }
}
