//! Problem definitions and result types: counterexamples (SCP) and witnesses
//! (SWP), plus verification.

use crate::error::{RatestError, Result};
use ratest_delta::{DeltaError, SharedDeltaPlan};
use ratest_ra::ast::Query;
use ratest_ra::error::QueryError;
use ratest_ra::eval::{evaluate_instrumented, evaluate_with_params, Params, ResultSet};
use ratest_ra::interrupt::Interrupt;
use ratest_ra::typecheck::output_schema;
use ratest_storage::{Database, SubInstance, TupleSelection, Value};
use ratest_telemetry::MetricsHandle;
use std::sync::Arc;

/// A witness (Definition 2): a set of base tuples that keeps a particular
/// output tuple in the result of `Q1 − Q2` (or `Q2 − Q1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The output tuple being witnessed.
    pub tuple: Vec<Value>,
    /// Whether the tuple is in `Q1(D) \ Q2(D)` (`true`) or `Q2(D) \ Q1(D)`.
    pub from_q1: bool,
    /// The selected base tuples.
    pub selection: TupleSelection,
}

impl Witness {
    /// Size of the witness (number of base tuples).
    pub fn size(&self) -> usize {
        self.selection.len()
    }
}

/// A counterexample (Definition 1): a sub-instance `D' ⊆ D` on which the two
/// queries disagree, together with the evidence of that disagreement.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The selected tuples and the induced database.
    pub subinstance: SubInstance,
    /// `Q1(D')`.
    pub q1_result: ResultSet,
    /// `Q2(D')`.
    pub q2_result: ResultSet,
    /// The witness this counterexample was derived from (absent for the
    /// trivial counterexample or the aggregate algorithms, which reason per
    /// group rather than per tuple).
    pub witness: Option<Witness>,
    /// Parameter values chosen by the parameterized algorithms (λ' of
    /// Definition 3); empty for non-parameterized queries.
    pub parameters: Params,
}

impl Counterexample {
    /// Number of tuples in the counterexample — the objective being
    /// minimized.
    pub fn size(&self) -> usize {
        self.subinstance.size()
    }

    /// The induced database `D'`.
    pub fn database(&self) -> &Database {
        &self.subinstance.database
    }
}

/// Check that the results of two queries are union compatible and actually
/// differ on `db`; returns the two result sets.
pub fn check_distinguishes(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
) -> Result<(ResultSet, ResultSet)> {
    check_distinguishes_budgeted(q1, q2, db, params, &crate::session::Budget::unlimited())
}

/// [`check_distinguishes`] under a [`crate::session::Budget`]: the raw
/// evaluations poll the budget inside their row loops, so one flooding
/// submission cannot out-run its deadline during this phase.
pub fn check_distinguishes_budgeted(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    budget: &crate::session::Budget,
) -> Result<(ResultSet, ResultSet)> {
    check_distinguishes_instrumented(
        q1,
        q2,
        db,
        params,
        budget,
        &ratest_telemetry::MetricsHandle::none(),
    )
}

/// [`check_distinguishes_budgeted`] plus telemetry: both evaluations fold
/// their row counters into `metrics` (`ra.eval.*`).
pub fn check_distinguishes_instrumented(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    budget: &crate::session::Budget,
    metrics: &ratest_telemetry::MetricsHandle,
) -> Result<(ResultSet, ResultSet)> {
    let s1 = output_schema(q1, db)?;
    let s2 = output_schema(q2, db)?;
    if !s1.union_compatible(&s2) {
        return Err(RatestError::NotUnionCompatible {
            left: s1.to_string(),
            right: s2.to_string(),
        });
    }
    let interrupt = budget.interrupt();
    let r1 = ratest_ra::eval::evaluate_instrumented(q1, db, params, &interrupt, metrics)?;
    let r2 = ratest_ra::eval::evaluate_instrumented(q2, db, params, &interrupt, metrics)?;
    Ok((r1, r2))
}

/// Materialize a tuple selection into a full [`Counterexample`], evaluating
/// both queries on the induced sub-instance and **verifying** that they
/// disagree and that the sub-instance satisfies the foreign keys
/// (constraints closed under subinstances hold automatically).
pub fn build_counterexample(
    q1: &Query,
    q2: &Query,
    db: &Database,
    mut selection: TupleSelection,
    witness: Option<Witness>,
    params: &Params,
) -> Result<Counterexample> {
    // Close under foreign keys so the sub-instance is a valid instance.
    selection.close_under_foreign_keys(db)?;
    let sub = SubInstance::materialize(db, selection);
    debug_assert!(db.contains_subinstance(&sub.database));
    sub.database.validate_constraints()?;
    let q1_result = evaluate_with_params(q1, &sub.database, params)?;
    let q2_result = evaluate_with_params(q2, &sub.database, params)?;
    if q1_result.set_eq(&q2_result) {
        return Err(RatestError::Unsupported(format!(
            "candidate sub-instance of {} tuples does not distinguish the queries",
            sub.size()
        )));
    }
    Ok(Counterexample {
        subinstance: sub,
        q1_result,
        q2_result,
        witness,
        parameters: params.clone(),
    })
}

/// The compiled delta plans of one explain request: `q1` for the prepared
/// reference, `q2` for the submission (both over the full instance, with the
/// request's parameter bindings).
#[derive(Clone, Debug)]
pub struct DeltaPair {
    /// Delta plan for the reference query.
    pub q1: SharedDeltaPlan,
    /// Delta plan for the submission query.
    pub q2: SharedDeltaPlan,
}

/// Evaluation context threaded into the candidate loops of the search
/// algorithms: the optional delta plans plus the request's interrupt hook
/// and metrics sink, so candidate evaluation paces and reports exactly like
/// the rest of the pipeline.
#[derive(Clone)]
pub struct CandidateEval {
    /// Compiled delta plans, when `RatestOptions.delta_eval` is on and
    /// compilation succeeded.
    pub delta: Option<DeltaPair>,
    /// Metrics sink for `delta.*` and `ra.eval.*` counters.
    pub metrics: MetricsHandle,
    /// The request's interrupt hook (budget pacing).
    pub interrupt: Interrupt,
}

impl CandidateEval {
    /// An inert context: scratch evaluation, no metrics, no interrupt.
    pub fn none() -> CandidateEval {
        CandidateEval {
            delta: None,
            metrics: MetricsHandle::none(),
            interrupt: Interrupt::none(),
        }
    }
}

/// [`build_counterexample`] for the hot candidate loops: verify a candidate
/// selection via the delta plans when available (falling back to scratch
/// evaluation on any non-interrupt delta error), pacing under the context's
/// interrupt and recording `delta.*` telemetry. Results are byte-identical
/// to the scratch path either way.
pub fn verify_candidate(
    q1: &Query,
    q2: &Query,
    db: &Database,
    mut selection: TupleSelection,
    witness: Option<Witness>,
    params: &Params,
    ctx: &CandidateEval,
) -> Result<Counterexample> {
    selection.close_under_foreign_keys(db)?;
    if let Some(pair) = &ctx.delta {
        if pair.q1.params_match(params) && pair.q2.params_match(params) {
            match delta_results(pair, &selection, &ctx.interrupt) {
                Ok((r1, r2, work)) => {
                    ctx.metrics.counter_inc("delta.candidates_incremental");
                    ctx.metrics.counter_add("delta.rows_touched", work);
                    let deleted = pair.q1.base_tuples().saturating_sub(selection.len());
                    ctx.metrics.observe("delta.delta_size", deleted as u64);
                    if r1.set_eq(&r2) {
                        // Rejected candidates never need materializing: a
                        // foreign-key-closed subset of the (validated) base
                        // instance is always a valid instance.
                        return Err(RatestError::Unsupported(format!(
                            "candidate sub-instance of {} tuples does not distinguish the queries",
                            selection.len()
                        )));
                    }
                    let sub = SubInstance::materialize(db, selection);
                    debug_assert!(db.contains_subinstance(&sub.database));
                    sub.database.validate_constraints()?;
                    debug_assert_eq!(
                        r1,
                        evaluate_with_params(q1, &sub.database, params)?,
                        "delta result diverged from scratch evaluation"
                    );
                    debug_assert_eq!(
                        r2,
                        evaluate_with_params(q2, &sub.database, params)?,
                        "delta result diverged from scratch evaluation"
                    );
                    return Ok(Counterexample {
                        subinstance: sub,
                        q1_result: r1,
                        q2_result: r2,
                        witness,
                        parameters: params.clone(),
                    });
                }
                Err(DeltaError::Query(e @ QueryError::Interrupted(_))) => {
                    return Err(RatestError::from(e));
                }
                Err(_) => {
                    ctx.metrics.counter_inc("delta.fallbacks_scratch");
                }
            }
        } else {
            ctx.metrics.counter_inc("delta.fallbacks_scratch");
        }
    }
    let sub = SubInstance::materialize(db, selection);
    debug_assert!(db.contains_subinstance(&sub.database));
    sub.database.validate_constraints()?;
    let q1_result = evaluate_instrumented(q1, &sub.database, params, &ctx.interrupt, &ctx.metrics)?;
    let q2_result = evaluate_instrumented(q2, &sub.database, params, &ctx.interrupt, &ctx.metrics)?;
    if q1_result.set_eq(&q2_result) {
        return Err(RatestError::Unsupported(format!(
            "candidate sub-instance of {} tuples does not distinguish the queries",
            sub.size()
        )));
    }
    Ok(Counterexample {
        subinstance: sub,
        q1_result,
        q2_result,
        witness,
        parameters: params.clone(),
    })
}

fn delta_results(
    pair: &DeltaPair,
    selection: &TupleSelection,
    interrupt: &Interrupt,
) -> std::result::Result<(ResultSet, ResultSet, u64), DeltaError> {
    let (r1, w1) = pair.q1.eval(selection, interrupt)?;
    let (r2, w2) = pair.q2.eval(selection, interrupt)?;
    Ok((r1, r2, w1 + w2))
}

/// The tuples on which the two results differ, tagged with the side they come
/// from (`true` = only in `Q1(D)`).
pub fn differing_tuples(r1: &ResultSet, r2: &ResultSet) -> Vec<(Vec<Value>, bool)> {
    let mut out: Vec<(Vec<Value>, bool)> =
        r1.difference(r2).into_iter().map(|t| (t, true)).collect();
    out.extend(r2.difference(r1).into_iter().map(|t| (t, false)));
    out
}

/// Construct `Q1 − Q2` (or `Q2 − Q1` when `from_q1` is false).
pub fn difference_query(q1: &Query, q2: &Query, from_q1: bool) -> Query {
    if from_q1 {
        Query::Difference {
            left: Arc::new(q1.clone()),
            right: Arc::new(q2.clone()),
        }
    } else {
        Query::Difference {
            left: Arc::new(q2.clone()),
            right: Arc::new(q1.clone()),
        }
    }
}

/// The trivial counterexample: all of `D` (used as a fallback and as the
/// baseline the experiments compare against).
pub fn trivial_counterexample(q1: &Query, q2: &Query, db: &Database) -> Result<Counterexample> {
    build_counterexample(q1, q2, db, TupleSelection::all(db), None, &Params::new())
}

/// Exhaustive search for the true smallest counterexample, used by tests and
/// the property-based suite to validate the optimized algorithms on tiny
/// instances. Complexity is exponential in `|D|`.
pub fn brute_force_smallest(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
) -> Result<Option<Counterexample>> {
    let all: Vec<ratest_storage::TupleId> = TupleSelection::all(db).iter().collect();
    let n = all.len();
    assert!(n <= 20, "brute force is only intended for tiny instances");
    let mut best: Option<Counterexample> = None;
    for mask in 0u32..(1 << n) {
        let count = mask.count_ones() as usize;
        if let Some(b) = &best {
            if count >= b.size() {
                continue;
            }
        }
        let sel = TupleSelection::from_ids(
            all.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, id)| *id),
        );
        // Skip selections that violate foreign keys (they are not valid
        // sub-instances on their own).
        let mut closed = sel.clone();
        closed.close_under_foreign_keys(db)?;
        if closed.len() != sel.len() {
            continue;
        }
        if let Ok(cex) = build_counterexample(q1, q2, db, sel, None, params) {
            let better = best.as_ref().map(|b| cex.size() < b.size()).unwrap_or(true);
            if better {
                best = Some(cex);
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::testdata;
    use ratest_storage::TupleId;

    #[test]
    fn distinguishing_check_matches_figure_2() {
        let db = testdata::figure1_db();
        let (r1, r2) = check_distinguishes(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
        )
        .unwrap();
        let diff = differing_tuples(&r1, &r2);
        assert_eq!(diff.len(), 2);
        assert!(
            diff.iter().all(|(_, from_q1)| !from_q1),
            "wrong answers come from Q2"
        );
    }

    #[test]
    fn incompatible_schemas_are_rejected() {
        let db = testdata::figure1_db();
        let q1 = ratest_ra::builder::rel("Student")
            .project(&["name"])
            .build();
        let q2 = ratest_ra::builder::rel("Student").build();
        assert!(matches!(
            check_distinguishes(&q1, &q2, &db, &Params::new()),
            Err(RatestError::NotUnionCompatible { .. })
        ));
    }

    #[test]
    fn build_counterexample_verifies_and_closes_fks() {
        let db = testdata::figure1_db();
        // Mary's student tuple plus her two CS registrations.
        let sel = TupleSelection::from_ids(vec![
            TupleId::new(0, 0),
            TupleId::new(1, 0),
            TupleId::new(1, 1),
        ]);
        let cex = build_counterexample(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            sel,
            None,
            &Params::new(),
        )
        .unwrap();
        assert_eq!(cex.size(), 3);
        assert_eq!(cex.q1_result.len(), 0);
        assert_eq!(cex.q2_result.len(), 1);

        // Registrations without the referenced student get the student added
        // by foreign-key closure (and then still distinguish the queries).
        let sel = TupleSelection::from_ids(vec![TupleId::new(1, 0), TupleId::new(1, 1)]);
        let cex = build_counterexample(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            sel,
            None,
            &Params::new(),
        )
        .unwrap();
        assert_eq!(cex.size(), 3);
    }

    #[test]
    fn non_distinguishing_selection_is_rejected() {
        let db = testdata::figure1_db();
        let sel = TupleSelection::from_ids(vec![TupleId::new(0, 1)]); // John only
        assert!(build_counterexample(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            sel,
            None,
            &Params::new(),
        )
        .is_err());
    }

    #[test]
    fn trivial_counterexample_has_full_size() {
        let db = testdata::figure1_db();
        let cex = trivial_counterexample(&testdata::example1_q1(), &testdata::example1_q2(), &db)
            .unwrap();
        assert_eq!(cex.size(), 11);
    }

    #[test]
    fn brute_force_finds_the_three_tuple_optimum() {
        let db = testdata::figure1_db();
        let best = brute_force_smallest(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
        )
        .unwrap()
        .expect("a counterexample exists");
        assert_eq!(
            best.size(),
            3,
            "Example 2: no counterexample has fewer than 3 tuples"
        );
    }

    #[test]
    fn difference_query_orientation() {
        let q1 = testdata::example1_q1();
        let q2 = testdata::example1_q2();
        let d = difference_query(&q1, &q2, false);
        match d {
            Query::Difference { left, .. } => assert_eq!(*left, q2),
            _ => panic!(),
        }
    }
}
