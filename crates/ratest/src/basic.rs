//! Algorithm 1 (`Basic`): solve the smallest **counterexample** problem by
//! iterating over every differing output tuple, solving the smallest witness
//! problem for each, and returning the global minimum.
//!
//! Compared to `Optσ` this pays two costs the paper's Table 4 quantifies:
//! provenance is computed for *all* output tuples of `Q1 − Q2` and
//! `Q2 − Q1` (not just one), and a separate solver instance runs per tuple.
//! In exchange it is guaranteed to reach the global SCP optimum (when the
//! per-witness solver is exact).

use crate::encode::{encode_provenance, foreign_key_clauses, VarMap};
use crate::error::{RatestError, Result};
use crate::pipeline::{SolverStrategy, Timings};
use crate::problem::{
    difference_query, verify_candidate, CandidateEval, Counterexample, DeltaPair, Witness,
};
use crate::session::{Budget, EventHandle, ExplainEvent, Phase};
use ratest_provenance::annotate::annotate_instrumented;
use ratest_ra::ast::Query;
use ratest_ra::eval::Params;
use ratest_solver::enumerate::enumerate_best;
use ratest_solver::formula::Formula;
use ratest_solver::incremental::SolverReuse;
use ratest_solver::minones::{minimize_ones_with_theory_into, MinOnesOptions};
use ratest_solver::SolverStats;
use ratest_storage::Database;
use ratest_telemetry::MetricsHandle;
use std::time::Instant;

/// Options for the `Basic` algorithm.
#[derive(Debug, Clone)]
pub struct BasicOptions {
    /// Solver strategy used for each per-tuple witness problem. The paper's
    /// Algorithm 1 uses bounded model enumeration (`Naive-Δ`); Table 4's
    /// `Basic` row uses the optimizing solver. Both are available.
    pub strategy: SolverStrategy,
    /// Upper bound on the number of differing tuples to process (the number
    /// of output tuples can be large for very wrong queries; the paper
    /// iterates over all of them, which this default preserves).
    pub max_tuples: usize,
    /// Unified resource budget, polled once per candidate tuple and inside
    /// the provenance row loops.
    pub budget: Budget,
    /// Progress events (per-candidate, per-solve).
    pub events: EventHandle,
    /// Metrics sink: solver statistics and candidate counts are folded in
    /// here; the default handle records nothing.
    pub metrics: MetricsHandle,
    /// Warm solver shared across the candidate tuples of this run, so
    /// learned clauses and the cardinality ladder survive from one witness
    /// problem's descent to the next instead of being rebuilt per bound.
    pub solver_reuse: SolverReuse,
    /// Use the incremental descent (default). `false` forces every bound
    /// probe onto a fresh from-scratch solver — the bench comparison leg.
    pub incremental_solver: bool,
    /// Delta plans for the query pair, compiled once per prepared reference.
    /// When present, each candidate sub-instance is verified by propagating
    /// its tuple-deletion delta instead of re-evaluating from scratch.
    pub delta: Option<DeltaPair>,
}

impl Default for BasicOptions {
    fn default() -> Self {
        BasicOptions {
            strategy: SolverStrategy::Optimize,
            max_tuples: usize::MAX,
            budget: Budget::unlimited(),
            events: EventHandle::none(),
            metrics: MetricsHandle::none(),
            solver_reuse: SolverReuse::fresh(),
            incremental_solver: true,
            delta: None,
        }
    }
}

/// Run the `Basic` SCP algorithm.
pub fn smallest_counterexample_basic(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    options: &BasicOptions,
) -> Result<(Counterexample, Timings)> {
    let mut timings = Timings::default();

    options.events.emit(ExplainEvent::PhaseStarted {
        phase: Phase::RawEval,
    });
    let start = Instant::now();
    let (r1, r2) =
        crate::problem::check_distinguishes_budgeted(q1, q2, db, params, &options.budget)?;
    timings.raw_eval = start.elapsed();
    if r1.set_eq(&r2) {
        return Err(RatestError::QueriesAgreeOnInstance);
    }

    // Annotate both difference directions once ("prov-all" in Figure 4).
    options.events.emit(ExplainEvent::PhaseStarted {
        phase: Phase::Provenance,
    });
    let interrupt = options.budget.interrupt();
    let start = Instant::now();
    let ann_q1_minus_q2 = annotate_instrumented(
        &difference_query(q1, q2, true),
        db,
        params,
        &interrupt,
        &options.metrics,
    )?;
    let ann_q2_minus_q1 = annotate_instrumented(
        &difference_query(q1, q2, false),
        db,
        params,
        &interrupt,
        &options.metrics,
    )?;
    timings.provenance = start.elapsed();

    let cex = smallest_counterexample_from_annotations(
        q1,
        q2,
        db,
        params,
        &r1,
        &r2,
        &ann_q1_minus_q2,
        &ann_q2_minus_q1,
        options,
        &mut timings,
    )?;
    timings.total = timings.raw_eval + timings.provenance + timings.solver;
    Ok((cex, timings))
}

/// The candidate-scan core of `Basic`, operating on *precomputed* difference
/// annotations. Exposed so the batch-grading path can share one reference
/// annotation across a whole cohort: the caller derives
/// `ann(Q1 − Q2)` / `ann(Q2 − Q1)` via
/// [`ratest_provenance::difference_of`] from cached per-query annotations
/// and hands them here, instead of re-annotating the reference per pair.
#[allow(clippy::too_many_arguments)]
pub fn smallest_counterexample_from_annotations(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    r1: &ratest_ra::eval::ResultSet,
    r2: &ratest_ra::eval::ResultSet,
    ann_q1_minus_q2: &ratest_provenance::AnnotatedResult,
    ann_q2_minus_q1: &ratest_provenance::AnnotatedResult,
    options: &BasicOptions,
    timings: &mut Timings,
) -> Result<Counterexample> {
    // Candidate (tuple, direction) pairs. Iterating only over the tuples
    // that differ on the *full* instance (with their observed direction) is
    // not enough for global optimality: on a sub-instance the membership of
    // a tuple can flip — e.g. dropping every ECON registration of a student
    // moves them from `Q2(D)` into `(Q1 − Q2)(D')`. The difference
    // annotations keep a row (with an exact provenance formula) for every
    // tuple derivable on *any* sub-instance, so iterating over all annotated
    // rows in both directions covers every possible differing tuple.
    let observed: std::collections::HashSet<(Vec<ratest_storage::Value>, bool)> = r1
        .difference(r2)
        .into_iter()
        .map(|t| (t, true))
        .chain(r2.difference(r1).into_iter().map(|t| (t, false)))
        .collect();
    let mut candidates: Vec<(Vec<ratest_storage::Value>, bool)> = Vec::new();
    for (ann, from_q1) in [(ann_q1_minus_q2, true), (ann_q2_minus_q1, false)] {
        for row in ann.rows() {
            candidates.push((row.values.clone(), from_q1));
        }
    }
    // Try the differences observed on the full instance first so the best
    // bound tightens early.
    candidates.sort_by_key(|c| !observed.contains(c));

    options.events.emit(ExplainEvent::PhaseStarted {
        phase: Phase::Solve,
    });
    let ctx = CandidateEval {
        delta: options.delta.clone(),
        metrics: options.metrics.clone(),
        interrupt: options.budget.interrupt(),
    };
    let solver_start = Instant::now();
    let mut best: Option<Counterexample> = None;
    for (index, (tuple, from_q1)) in candidates.into_iter().take(options.max_tuples).enumerate() {
        options.budget.check()?;
        options.events.emit(ExplainEvent::CandidateChecked {
            index,
            best_size: best.as_ref().map(|b| b.size()),
        });
        let annotated = if from_q1 {
            ann_q1_minus_q2
        } else {
            ann_q2_minus_q1
        };
        if let Some(b) = &best {
            if b.size() == 1 {
                break; // a singleton counterexample cannot be beaten
            }
        }
        // Cheap monotonicity prune: a tuple can only flip into `Qa − Qb` on
        // a sub-instance if `Qa` is non-monotone or already produced it.
        if !crate::optsigma::direction_feasible(q1, q2, r1, r2, &tuple, from_q1) {
            continue;
        }
        let Some(prv) = annotated.provenance_of(&tuple) else {
            continue;
        };
        if matches!(prv, ratest_provenance::BoolExpr::False) {
            continue;
        }
        let mut vars = VarMap::new();
        let mut parts = vec![encode_provenance(prv, &mut vars)];
        parts.extend(foreign_key_clauses(db, &mut vars)?);
        let formula = Formula::and(parts);
        let objective = vars.all_vars();

        // Only candidates that can beat the incumbent matter: bound the
        // solver at `best − 1` true variables so hopeless candidates are
        // discarded with a single bounded solve.
        let solve_options = MinOnesOptions {
            upper_bound: best.as_ref().map(|b| b.size().saturating_sub(1)),
            incremental: options.incremental_solver,
            reuse: Some(options.solver_reuse.clone()),
            ..Default::default()
        };
        options.metrics.counter_inc("basic.candidates");
        options
            .metrics
            .observe("solver.objective_vars", objective.len() as u64);
        let solved = match options.strategy {
            SolverStrategy::Optimize => {
                let mut solver_stats = SolverStats::default();
                let result = minimize_ones_with_theory_into(
                    &formula,
                    &objective,
                    &solve_options,
                    |_| true,
                    &mut solver_stats,
                );
                // Fold stats in on every path: bounded probes that prove a
                // candidate hopeless (`Unsatisfiable`) do real solver work
                // that `--metrics` totals must not under-count.
                solver_stats.record(&options.metrics);
                match result {
                    Ok(sol) => Some(sol.true_vars),
                    Err(ratest_solver::SolverError::Unsatisfiable) => None,
                    Err(e) => return Err(e.into()),
                }
            }
            SolverStrategy::Enumerate { max_models } => {
                match enumerate_best(&formula, &objective, max_models) {
                    Ok(res) => {
                        res.stats.record(&options.metrics);
                        Some(res.best_true_vars)
                    }
                    Err(ratest_solver::SolverError::Unsatisfiable) => None,
                    Err(e) => return Err(e.into()),
                }
            }
        };
        options.events.emit(ExplainEvent::SolverStats {
            variables: objective.len(),
            solution_size: solved.as_ref().map(|v| v.len()),
        });
        let Some(true_vars) = solved else {
            continue;
        };
        let selection = vars.selection_from_vars(&true_vars);
        let witness = Witness {
            tuple: tuple.clone(),
            from_q1,
            selection: selection.clone(),
        };
        match verify_candidate(q1, q2, db, selection, Some(witness), params, &ctx) {
            Ok(cex) => {
                let better = best.as_ref().map(|b| cex.size() < b.size()).unwrap_or(true);
                if better {
                    best = Some(cex);
                }
            }
            Err(RatestError::Unsupported(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    timings.solver += solver_start.elapsed();

    best.ok_or(RatestError::QueriesAgreeOnInstance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optsigma::{smallest_witness_optsigma, OptSigmaOptions};
    use ratest_ra::testdata;

    #[test]
    fn basic_reaches_the_global_optimum_on_example1() {
        let db = testdata::figure1_db();
        let (cex, timings) = smallest_counterexample_basic(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
            &BasicOptions::default(),
        )
        .unwrap();
        assert_eq!(cex.size(), 3);
        assert!(timings.provenance.as_nanos() > 0);
    }

    #[test]
    fn basic_and_optsigma_agree_on_size_for_the_running_example() {
        // The paper observes that in practice Optσ's witness has the same size
        // as Basic's global optimum (Table 4).
        let db = testdata::figure1_db();
        let (b, _) = smallest_counterexample_basic(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
            &BasicOptions::default(),
        )
        .unwrap();
        let (o, _) = smallest_witness_optsigma(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
            &OptSigmaOptions::default(),
        )
        .unwrap();
        assert_eq!(b.size(), o.size());
    }

    #[test]
    fn naive_enumeration_strategy_works() {
        let db = testdata::figure1_db();
        let (cex, _) = smallest_counterexample_basic(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &Params::new(),
            &BasicOptions {
                strategy: SolverStrategy::Enumerate { max_models: 128 },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cex.size() >= 3);
    }

    #[test]
    fn identical_queries_are_rejected() {
        let db = testdata::figure1_db();
        let q = testdata::example1_q1();
        assert!(matches!(
            smallest_counterexample_basic(&q, &q, &db, &Params::new(), &BasicOptions::default()),
            Err(RatestError::QueriesAgreeOnInstance)
        ));
    }
}
