//! Human-readable explanation reports — the command-line stand-in for the
//! RATest web UI, which showed students the small counterexample instance
//! together with the results of both queries on it.

use crate::pipeline::ExplainOutcome;
use crate::problem::Counterexample;
use ratest_ra::eval::ResultSet;
use ratest_storage::display::{render_database, render_table};

/// Render a full explanation: the counterexample instance, both query
/// results on it, and (when present) the differing tuple and chosen
/// parameters.
pub fn render_explanation(outcome: &ExplainOutcome) -> String {
    let mut out = String::new();
    match &outcome.counterexample {
        None => {
            out.push_str("The two queries return the same result on the test instance.\n");
            out.push_str("No counterexample exists within this instance.\n");
        }
        Some(cex) => {
            out.push_str(&format!(
                "The queries are NOT equivalent. Counterexample with {} tuple(s) (query class {}, algorithm {:?}):\n\n",
                cex.size(),
                outcome.class,
                outcome.algorithm_used
            ));
            out.push_str(&render_counterexample(cex));
        }
    }
    out
}

/// Render just the counterexample (instance + both results).
pub fn render_counterexample(cex: &Counterexample) -> String {
    let mut out = String::new();
    out.push_str(&render_database(cex.database()));
    if !cex.parameters.is_empty() {
        let mut params: Vec<String> = cex
            .parameters
            .iter()
            .map(|(k, v)| format!("@{k} = {v}"))
            .collect();
        params.sort();
        out.push_str(&format!("Chosen parameters: {}\n\n", params.join(", ")));
    }
    if let Some(w) = &cex.witness {
        let side = if w.from_q1 {
            "Q1 but not Q2"
        } else {
            "Q2 but not Q1"
        };
        let rendered: Vec<String> = w.tuple.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "On this instance the tuple ({}) appears in {}.\n\n",
            rendered.join(", "),
            side
        ));
    }
    out.push_str(&render_result(
        "Result of Q1 on the counterexample",
        &cex.q1_result,
    ));
    out.push('\n');
    out.push_str(&render_result(
        "Result of Q2 on the counterexample",
        &cex.q2_result,
    ));
    out
}

/// Render a query result as a table.
pub fn render_result(caption: &str, result: &ResultSet) -> String {
    let headers: Vec<String> = result.schema().names().map(|s| s.to_owned()).collect();
    let rows: Vec<Vec<String>> = result
        .rows()
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    if rows.is_empty() {
        format!("{caption}\n(empty result)\n")
    } else {
        render_table(caption, &headers, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{explain_impl as explain, RatestOptions};
    use ratest_ra::testdata;

    #[test]
    fn explanation_contains_instance_and_results() {
        let db = testdata::figure1_db();
        let outcome = explain(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &RatestOptions::default(),
        )
        .unwrap();
        let text = render_explanation(&outcome);
        assert!(text.contains("NOT equivalent"));
        assert!(text.contains("Student"));
        assert!(text.contains("Registration"));
        assert!(text.contains("Result of Q1"));
        assert!(text.contains("Result of Q2"));
        assert!(text.contains("but not"));
    }

    #[test]
    fn agreeing_queries_render_a_pass_message() {
        let db = testdata::figure1_db();
        let q = testdata::example1_q1();
        let outcome = explain(&q, &q, &db, &RatestOptions::default()).unwrap();
        let text = render_explanation(&outcome);
        assert!(text.contains("same result"));
    }

    #[test]
    fn empty_results_render_gracefully() {
        let db = testdata::figure1_db();
        let outcome = explain(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &RatestOptions::default(),
        )
        .unwrap();
        let cex = outcome.counterexample.unwrap();
        // Q1 on the 3-tuple counterexample is empty.
        let text = render_result("caption", &cex.q1_result);
        assert!(text.contains("(empty result)"));
    }

    #[test]
    fn parameters_are_rendered_when_present() {
        use ratest_ra::eval::Params;
        use ratest_storage::Value;
        let db = testdata::figure1_db();
        let mut params = Params::new();
        params.insert("numCS".into(), Value::Int(3));
        let outcome = explain(
            &testdata::example6_q1(),
            &testdata::example6_q2(),
            &db,
            &RatestOptions {
                parameters: params,
                ..Default::default()
            },
        )
        .unwrap();
        let text = render_explanation(&outcome);
        assert!(text.contains("Chosen parameters"));
        assert!(text.contains("@numCS"));
    }
}
