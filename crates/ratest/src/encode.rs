//! Translating provenance into solver formulas (Sections 4.1 and 4.3).
//!
//! The solver works over dense variable indices; provenance is expressed over
//! [`TupleId`]s. [`VarMap`] maintains the bijection, and
//! [`encode_provenance`] / [`foreign_key_clauses`] produce the formula the
//! min-ones optimizer consumes: the provenance itself as the satisfiability
//! constraint plus one implication `t_child ⇒ t_parent` per referencing tuple
//! mentioned in the formula.

use crate::error::Result;
use ratest_provenance::BoolExpr;
use ratest_solver::formula::Formula;
use ratest_solver::Var;
use ratest_storage::{Database, TupleId, TupleSelection};
use std::collections::HashMap;

/// A bijection between tuple identifiers and solver variables.
#[derive(Debug, Clone, Default)]
pub struct VarMap {
    to_var: HashMap<TupleId, Var>,
    to_tuple: Vec<TupleId>,
}

impl VarMap {
    /// An empty map.
    pub fn new() -> Self {
        VarMap::default()
    }

    /// The solver variable for a tuple, allocating one if needed.
    pub fn var(&mut self, id: TupleId) -> Var {
        match self.to_var.get(&id) {
            Some(&v) => v,
            None => {
                let v = self.to_tuple.len() as Var + 1;
                self.to_var.insert(id, v);
                self.to_tuple.push(id);
                v
            }
        }
    }

    /// The solver variable for a tuple, if already allocated.
    pub fn lookup(&self, id: TupleId) -> Option<Var> {
        self.to_var.get(&id).copied()
    }

    /// The tuple for a solver variable.
    pub fn tuple(&self, var: Var) -> Option<TupleId> {
        self.to_tuple.get(var as usize - 1).copied()
    }

    /// Number of allocated variables.
    pub fn len(&self) -> usize {
        self.to_tuple.len()
    }

    /// Whether no variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.to_tuple.is_empty()
    }

    /// All allocated variables (1..=len), the objective of min-ones.
    pub fn all_vars(&self) -> Vec<Var> {
        (1..=self.to_tuple.len() as Var).collect()
    }

    /// Convert a set of true solver variables back into a tuple selection.
    pub fn selection_from_vars(&self, true_vars: &[Var]) -> TupleSelection {
        TupleSelection::from_ids(true_vars.iter().filter_map(|&v| self.tuple(v)))
    }
}

/// Translate a provenance expression into a solver formula, registering every
/// mentioned tuple in the [`VarMap`].
pub fn encode_provenance(prv: &BoolExpr, vars: &mut VarMap) -> Formula {
    match prv {
        BoolExpr::True => Formula::True,
        BoolExpr::False => Formula::False,
        BoolExpr::Var(id) => Formula::var(vars.var(*id)),
        BoolExpr::And(parts) => {
            Formula::and(parts.iter().map(|p| encode_provenance(p, vars)).collect())
        }
        BoolExpr::Or(parts) => {
            Formula::or(parts.iter().map(|p| encode_provenance(p, vars)).collect())
        }
        BoolExpr::Not(inner) => Formula::not(encode_provenance(inner, vars)),
    }
}

/// Foreign-key implication clauses for every tuple currently registered in
/// the map (Section 4.3): if a child tuple is retained, its referenced parent
/// tuple must be retained as well. Parents not yet registered are added to
/// the map (they may need to be part of the witness), and the closure is
/// iterated until no new tuples appear.
pub fn foreign_key_clauses(db: &Database, vars: &mut VarMap) -> Result<Vec<Formula>> {
    let mut clauses = Vec::new();
    loop {
        let before = vars.len();
        // Snapshot of currently known tuples.
        let known: Vec<TupleId> = (1..=vars.len() as Var)
            .filter_map(|v| vars.tuple(v))
            .collect();
        for fk in db.constraints().foreign_keys() {
            for (child, parent) in fk.referenced_tuples(db)? {
                if !known.contains(&child) {
                    continue;
                }
                if let Some(parent) = parent {
                    let c = vars.var(child);
                    let p = vars.var(parent);
                    clauses.push(Formula::implies(Formula::var(c), Formula::var(p)));
                }
            }
        }
        if vars.len() == before {
            break;
        }
        // New parents were registered; they may themselves be children of
        // further foreign keys, so run another round (clauses are rebuilt
        // from scratch to avoid duplicates).
        clauses.clear();
    }
    // Deduplicate.
    clauses.sort_by_key(|f| format!("{f:?}"));
    clauses.dedup();
    Ok(clauses)
}

/// Pair of (tuple-id, tuple-id) foreign-key edges restricted to the tuples in
/// the map — used by the SMT-LIB rendering helpers.
pub fn foreign_key_edges(db: &Database, vars: &VarMap) -> Result<Vec<(TupleId, TupleId)>> {
    let mut edges = Vec::new();
    for fk in db.constraints().foreign_keys() {
        for (child, parent) in fk.referenced_tuples(db)? {
            if vars.lookup(child).is_some() {
                if let Some(parent) = parent {
                    edges.push((child, parent));
                }
            }
        }
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::testdata;
    use ratest_solver::minones::{minimize_ones, MinOnesOptions};

    fn t(rel: u32, row: u32) -> TupleId {
        TupleId::new(rel, row)
    }

    #[test]
    fn varmap_round_trips() {
        let mut m = VarMap::new();
        let a = m.var(t(0, 0));
        let b = m.var(t(1, 3));
        assert_ne!(a, b);
        assert_eq!(m.var(t(0, 0)), a, "idempotent");
        assert_eq!(m.tuple(a), Some(t(0, 0)));
        assert_eq!(m.lookup(t(1, 3)), Some(b));
        assert_eq!(m.lookup(t(9, 9)), None);
        assert_eq!(m.len(), 2);
        let sel = m.selection_from_vars(&[a]);
        assert!(sel.contains(t(0, 0)));
        assert!(!sel.contains(t(1, 3)));
        assert_eq!(m.all_vars(), vec![1, 2]);
    }

    #[test]
    fn provenance_encoding_preserves_semantics() {
        // t1 (t4 + t5) ¬(t1 t4 t5)
        let prv = BoolExpr::and(vec![
            BoolExpr::var(t(0, 0)),
            BoolExpr::or2(BoolExpr::var(t(1, 0)), BoolExpr::var(t(1, 1))),
            BoolExpr::and(vec![
                BoolExpr::var(t(0, 0)),
                BoolExpr::var(t(1, 0)),
                BoolExpr::var(t(1, 1)),
            ])
            .negate(),
        ]);
        let mut vars = VarMap::new();
        let f = encode_provenance(&prv, &mut vars);
        assert_eq!(vars.len(), 3);
        let sol = minimize_ones(&f, &vars.all_vars(), &MinOnesOptions::default()).unwrap();
        // Minimum model keeps the student and exactly one registration.
        assert_eq!(sol.cost, 2);
        let sel = vars.selection_from_vars(&sol.true_vars);
        assert!(sel.contains(t(0, 0)));
    }

    #[test]
    fn foreign_keys_become_implications() {
        let db = testdata::figure1_db();
        let mut vars = VarMap::new();
        // Register only Mary's first registration; the FK closure must pull in
        // Mary's student tuple as a variable and emit the implication.
        vars.var(t(1, 0));
        let clauses = foreign_key_clauses(&db, &mut vars).unwrap();
        assert_eq!(clauses.len(), 1);
        assert!(vars.lookup(t(0, 0)).is_some());
        let edges = foreign_key_edges(&db, &vars).unwrap();
        assert!(edges.contains(&(t(1, 0), t(0, 0))));

        // Solving provenance + FK clauses never selects a registration
        // without its student.
        let prv = BoolExpr::var(t(1, 0));
        let mut f_parts = vec![encode_provenance(&prv, &mut vars)];
        f_parts.extend(foreign_key_clauses(&db, &mut vars).unwrap());
        let f = Formula::and(f_parts);
        let sol = minimize_ones(&f, &vars.all_vars(), &MinOnesOptions::default()).unwrap();
        assert_eq!(sol.cost, 2);
    }

    #[test]
    fn empty_varmap_produces_no_clauses() {
        let db = testdata::figure1_db();
        let mut vars = VarMap::new();
        assert!(foreign_key_clauses(&db, &mut vars).unwrap().is_empty());
        assert!(vars.is_empty());
    }
}
