//! Poly-time special cases of the smallest witness problem (Table 1).
//!
//! The general problem is NP-hard (even in data complexity once projection,
//! join and difference are combined — Theorem 8), but several restricted
//! classes admit direct algorithms:
//!
//! * **monotone pairs** (SJ, SPU, JU*, SPJU): the provenance of the chosen
//!   output tuple is negation-free, so its DNF's smallest minterm is the
//!   smallest witness ([`monotone`], Theorems 1, 2, 5, 6),
//! * **SPJUD\*** (differences only at the top): the smallest witness is a
//!   union of minimal witnesses of the constituent SPJU sub-queries
//!   ([`spjud_star`], Theorem 7).
//!
//! The [`crate::pipeline`] dispatches to these when the classifier proves the
//! pair tractable and falls back to the solver otherwise.

pub mod monotone;
pub mod spjud_star;

pub use monotone::{smallest_witness_monotone, smallest_witness_monotone_with_results};
pub use spjud_star::smallest_witness_spjud_star;
