//! Smallest witnesses for monotone (SPJU) query pairs via DNF minterms
//! (Theorems 1, 2, 5 and 6 of the paper).
//!
//! When both queries are monotone and `t ∈ Q1(D) \ Q2(D)`, monotonicity of
//! `Q2` guarantees `t ∉ Q2(D')` for every `D' ⊆ D`, so it suffices to find
//! the smallest witness of `t` w.r.t. `Q1` alone. That provenance is
//! negation-free; expanding it to DNF and taking the smallest minterm gives
//! the optimum directly, no solver needed.

use crate::error::{RatestError, Result};
use crate::pipeline::Timings;
use crate::problem::{
    check_distinguishes, differing_tuples, verify_candidate, CandidateEval, Counterexample, Witness,
};
use ratest_provenance::annotate::annotate_with_params;
use ratest_provenance::Dnf;
use ratest_ra::ast::Query;
use ratest_ra::builder::QueryBuilder;
use ratest_ra::classify::{classify_pair, QueryClass};
use ratest_ra::eval::Params;
use ratest_ra::rewrite::push_selections_down;
use ratest_ra::typecheck::output_schema;
use ratest_storage::{Database, TupleSelection};
use std::time::Instant;

/// Maximum number of DNF minterms expanded before giving up (the caller then
/// falls back to the solver path).
pub const DEFAULT_DNF_LIMIT: usize = 200_000;

/// Solve SWP for a monotone pair by DNF expansion.
///
/// Returns [`RatestError::Unsupported`] when the pair is not monotone or when
/// the DNF exceeds [`DEFAULT_DNF_LIMIT`] minterms.
pub fn smallest_witness_monotone(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    ctx: &CandidateEval,
) -> Result<(Counterexample, Timings)> {
    let mut timings = Timings::default();
    let start = Instant::now();
    let (r1, r2) = check_distinguishes(q1, q2, db, params)?;
    timings.raw_eval = start.elapsed();
    let cex =
        smallest_witness_monotone_with_results(q1, q2, db, params, &r1, &r2, &mut timings, ctx)?;
    timings.total = timings.raw_eval + timings.provenance + timings.solver;
    Ok((cex, timings))
}

/// The monotone algorithm operating on *precomputed* query results, so a
/// batch caller can evaluate the (shared) reference query once per cohort.
#[allow(clippy::too_many_arguments)]
pub fn smallest_witness_monotone_with_results(
    q1: &Query,
    q2: &Query,
    db: &Database,
    params: &Params,
    r1: &ratest_ra::eval::ResultSet,
    r2: &ratest_ra::eval::ResultSet,
    timings: &mut Timings,
    ctx: &CandidateEval,
) -> Result<Counterexample> {
    let class = classify_pair(q1, q2);
    if !class.is_monotone() || class == QueryClass::Aggregate {
        return Err(RatestError::Unsupported(format!(
            "the monotone algorithm requires an SPJU pair, got {class}"
        )));
    }

    let diffs = differing_tuples(r1, r2);
    if diffs.is_empty() {
        return Err(RatestError::QueriesAgreeOnInstance);
    }

    // Different differing tuples can have witnesses of different sizes (a
    // tuple produced by a join needs one base tuple per joined relation, a
    // tuple that survives a projection needs just one), so scan them all and
    // keep the global minimum; each one is a cheap single-tuple DNF.
    let mut best: Option<(TupleSelection, Vec<ratest_storage::Value>, bool)> = None;
    for (tuple, from_q1) in diffs {
        if let Some((sel, _, _)) = &best {
            if sel.len() == 1 {
                break; // a singleton witness cannot be beaten
            }
        }
        // Provenance of the tuple w.r.t. the query that produced it, computed
        // with a pushed-down tuple-equality selection. Monotonicity of the
        // other query guarantees the tuple stays out of its result on every
        // sub-instance, so no flipped direction needs to be considered.
        let start = Instant::now();
        let producer = if from_q1 { q1 } else { q2 };
        let schema = output_schema(producer, db)?;
        // Skip the single-tuple selection when the output schema has duplicate
        // column names (name-based selection would be ambiguous).
        let unique_names = schema
            .names()
            .collect::<std::collections::HashSet<_>>()
            .len()
            == schema.arity();
        let pushed = if unique_names {
            let predicate = crate::optsigma::tuple_equality_predicate(&schema, &tuple);
            let selected = QueryBuilder::from_query(producer.clone())
                .select(predicate)
                .build();
            push_selections_down(&selected, db)?
        } else {
            producer.clone()
        };
        let annotated = annotate_with_params(&pushed, db, params)?;
        let Some(prv) = annotated.provenance_of(&tuple).cloned() else {
            continue;
        };
        timings.provenance += start.elapsed();

        // Expand to DNF and pick the smallest minterm. Foreign-key closure is
        // applied afterwards by `build_counterexample`; among minterms of
        // equal size we prefer the one whose closure is smallest.
        let start = Instant::now();
        let dnf = Dnf::from_monotone(&prv, DEFAULT_DNF_LIMIT).map_err(|e| match e {
            ratest_provenance::ProvenanceError::DnfTooLarge { limit } => RatestError::Unsupported(
                format!("provenance DNF exceeds {limit} minterms; use the solver path"),
            ),
            other => RatestError::Provenance(other),
        })?;
        let mut minterms: Vec<_> = dnf.minterms().to_vec();
        minterms.sort_by_key(|m| m.len());
        let smallest_len = minterms.first().map(|m| m.len()).unwrap_or(0);
        for m in minterms.iter().take_while(|m| m.len() == smallest_len) {
            let mut sel = TupleSelection::from_ids(m.iter().copied());
            sel.close_under_foreign_keys(db)?;
            let better = best
                .as_ref()
                .map(|(b, _, _)| sel.len() < b.len())
                .unwrap_or(true);
            if better {
                best = Some((sel, tuple.clone(), from_q1));
            }
        }
        timings.solver += start.elapsed();
    }
    let (selection, tuple, from_q1) = best.ok_or(RatestError::QueriesAgreeOnInstance)?;

    let witness = Witness {
        tuple,
        from_q1,
        selection: selection.clone(),
    };
    verify_candidate(q1, q2, db, selection, Some(witness), params, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratest_ra::builder::{col, lit, rel};
    use ratest_ra::testdata;

    #[test]
    fn sj_pair_yields_one_tuple_per_joined_relation() {
        // Q1: CS registrations of students; Q2: ECON registrations (disjoint).
        let db = testdata::figure1_db();
        let q1 = rel("Student")
            .rename("s")
            .join_on(
                rel("Registration").rename("r").build(),
                col("s.name")
                    .eq(col("r.name"))
                    .and(col("r.dept").eq(lit("CS"))),
            )
            .build();
        let q2 = rel("Student")
            .rename("s")
            .join_on(
                rel("Registration").rename("r").build(),
                col("s.name")
                    .eq(col("r.name"))
                    .and(col("r.dept").eq(lit("ECON"))),
            )
            .build();
        let (cex, _) =
            smallest_witness_monotone(&q1, &q2, &db, &Params::new(), &CandidateEval::none())
                .unwrap();
        // One student plus one registration (Theorem 1: one tuple per relation).
        assert_eq!(cex.size(), 2);
    }

    #[test]
    fn spu_pair_yields_a_single_tuple_witness() {
        let db = testdata::figure1_db();
        // Q1: names of all students; Q2: names of ECON students only.
        let q1 = rel("Student").project(&["name"]).build();
        let q2 = rel("Student")
            .select(col("major").eq(lit("ECON")))
            .project(&["name"])
            .build();
        let (cex, _) =
            smallest_witness_monotone(&q1, &q2, &db, &Params::new(), &CandidateEval::none())
                .unwrap();
        assert_eq!(cex.size(), 1);
    }

    #[test]
    fn pj_pair_matches_the_solver_answer() {
        let db = testdata::figure1_db();
        // Students who registered for some CS course (Q2 of Example 1) vs
        // students who registered for course 330 specifically.
        let q1 = testdata::example1_q2();
        let q2 = rel("Student")
            .rename("s")
            .join_on(
                rel("Registration").rename("r").build(),
                col("s.name")
                    .eq(col("r.name"))
                    .and(col("r.course").eq(lit("330"))),
            )
            .project(&["s.name", "s.major"])
            .build();
        let (cex, _) =
            smallest_witness_monotone(&q1, &q2, &db, &Params::new(), &CandidateEval::none())
                .unwrap();
        let (via_solver, _) = crate::optsigma::smallest_witness_optsigma(
            &q1,
            &q2,
            &db,
            &Params::new(),
            &crate::optsigma::OptSigmaOptions::default(),
        )
        .unwrap();
        assert_eq!(cex.size(), via_solver.size());
        // FK closure: the registration brings its student, so size is 2.
        assert_eq!(cex.size(), 2);
    }

    #[test]
    fn non_monotone_pairs_are_rejected() {
        let db = testdata::figure1_db();
        assert!(matches!(
            smallest_witness_monotone(
                &testdata::example1_q1(),
                &testdata::example1_q2(),
                &db,
                &Params::new(),
                &CandidateEval::none()
            ),
            Err(RatestError::Unsupported(_))
        ));
    }
}
