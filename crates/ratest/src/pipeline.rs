//! The end-to-end RATest pipeline: classify the query pair, dispatch to the
//! appropriate algorithm, and package the result with timing breakdowns.
//!
//! This is the programmatic equivalent of submitting a query to the RATest
//! web tool (Section 6): the caller provides the reference query, the test
//! query and the hidden test instance; the pipeline either reports that the
//! queries agree on the instance or returns a small counterexample together
//! with the results of both queries on it.

use crate::aggregates::agg_basic::{smallest_counterexample_agg_basic, AggBasicOptions};
use crate::aggregates::agg_opt::{smallest_counterexample_agg_opt, AggOptOptions};
use crate::aggregates::agg_param::{smallest_counterexample_agg_param, AggParamOptions};
use crate::basic::{
    smallest_counterexample_basic, smallest_counterexample_from_annotations, BasicOptions,
};
use crate::error::{RatestError, Result};
use crate::optsigma::{smallest_witness_optsigma, OptSigmaOptions};
use crate::polytime::{
    smallest_witness_monotone, smallest_witness_monotone_with_results, smallest_witness_spjud_star,
};
use crate::problem::{CandidateEval, Counterexample, DeltaPair};
use crate::session::{Budget, EventHandle, ExplainEvent, Phase};
use ratest_delta::{DeltaPlan, SharedDeltaPlan};
use ratest_provenance::annotate::{annotate_instrumented, difference_of, AnnotatedResult};
use ratest_ra::ast::Query;
use ratest_ra::classify::{classify_pair, QueryClass};
use ratest_ra::eval::{Params, ResultSet};
use ratest_ra::typecheck::output_schema;
use ratest_solver::incremental::SolverReuse;
use ratest_storage::Database;
use ratest_telemetry::MetricsHandle;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cooperative-cancellation flag.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// flag. The counterexample algorithms poll it at their loop boundaries —
/// once per candidate tuple / candidate group / solve attempt — and bail out
/// with [`RatestError::Cancelled`], so a caller that abandons a run (e.g.
/// the grading engine on a per-job timeout) can stop it from consuming CPU.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, uncancelled flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Request cancellation. Every clone of the flag observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Return [`RatestError::Cancelled`] when cancellation was requested —
    /// the one-liner the algorithm loops call.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(RatestError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// How the min-ones problem is solved (the "solver strategy" axis of
/// Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverStrategy {
    /// Exact optimization (binary-search descent on the cardinality bound) —
    /// the paper's `Opt`.
    Optimize,
    /// Bounded model enumeration keeping the best model seen — the paper's
    /// `Naive-k`.
    Enumerate {
        /// Maximum number of models to enumerate (Δ in Algorithm 1).
        max_models: usize,
    },
}

/// Which top-level algorithm the pipeline should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Choose automatically based on the query classes (default).
    Auto,
    /// Force Algorithm 1 (`Basic`, solves SCP).
    Basic,
    /// Force Algorithm 2 (`Optσ`, solves SWP for one tuple).
    OptSigma,
    /// Force the monotone poly-time algorithm (SPJU pairs only).
    PolytimeMonotone,
    /// Force the SPJUD\* poly-time algorithm.
    PolytimeSpjudStar,
    /// Force `Agg-Basic`.
    AggBasic,
    /// Force `Agg-Param` (parameterized counterexamples).
    AggParam,
    /// Force `Agg-Opt` (Algorithm 3 heuristic).
    AggOpt,
}

/// Per-phase wall-clock timing breakdown, matching the components reported in
/// Figures 3, 4 and 6 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timings {
    /// Evaluating the raw queries (`raw`).
    pub raw_eval: Duration,
    /// Computing provenance (`prov-all` / `prov-sp`).
    pub provenance: Duration,
    /// Constraint solving (`solver-*`).
    pub solver: Duration,
    /// Total of the above.
    pub total: Duration,
}

impl Timings {
    /// Add another breakdown onto this one (used when averaging over a
    /// workload).
    pub fn accumulate(&mut self, other: &Timings) {
        self.raw_eval += other.raw_eval;
        self.provenance += other.provenance;
        self.solver += other.solver;
        self.total += other.total;
    }
}

/// The option bag every explanation run carries (one per
/// [`crate::session::Session`], overridable per request).
#[derive(Debug, Clone)]
pub struct RatestOptions {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Solver strategy for the SPJUD algorithms.
    pub strategy: SolverStrategy,
    /// Whether `Optσ` pushes the tuple-equality selection down before
    /// computing provenance.
    pub selection_pushdown: bool,
    /// Original parameter setting λ for parameterized queries.
    pub parameters: Params,
    /// The unified resource budget: cancellation + deadline + step quota,
    /// polled at algorithm loop boundaries *and* inside the
    /// evaluator/annotator row loops. Replaces the pre-session scatter of
    /// per-call timeouts and bare [`CancelFlag`]s.
    pub budget: Budget,
    /// Typed progress events ([`crate::session::ExplainEvent`]) are emitted
    /// here; the default handle drops them.
    pub events: EventHandle,
    /// Metrics sink for the whole run: evaluator row counts, provenance
    /// sizes, solver statistics and per-phase wall-clock durations are
    /// recorded here. The default handle records nothing.
    pub metrics: MetricsHandle,
    /// Warm solver shared across runs carrying these options. `None` (the
    /// default) gives every explain its own warm solver — still incremental
    /// within the run, and deterministic even when runs race on threads. A
    /// repair request passes `Some` to share one warm solver across its
    /// whole candidate cohort.
    pub solver_reuse: Option<SolverReuse>,
    /// Use the incremental solving layer (default). `false` forces the
    /// historical from-scratch descent — the bench comparison leg.
    pub incremental_solver: bool,
    /// Answer candidate sub-instances with the incremental delta-evaluation
    /// engine (default). `false` forces scratch re-evaluation of every
    /// candidate — the A/B and differential-testing leg. Results are
    /// byte-identical either way.
    pub delta_eval: bool,
    /// The compiled delta plans of the current request. Set internally by
    /// the shared-reference pipeline once the submission's plan compiles;
    /// callers normally leave it `None`.
    pub delta_pair: Option<DeltaPair>,
}

impl Default for RatestOptions {
    fn default() -> Self {
        RatestOptions {
            algorithm: Algorithm::Auto,
            strategy: SolverStrategy::Optimize,
            selection_pushdown: true,
            parameters: Params::new(),
            budget: Budget::unlimited(),
            events: EventHandle::none(),
            metrics: MetricsHandle::none(),
            solver_reuse: None,
            incremental_solver: true,
            delta_eval: true,
            delta_pair: None,
        }
    }
}

/// The outcome of running the pipeline.
#[derive(Debug, Clone)]
pub struct ExplainOutcome {
    /// The counterexample, or `None` when the queries agree on the instance
    /// (i.e. the test passes).
    pub counterexample: Option<Counterexample>,
    /// The query class the pair was classified into.
    pub class: QueryClass,
    /// Which algorithm actually ran.
    pub algorithm_used: Algorithm,
    /// Timing breakdown of the run.
    pub timings: Timings,
}

/// Run RATest on a query pair.
///
/// One-shot compatibility wrapper: each call re-prepares everything and
/// shares no state with any other call. New code should build a
/// [`crate::session::Session`] and use [`crate::session::Session::explain`],
/// which amortizes reference preparation and carries one [`Budget`] and
/// event sink for the whole dialogue. The wrapper is bit-for-bit equivalent
/// to `Session::explain_pair` on a fresh session (pinned by
/// `tests/session_api.rs`).
#[deprecated(
    since = "0.2.0",
    note = "build a `Session` (`Session::builder(db).build()`) and call `explain_pair`"
)]
pub fn explain(
    q1: &Query,
    q2: &Query,
    db: &Database,
    options: &RatestOptions,
) -> Result<ExplainOutcome> {
    explain_impl(q1, q2, db, options)
}

/// The non-deprecated entry the session layer calls.
pub(crate) fn explain_impl(
    q1: &Query,
    q2: &Query,
    db: &Database,
    options: &RatestOptions,
) -> Result<ExplainOutcome> {
    let outcome = explain_inner(q1, q2, db, options, true)?;
    emit_verdict(options, &outcome);
    Ok(outcome)
}

/// Emit the final [`ExplainEvent::Verdict`] for a finished run, and fold the
/// run's outcome into the metrics registry: deterministic counters for the
/// verdict and counterexample size, volatile duration totals for the phase
/// timings (wall-clock values never enter the byte-reproducible sections).
fn emit_verdict(options: &RatestOptions, outcome: &ExplainOutcome) {
    options.events.emit(ExplainEvent::Verdict {
        agrees: outcome.counterexample.is_none(),
        counterexample_size: outcome.counterexample.as_ref().map(|c| c.size()),
        class: outcome.class,
        algorithm: outcome.algorithm_used,
    });
    options.metrics.counter_inc("explain.runs");
    match &outcome.counterexample {
        None => options.metrics.counter_inc("explain.agreements"),
        Some(cex) => {
            options.metrics.counter_inc("explain.counterexamples");
            options
                .metrics
                .observe("explain.counterexample_size", cex.size() as u64);
        }
    }
    options
        .metrics
        .record_duration("explain.raw_eval_ms", outcome.timings.raw_eval);
    options
        .metrics
        .record_duration("explain.provenance_ms", outcome.timings.provenance);
    options
        .metrics
        .record_duration("explain.solver_ms", outcome.timings.solver);
    options
        .metrics
        .record_duration("explain.total_ms", outcome.timings.total);
}

/// Candidate-verification context handed to the search algorithms: the
/// request's delta plans (if compiled) plus the metrics/interrupt pair the
/// delta legs account against.
fn candidate_ctx(options: &RatestOptions) -> CandidateEval {
    CandidateEval {
        delta: options.delta_pair.clone(),
        metrics: options.metrics.clone(),
        interrupt: options.budget.interrupt(),
    }
}

/// The full pipeline. The boolean distinguishes a fresh search from a
/// fallback re-entry out of the shared-reference path (same logical
/// search; kept so verdict events are emitted exactly once by the
/// wrappers).
fn explain_inner(
    q1: &Query,
    q2: &Query,
    db: &Database,
    options: &RatestOptions,
    _top_level: bool,
) -> Result<ExplainOutcome> {
    options.budget.check()?;
    let class = classify_pair(q1, q2);

    // Fast path: do the queries agree on the instance? (Also validates
    // union compatibility.)
    options.events.emit(ExplainEvent::PhaseStarted {
        phase: Phase::RawEval,
    });
    let (r1, r2) = crate::problem::check_distinguishes_instrumented(
        q1,
        q2,
        db,
        &options.parameters,
        &options.budget,
        &options.metrics,
    )?;
    if r1.set_eq(&r2) {
        return Ok(ExplainOutcome {
            counterexample: None,
            class,
            algorithm_used: Algorithm::Auto,
            timings: Timings::default(),
        });
    }

    let algorithm = match options.algorithm {
        Algorithm::Auto => match class {
            QueryClass::Aggregate => {
                if q1.params().is_empty() && q2.params().is_empty() {
                    Algorithm::AggOpt
                } else {
                    Algorithm::AggParam
                }
            }
            c if c.is_monotone() => Algorithm::PolytimeMonotone,
            _ => Algorithm::OptSigma,
        },
        other => other,
    };

    // One warm solver per algorithm run unless the caller supplied a shared
    // handle spanning several explains (e.g. a repair request's cohort).
    let reuse = |options: &RatestOptions| options.solver_reuse.clone().unwrap_or_default();
    let run = |algorithm: Algorithm| -> Result<(Counterexample, Timings)> {
        options.budget.check()?;
        match algorithm {
            Algorithm::Basic => smallest_counterexample_basic(
                q1,
                q2,
                db,
                &options.parameters,
                &BasicOptions {
                    strategy: options.strategy,
                    budget: options.budget.clone(),
                    events: options.events.clone(),
                    metrics: options.metrics.clone(),
                    solver_reuse: reuse(options),
                    incremental_solver: options.incremental_solver,
                    delta: options.delta_pair.clone(),
                    ..Default::default()
                },
            ),
            Algorithm::OptSigma => smallest_witness_optsigma(
                q1,
                q2,
                db,
                &options.parameters,
                &OptSigmaOptions {
                    selection_pushdown: options.selection_pushdown,
                    strategy: options.strategy,
                    budget: options.budget.clone(),
                    events: options.events.clone(),
                    metrics: options.metrics.clone(),
                    solver_reuse: reuse(options),
                    incremental_solver: options.incremental_solver,
                    delta: options.delta_pair.clone(),
                },
            ),
            Algorithm::PolytimeMonotone => {
                smallest_witness_monotone(q1, q2, db, &options.parameters, &candidate_ctx(options))
            }
            Algorithm::PolytimeSpjudStar => smallest_witness_spjud_star(
                q1,
                q2,
                db,
                &options.parameters,
                &candidate_ctx(options),
            ),
            Algorithm::AggBasic => smallest_counterexample_agg_basic(
                q1,
                q2,
                db,
                &options.parameters,
                &AggBasicOptions {
                    budget: options.budget.clone(),
                    events: options.events.clone(),
                    metrics: options.metrics.clone(),
                    solver_reuse: reuse(options),
                    incremental_solver: options.incremental_solver,
                    delta: options.delta_pair.clone(),
                    ..Default::default()
                },
            ),
            Algorithm::AggParam => smallest_counterexample_agg_param(
                q1,
                q2,
                db,
                &options.parameters,
                &AggParamOptions {
                    budget: options.budget.clone(),
                    events: options.events.clone(),
                    metrics: options.metrics.clone(),
                    solver_reuse: reuse(options),
                    incremental_solver: options.incremental_solver,
                    delta: options.delta_pair.clone(),
                    ..Default::default()
                },
            ),
            Algorithm::AggOpt => smallest_counterexample_agg_opt(
                q1,
                q2,
                db,
                &options.parameters,
                &AggOptOptions {
                    optsigma: OptSigmaOptions {
                        budget: options.budget.clone(),
                        events: options.events.clone(),
                        metrics: options.metrics.clone(),
                        solver_reuse: reuse(options),
                        incremental_solver: options.incremental_solver,
                        ..Default::default()
                    },
                    // The outer verification evaluates the *original* query
                    // pair, so it gets the request's delta plans; the inner
                    // `Optσ` run works on the stripped inner queries, which
                    // the plans do not describe.
                    delta: options.delta_pair.clone(),
                    ..Default::default()
                },
            ),
            Algorithm::Auto => unreachable!("Auto is resolved above"),
        }
    };

    // Run the chosen algorithm; fall back to the more general path when a
    // specialized algorithm declines (DNF too large, unsupported aggregate
    // shape) or when a heuristic fails to find an acceptable model (e.g.
    // `Agg-Opt` on a HAVING threshold that no small sub-instance can meet —
    // the challenge of Example 5, which `Agg-Basic` handles by keeping the
    // whole group).
    let fallback_target = if class == QueryClass::Aggregate {
        Algorithm::AggBasic
    } else {
        Algorithm::OptSigma
    };
    let (cex, timings, used) = match run(algorithm) {
        Ok((cex, t)) => (cex, t, algorithm),
        Err(RatestError::Unsupported(_) | RatestError::Solver(_))
            if algorithm != fallback_target =>
        {
            options.metrics.counter_inc("explain.fallbacks");
            let (cex, t) = run(fallback_target)?;
            (cex, t, fallback_target)
        }
        Err(e) => return Err(e),
    };

    Ok(ExplainOutcome {
        counterexample: Some(cex),
        class,
        algorithm_used: used,
        timings,
    })
}

/// A reference (instructor) query prepared once per batch: its result and
/// provenance annotation over the hidden instance are computed a single time
/// and shared — via cheap [`Arc`] clones — across every worker grading a
/// submission against it.
///
/// All fields are immutable after [`PreparedReference::prepare`], so the
/// handle is `Clone + Send + Sync` and can be moved freely across a thread
/// pool.
#[derive(Debug, Clone)]
pub struct PreparedReference {
    query: Arc<Query>,
    params: Params,
    result: Arc<ResultSet>,
    /// `None` when the reference is an aggregate query (the SPJUD annotator
    /// does not apply); [`explain_with_reference`] then falls back to the
    /// unshared pipeline.
    annotation: Option<Arc<AnnotatedResult>>,
    /// Compiled delta plan for the reference (self-checked against
    /// `result` during preparation); `None` when delta evaluation is off or
    /// compilation declined.
    delta: Option<SharedDeltaPlan>,
    /// Warm solver pool shared across every explain request against this
    /// reference (a grading cohort's common encoding).
    solver_pool: SolverReuse,
    /// How many requests have drawn from `solver_pool`, for the
    /// `solver.pool_cross_request_reuses` counter.
    pool_uses: Arc<std::sync::atomic::AtomicU64>,
}

impl PreparedReference {
    /// Evaluate and annotate the reference query once.
    pub fn prepare(q1: &Query, db: &Database, params: &Params) -> Result<PreparedReference> {
        PreparedReference::prepare_budgeted(q1, db, params, &Budget::unlimited())
    }

    /// [`PreparedReference::prepare`] under a [`Budget`]: both the
    /// evaluation and the annotation poll the budget inside their row loops.
    pub fn prepare_budgeted(
        q1: &Query,
        db: &Database,
        params: &Params,
        budget: &Budget,
    ) -> Result<PreparedReference> {
        PreparedReference::prepare_instrumented(q1, db, params, budget, &MetricsHandle::none())
    }

    /// [`PreparedReference::prepare_budgeted`] plus telemetry: the reference
    /// evaluation and annotation record their row counters into `metrics`,
    /// and `explain.references_prepared` counts the preparation itself.
    pub fn prepare_instrumented(
        q1: &Query,
        db: &Database,
        params: &Params,
        budget: &Budget,
        metrics: &MetricsHandle,
    ) -> Result<PreparedReference> {
        PreparedReference::prepare_with_delta(q1, db, params, budget, metrics, true)
    }

    /// [`PreparedReference::prepare_instrumented`] with an explicit
    /// delta-evaluation switch: when `delta_eval` is on, the reference query
    /// is additionally compiled into a [`DeltaPlan`] (self-checked against
    /// the scratch result) so every candidate sub-instance of every request
    /// against this reference can be answered incrementally.
    pub fn prepare_with_delta(
        q1: &Query,
        db: &Database,
        params: &Params,
        budget: &Budget,
        metrics: &MetricsHandle,
        delta_eval: bool,
    ) -> Result<PreparedReference> {
        let interrupt = budget.interrupt();
        let result = ratest_ra::eval::evaluate_instrumented(q1, db, params, &interrupt, metrics)?;
        let annotation = if q1.has_aggregates() {
            None
        } else {
            Some(Arc::new(annotate_instrumented(
                q1, db, params, &interrupt, metrics,
            )?))
        };
        let delta = if delta_eval {
            match DeltaPlan::compile(q1, db, params, &interrupt, Some(&result)) {
                Ok(plan) => {
                    metrics.counter_inc("delta.plans_compiled");
                    Some(SharedDeltaPlan::new(plan))
                }
                Err(_) => None,
            }
        } else {
            None
        };
        metrics.counter_inc("explain.references_prepared");
        Ok(PreparedReference {
            query: Arc::new(q1.clone()),
            params: params.clone(),
            result: Arc::new(result),
            annotation,
            delta,
            solver_pool: SolverReuse::fresh(),
            pool_uses: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    /// The reference query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The reference query's result on the instance it was prepared on.
    pub fn result(&self) -> &ResultSet {
        &self.result
    }

    /// The shared provenance annotation (absent for aggregate references).
    pub fn annotation(&self) -> Option<&AnnotatedResult> {
        self.annotation.as_deref()
    }

    /// The parameter binding the reference was prepared with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The compiled delta plan for the reference, when available.
    pub fn delta_plan(&self) -> Option<&SharedDeltaPlan> {
        self.delta.as_ref()
    }

    /// The warm solver pool shared across every request against this
    /// reference.
    pub fn solver_pool(&self) -> &SolverReuse {
        &self.solver_pool
    }

    /// Record one request drawing from the shared pool; returns how many
    /// requests drew from it before this one.
    pub fn note_pool_use(&self) -> u64 {
        self.pool_uses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Compile the submission's delta plan and pair it with the reference's,
    /// when delta evaluation is enabled and both plans are available with
    /// matching parameter bindings. Any compile failure quietly yields
    /// `None` — the pipeline then evaluates candidates from scratch.
    fn delta_pair_for(
        &self,
        q2: &Query,
        db: &Database,
        options: &RatestOptions,
        expected_r2: Option<&ResultSet>,
    ) -> Option<DeltaPair> {
        if !options.delta_eval {
            return None;
        }
        let q1_plan = self.delta.clone()?;
        if !q1_plan.params_match(&self.params) {
            return None;
        }
        match DeltaPlan::compile(
            q2,
            db,
            &self.params,
            &options.budget.interrupt(),
            expected_r2,
        ) {
            Ok(plan) => {
                options.metrics.counter_inc("delta.plans_compiled");
                Some(DeltaPair {
                    q1: q1_plan,
                    q2: SharedDeltaPlan::new(plan),
                })
            }
            Err(_) => None,
        }
    }
}

/// Run RATest for one submission against a [`PreparedReference`], reusing the
/// reference's result and provenance annotation instead of recomputing them
/// per pair.
///
/// Dispatch mirrors [`explain`]: monotone pairs take the poly-time DNF path
/// (sharing the reference *evaluation*); other SPJUD pairs run the exact
/// `Basic` scan over difference annotations derived from the shared
/// reference *annotation* via [`difference_of`]; aggregate pairs (no shared
/// artifact applies) fall back to the unshared pipeline.
#[deprecated(
    since = "0.2.0",
    note = "build a `Session`, `prepare` the reference once, and call `explain`"
)]
pub fn explain_with_reference(
    reference: &PreparedReference,
    q2: &Query,
    db: &Database,
    options: &RatestOptions,
) -> Result<ExplainOutcome> {
    explain_prepared_impl(reference, q2, db, options)
}

/// The shared-reference pipeline the session layer calls.
pub(crate) fn explain_prepared_impl(
    reference: &PreparedReference,
    q2: &Query,
    db: &Database,
    options: &RatestOptions,
) -> Result<ExplainOutcome> {
    let q1 = reference.query();
    options.budget.check()?;

    // A forced algorithm choice overrides the shared dispatch entirely —
    // otherwise the same options would run different algorithms depending on
    // whether the shared path succeeds.
    if options.algorithm != Algorithm::Auto {
        let mut options = options.clone();
        options.delta_pair = reference.delta_pair_for(q2, db, &options, None);
        let outcome = explain_inner(q1, q2, db, &options, false)?;
        emit_verdict(&options, &outcome);
        return Ok(outcome);
    }

    let class = classify_pair(q1, q2);

    // Union compatibility + evaluation of the submission only — the
    // reference result is already on the handle.
    let s1 = output_schema(q1, db)?;
    let s2 = output_schema(q2, db)?;
    if !s1.union_compatible(&s2) {
        return Err(RatestError::NotUnionCompatible {
            left: s1.to_string(),
            right: s2.to_string(),
        });
    }
    let mut timings = Timings::default();
    options.events.emit(ExplainEvent::PhaseStarted {
        phase: Phase::RawEval,
    });
    let start = Instant::now();
    let r2 = ratest_ra::eval::evaluate_instrumented(
        q2,
        db,
        &reference.params,
        &options.budget.interrupt(),
        &options.metrics,
    )?;
    timings.raw_eval = start.elapsed();
    let r1 = reference.result();
    if r1.set_eq(&r2) {
        let outcome = ExplainOutcome {
            counterexample: None,
            class,
            algorithm_used: Algorithm::Auto,
            timings,
        };
        emit_verdict(options, &outcome);
        return Ok(outcome);
    }

    // The queries differ: compile the submission's delta plan (self-checked
    // against the result just computed) so every candidate loop below —
    // including the fallback re-entries — can evaluate incrementally.
    let mut options = options.clone();
    options.delta_pair = reference.delta_pair_for(q2, db, &options, Some(&r2));
    let options = &options;

    // Aggregate pairs use dedicated provenance machinery that the shared
    // annotation does not cover.
    let (ref_annotation, is_shareable) = match reference.annotation() {
        Some(ann) if !q2.has_aggregates() && class != QueryClass::Aggregate => (Some(ann), true),
        _ => (None, false),
    };
    if !is_shareable {
        let outcome = explain_inner(q1, q2, db, options, false)?;
        emit_verdict(options, &outcome);
        return Ok(outcome);
    }

    if class.is_monotone() {
        match smallest_witness_monotone_with_results(
            q1,
            q2,
            db,
            &reference.params,
            r1,
            &r2,
            &mut timings,
            &candidate_ctx(options),
        ) {
            Ok(cex) => {
                timings.total = timings.raw_eval + timings.provenance + timings.solver;
                let outcome = ExplainOutcome {
                    counterexample: Some(cex),
                    class,
                    algorithm_used: Algorithm::PolytimeMonotone,
                    timings,
                };
                emit_verdict(options, &outcome);
                return Ok(outcome);
            }
            // DNF blow-up or similar: fall through to the solver-backed path.
            Err(RatestError::Unsupported(_)) => {}
            Err(e) => return Err(e),
        }
    }

    // Solver-backed exact scan over both difference directions, with the
    // reference side of each annotation taken from the shared handle.
    let ref_annotation = ref_annotation.expect("checked above");
    options.metrics.counter_inc("explain.annotation_reuse_hits");
    options.events.emit(ExplainEvent::PhaseStarted {
        phase: Phase::Provenance,
    });
    let start = Instant::now();
    let ann_q2 = annotate_instrumented(
        q2,
        db,
        &reference.params,
        &options.budget.interrupt(),
        &options.metrics,
    )?;
    let ann_q1_minus_q2 = difference_of(ref_annotation, &ann_q2);
    let ann_q2_minus_q1 = difference_of(&ann_q2, ref_annotation);
    timings.provenance += start.elapsed();

    let basic_options = BasicOptions {
        strategy: options.strategy,
        budget: options.budget.clone(),
        events: options.events.clone(),
        metrics: options.metrics.clone(),
        solver_reuse: options.solver_reuse.clone().unwrap_or_default(),
        incremental_solver: options.incremental_solver,
        delta: options.delta_pair.clone(),
        ..Default::default()
    };
    match smallest_counterexample_from_annotations(
        q1,
        q2,
        db,
        &reference.params,
        r1,
        &r2,
        &ann_q1_minus_q2,
        &ann_q2_minus_q1,
        &basic_options,
        &mut timings,
    ) {
        Ok(cex) => {
            timings.total = timings.raw_eval + timings.provenance + timings.solver;
            let outcome = ExplainOutcome {
                counterexample: Some(cex),
                class,
                algorithm_used: Algorithm::Basic,
                timings,
            };
            emit_verdict(options, &outcome);
            Ok(outcome)
        }
        // A declined candidate set (e.g. every candidate rejected during
        // materialization) should not sink the submission: fall back to the
        // unshared pipeline, which has its own fallback chain.
        Err(RatestError::Unsupported(_) | RatestError::Solver(_)) => {
            let outcome = explain_inner(q1, q2, db, options, false)?;
            emit_verdict(options, &outcome);
            Ok(outcome)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test shorthand for the non-deprecated entry points.
    fn explain(q1: &Query, q2: &Query, db: &Database, o: &RatestOptions) -> Result<ExplainOutcome> {
        explain_impl(q1, q2, db, o)
    }
    fn explain_with_reference(
        r: &PreparedReference,
        q2: &Query,
        db: &Database,
        o: &RatestOptions,
    ) -> Result<ExplainOutcome> {
        explain_prepared_impl(r, q2, db, o)
    }
    use ratest_ra::builder::{col, lit, rel};
    use ratest_ra::testdata;
    use ratest_storage::Value;

    #[test]
    fn auto_dispatch_on_the_running_example() {
        let db = testdata::figure1_db();
        let outcome = explain(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &RatestOptions::default(),
        )
        .unwrap();
        assert_eq!(outcome.class, QueryClass::SPJUDStar);
        let cex = outcome.counterexample.unwrap();
        assert_eq!(cex.size(), 3);
    }

    #[test]
    fn equivalent_queries_return_no_counterexample() {
        let db = testdata::figure1_db();
        // Two syntactically different but equivalent queries.
        let qa = rel("Student").select(col("major").eq(lit("CS"))).build();
        let qb = rel("Student")
            .select(col("major").eq(lit("CS")).and(col("name").eq(col("name"))))
            .build();
        let outcome = explain(&qa, &qb, &db, &RatestOptions::default()).unwrap();
        assert!(outcome.counterexample.is_none());
    }

    #[test]
    fn monotone_pairs_use_the_polytime_path() {
        let db = testdata::figure1_db();
        let q1 = rel("Student").project(&["name"]).build();
        let q2 = rel("Student")
            .select(col("major").eq(lit("ECON")))
            .project(&["name"])
            .build();
        let outcome = explain(&q1, &q2, &db, &RatestOptions::default()).unwrap();
        assert_eq!(outcome.algorithm_used, Algorithm::PolytimeMonotone);
        assert_eq!(outcome.counterexample.unwrap().size(), 1);
    }

    #[test]
    fn aggregate_pairs_use_the_heuristic_and_forced_algorithms_work() {
        let db = testdata::figure1_db();
        let outcome = explain(
            &testdata::example4_q1(),
            &testdata::example4_q2(),
            &db,
            &RatestOptions::default(),
        )
        .unwrap();
        assert_eq!(outcome.algorithm_used, Algorithm::AggOpt);
        assert!(outcome.counterexample.unwrap().size() <= 2);

        let outcome = explain(
            &testdata::example5_q1(),
            &testdata::example5_q2(),
            &db,
            &RatestOptions {
                algorithm: Algorithm::AggBasic,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.algorithm_used, Algorithm::AggBasic);
        assert_eq!(outcome.counterexample.unwrap().size(), 4);
    }

    #[test]
    fn parameterized_aggregates_dispatch_to_agg_param() {
        let db = testdata::figure1_db();
        let mut params = Params::new();
        params.insert("numCS".into(), Value::Int(3));
        let outcome = explain(
            &testdata::example6_q1(),
            &testdata::example6_q2(),
            &db,
            &RatestOptions {
                parameters: params,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.algorithm_used, Algorithm::AggParam);
        assert!(outcome.counterexample.unwrap().size() <= 2);
    }

    #[test]
    fn forced_basic_and_optsigma_agree_with_each_other() {
        let db = testdata::figure1_db();
        let mut sizes = Vec::new();
        for algorithm in [
            Algorithm::Basic,
            Algorithm::OptSigma,
            Algorithm::PolytimeSpjudStar,
        ] {
            let outcome = explain(
                &testdata::example1_q1(),
                &testdata::example1_q2(),
                &db,
                &RatestOptions {
                    algorithm,
                    ..Default::default()
                },
            )
            .unwrap();
            sizes.push(outcome.counterexample.unwrap().size());
        }
        assert!(sizes.iter().all(|&s| s == sizes[0]), "sizes: {sizes:?}");
    }

    #[test]
    fn pipeline_types_are_cloneable_and_thread_safe() {
        fn assert_shareable<T: Clone + Send + Sync>() {}
        assert_shareable::<RatestOptions>();
        assert_shareable::<ExplainOutcome>();
        assert_shareable::<Counterexample>();
        assert_shareable::<Timings>();
        assert_shareable::<PreparedReference>();
    }

    #[test]
    fn explain_with_reference_matches_explain_on_the_running_example() {
        let db = testdata::figure1_db();
        let q1 = testdata::example1_q1();
        let q2 = testdata::example1_q2();
        let reference = PreparedReference::prepare(&q1, &db, &Params::new()).unwrap();
        assert!(reference.annotation().is_some());
        let shared =
            explain_with_reference(&reference, &q2, &db, &RatestOptions::default()).unwrap();
        let plain = explain(&q1, &q2, &db, &RatestOptions::default()).unwrap();
        assert_eq!(
            shared.counterexample.unwrap().size(),
            plain.counterexample.unwrap().size()
        );
    }

    #[test]
    fn explain_with_reference_detects_agreement_and_monotone_pairs() {
        let db = testdata::figure1_db();
        let q1 = rel("Student").project(&["name"]).build();
        let reference = PreparedReference::prepare(&q1, &db, &Params::new()).unwrap();

        // Agreement: a syntactically different but equivalent query.
        let same = rel("Student")
            .select(col("name").eq(col("name")))
            .project(&["name"])
            .build();
        let outcome =
            explain_with_reference(&reference, &same, &db, &RatestOptions::default()).unwrap();
        assert!(outcome.counterexample.is_none());

        // A monotone wrong pair takes the poly-time path on the shared handle.
        let wrong = rel("Student")
            .select(col("major").eq(lit("ECON")))
            .project(&["name"])
            .build();
        let outcome =
            explain_with_reference(&reference, &wrong, &db, &RatestOptions::default()).unwrap();
        assert_eq!(outcome.algorithm_used, Algorithm::PolytimeMonotone);
        assert_eq!(outcome.counterexample.unwrap().size(), 1);
    }

    #[test]
    fn explain_with_reference_can_be_shared_across_threads() {
        let db = std::sync::Arc::new(testdata::figure1_db());
        let reference = std::sync::Arc::new(
            PreparedReference::prepare(&testdata::example1_q1(), &db, &Params::new()).unwrap(),
        );
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reference = reference.clone();
                let db = db.clone();
                std::thread::spawn(move || {
                    explain_with_reference(
                        &reference,
                        &testdata::example1_q2(),
                        &db,
                        &RatestOptions::default(),
                    )
                    .unwrap()
                    .counterexample
                    .unwrap()
                    .size()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
    }

    #[test]
    fn a_cancelled_run_stops_with_a_typed_error() {
        let db = testdata::figure1_db();
        let options = RatestOptions::default();
        options.budget.cancel();
        let err = explain(
            &testdata::example1_q1(),
            &testdata::example1_q2(),
            &db,
            &options,
        )
        .expect_err("the flag was raised before the run started");
        assert_eq!(err, RatestError::Cancelled);

        // The flag is shared by clones — the grading engine raises it from
        // the worker thread while the job thread polls its own clone.
        let flag = CancelFlag::new();
        let observer = flag.clone();
        assert!(!observer.is_cancelled());
        flag.cancel();
        assert!(observer.is_cancelled());
        assert_eq!(observer.check(), Err(RatestError::Cancelled));
    }

    #[test]
    fn cancellation_interrupts_the_shared_reference_path() {
        let db = testdata::figure1_db();
        let reference =
            PreparedReference::prepare(&testdata::example1_q1(), &db, &Params::new()).unwrap();
        let options = RatestOptions::default();
        options.budget.cancel();
        let err = explain_with_reference(&reference, &testdata::example1_q2(), &db, &options)
            .expect_err("cancelled before evaluation");
        assert_eq!(err, RatestError::Cancelled);
    }

    #[test]
    fn timings_accumulate() {
        let mut a = Timings::default();
        let b = Timings {
            raw_eval: Duration::from_millis(1),
            provenance: Duration::from_millis(2),
            solver: Duration::from_millis(3),
            total: Duration::from_millis(6),
        };
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.total, Duration::from_millis(12));
    }
}
